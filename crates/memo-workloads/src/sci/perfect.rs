//! The nine Perfect Club stand-in kernels (Table 2 / Table 5).

use memo_imaging::rng::SplitMix64;
use memo_sim::EventSink;

use crate::math::newton_sqrt;
use crate::mem;

/// Number of simulated timesteps / sweeps; enough for cross-sweep operand
/// recurrence to show up in an unbounded table.
const STEPS: usize = 4;

/// Initial smooth field: a quantized double-sine, giving a mix of repeated
/// and distinct cell values like a discretized physical initial condition.
fn init_field(n: usize, seed: u64, quantum: f64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    let mut field = Vec::with_capacity(n * n);
    for y in 0..n {
        for x in 0..n {
            let v = (x as f64 * 0.37).sin() * (y as f64 * 0.29).cos() * 40.0
                + rng.next_range(-2.0, 2.0);
            field.push(if quantum > 0.0 { (v / quantum).round() * quantum } else { v });
        }
    }
    field
}

/// ADM — air-pollution transport (advection–diffusion on a 2-D grid).
///
/// Table 5 row: imul .98/.99, fmul .13/.41, fdiv .15/.56. The innermost
/// loop re-multiplies the row index (near-perfect imul reuse); the
/// diffusion coefficients come from a handful of stability classes
/// (32-entry fp hits) plus a per-cell emission array multiplied by the
/// constant timestep (unbounded-table hits only).
pub fn adm<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let n = n.max(8);
    let dt = 0.05;
    // Eight stability classes — quantized diffusivities.
    let classes = [0.10, 0.12, 0.15, 0.18, 0.22, 0.26, 0.30, 0.35];
    let mut c = init_field(n, 0xAD0, 0.5);
    let emission: Vec<f64> = init_field(n, 0xAD1, 0.25);
    for _ in 0..STEPS {
        let mut next = c.clone();
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                // Row-index multiply: identical operands across the row.
                let row = sink.imul(y as i64, n as i64) as usize;
                let i = row + x;
                for d in [i - 1, i + 1, i - n, i + n, i] {
                    sink.load(mem::at(mem::IN, d));
                }
                let lap = c[i - 1] + c[i + 1] + c[i - n] + c[i + n] - 4.0 * c[i];
                sink.int_ops(4);
                // Quantized class coefficient (one stability class per
                // latitude row): dense 32-entry reuse.
                let k = classes[y % classes.len()];
                let lap_q = (lap / 2.0).round() * 2.0;
                let diff = sink.fmul(lap_q, k);
                // Per-cell emission × constant dt: recurs only across steps.
                let emit = sink.fmul(emission[i], dt);
                // Evolving advection term: effectively unique operands.
                let adv = sink.fmul(c[i], 0.003 + c[i - 1] * 1e-6);
                let dc1 = sink.fadd(diff, emit);
                let dc = sink.fsub(dc1, adv);
                // Deposition: divide quantized concentration by class constant.
                let cq = (c[i] / 4.0).round() * 4.0;
                let dep = sink.fdiv(cq, 1.0 + k);
                let upd = sink.fsub(dc, dep);
                next[i] = c[i] + upd * 0.01;
                sink.store(mem::at(mem::OUT, i));
                sink.branch();
            }
        }
        c = next;
    }
}

/// QCD — lattice-gauge Monte Carlo.
///
/// Table 5 row: essentially nothing repeats (imul .02/.07, fp ≈ 0): every
/// operand is a fresh pseudo-random link value.
pub fn qcd<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let n = n.max(8);
    let mut rng = SplitMix64::new(0x9CD);
    let mut action = 0.0f64;
    for _ in 0..STEPS {
        for site in 0..n * n {
            sink.load(mem::at(mem::IN, site));
            // Random integer offsets: imul operands rarely coincide.
            let a = rng.next_below(997) as i64;
            let b = rng.next_below(991) as i64;
            let _ = sink.imul(a, b);
            // Fresh random link values: fp operands never repeat.
            let u = rng.next_range(-1.0, 1.0);
            let v = rng.next_range(-1.0, 1.0);
            let plaq = sink.fmul(u, v);
            let staple = sink.fmul(plaq, 0.5 + rng.next_f64());
            let w = 1.0 + staple.abs();
            let boltz = sink.fdiv(plaq, w);
            action = sink.fadd(action, boltz);
            sink.int_ops(3);
            sink.branch();
        }
    }
}

/// MDG — liquid-water molecular dynamics.
///
/// Table 5 row: no integer multiplies at all; fp hit ratios ≈ 0 even
/// unbounded — continuously moving particle coordinates.
pub fn mdg<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let molecules = (n * 2).max(16);
    let mut rng = SplitMix64::new(0x3D6);
    let mut pos: Vec<(f64, f64)> =
        (0..molecules).map(|_| (rng.next_range(0.0, 10.0), rng.next_range(0.0, 10.0))).collect();
    let mut vel: Vec<(f64, f64)> = vec![(0.0, 0.0); molecules];
    let dt = 1e-3;
    for _ in 0..STEPS {
        for i in 0..molecules {
            let (mut fx, mut fy) = (0.0, 0.0);
            for j in 0..molecules {
                if i == j {
                    sink.annulled();
                    continue;
                }
                sink.load(mem::at(mem::IN, j));
                let dx = sink.fsub(pos[i].0, pos[j].0);
                let dy = sink.fsub(pos[i].1, pos[j].1);
                let dx2 = sink.fmul(dx, dx);
                let dy2 = sink.fmul(dy, dy);
                let r2 = sink.fadd(dx2, dy2).max(0.25);
                // Lennard-Jones-ish 1/r² force kernel: unique operands.
                let inv = sink.fdiv(1.0, r2);
                let inv2 = sink.fmul(inv, inv);
                let mag = sink.fsub(inv2, inv);
                fx += mag * dx;
                fy += mag * dy;
                sink.int_ops(2);
                sink.branch();
            }
            vel[i].0 = sink.fadd(vel[i].0, fx * dt);
            vel[i].1 = sink.fadd(vel[i].1, fy * dt);
            pos[i].0 += vel[i].0 * dt;
            pos[i].1 += vel[i].1 * dt;
            sink.store(mem::at(mem::OUT, i));
        }
    }
}

/// TRACK — missile tracking (α–β filter over quantized radar returns).
///
/// Table 5 row: imul .98 (per-target strides), fp mult .17/.46, fdiv
/// .09/**.89** — the innovation divisors come from sensor-quantized
/// measurements, so the same divisions recur scan after scan even though a
/// 32-entry table can't hold a whole scan.
pub fn track<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let targets = n.max(8);
    let scans = STEPS * 8;
    let mut rng = SplitMix64::new(0x7AC);
    // Fixed trajectories; measurements quantized to the radar's 0.5-unit bins.
    let traj: Vec<(f64, f64)> =
        (0..targets).map(|_| (rng.next_range(0.0, 50.0), rng.next_range(0.5, 2.0))).collect();
    let mut est: Vec<(f64, f64)> = traj.iter().map(|&(p, _)| (p, 1.0)).collect();
    let (alpha, beta) = (0.85, 0.005);
    let mut noise = SplitMix64::new(0x7AD);
    for scan in 0..scans {
        for (t, &(p0, v)) in traj.iter().enumerate() {
            let row = sink.imul(t as i64, 8);
            let _ = row;
            sink.load(mem::at(mem::IN, t));
            // Radar noise keeps the innovation alphabet wide within a scan
            // (low 32-entry reuse) while quantization still lets the same
            // measurements recur across the mission (high unbounded reuse).
            let truth = p0 + v * scan as f64 + noise.next_range(-6.0, 6.0);
            let meas = (truth * 2.0).round() / 2.0; // quantized return
            let predicted = sink.fadd(est[t].0, est[t].1);
            let innov = sink.fsub(meas, predicted);
            let innov_q = (innov * 2.0).round() / 2.0;
            // Normalized innovation: quantized ÷ quantized gate size.
            let gate = 0.5 + (t % 4) as f64 * 0.25;
            let norm = sink.fdiv(innov_q, gate);
            let ag = sink.fmul(alpha, innov);
            let bg = sink.fmul(beta, innov);
            let _ = norm;
            est[t].0 = sink.fadd(predicted, ag);
            est[t].1 = sink.fadd(est[t].1, bg);
            sink.store(mem::at(mem::OUT, t));
            sink.int_ops(3);
            sink.branch();
        }
    }
}

/// OCEAN — 2-D ocean circulation (Jacobi relaxation of a streamfunction).
///
/// Table 5 row: imul .15/.99 (inner-index multiplies, recurring only
/// across sweeps), fmul .03/.30, fdiv .03/**.99** (per-cell diagonal
/// divisors, fixed for the whole run).
pub fn ocean<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let n = n.max(8);
    let mut psi = init_field(n, 0x0CEA, 0.0);
    let rhs = init_field(n, 0x0CEB, 1.0);
    // Per-cell diagonal coefficients: computed once, divided by every sweep.
    let diag: Vec<f64> = (0..n * n).map(|i| 4.0 + 0.01 * (i % 37) as f64).collect();
    for _ in 0..STEPS {
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let i = y * n + x;
                // Global-index multiply: the pair changes every iteration
                // and only recurs on the next full sweep.
                let _ = sink.imul(i as i64, 8);
                for d in [i - 1, i + 1, i - n, i + n] {
                    sink.load(mem::at(mem::IN, d));
                }
                let sum = psi[i - 1] + psi[i + 1] + psi[i - n] + psi[i + n];
                sink.int_ops(3);
                let relax = sink.fmul(psi[i], 0.1 + psi[i - 1] * 1e-7);
                let res = sink.fsub(sum + rhs[i], relax);
                // Division by the per-cell diagonal: recurs across sweeps…
                let q = (res / 8.0).round() * 8.0;
                let upd = sink.fdiv(q, diag[i]);
                psi[i] = psi[i] * 0.999 + upd * 1e-3;
                sink.store(mem::at(mem::OUT, i));
                sink.branch();
            }
        }
    }
}

/// ARC2D — supersonic-reentry 2-D Euler stencil.
///
/// Table 5 row: imul .94, fmul .15/.45, fdiv .23/.26 — metric terms from a
/// small set of grid-stretching factors (32-entry hits), plus per-cell
/// Jacobian factors (unbounded hits), over an evolving state.
pub fn arc2d<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let n = n.max(8);
    let stretch = [1.0, 1.05, 1.1, 1.2, 1.35, 1.5];
    let mut q = init_field(n, 0xA2C, 0.25);
    let jac = init_field(n, 0xA2D, 0.125);
    for _ in 0..STEPS {
        let prev = q.clone();
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let row = sink.imul(y as i64, n as i64) as usize;
                let i = row + x;
                if x % 16 == 0 {
                    let _ = sink.imul(i as i64, 8); // occasional scattered access
                }
                sink.load(mem::at(mem::IN, i));
                sink.load(mem::at(mem::IN, i + 1));
                // Quantized metric coefficient × quantized difference (the
                // grid-stretching class is per row).
                let m = stretch[y % stretch.len()];
                let dq = ((prev[i + 1] - prev[i - 1]) / 2.0).round() * 2.0;
                let flux = sink.fmul(dq, m);
                // Per-cell Jacobian × constant CFL factor.
                let jf = sink.fmul(jac[i], 0.45);
                // Evolving nonlinear term.
                let nl = sink.fmul(prev[i], prev[i + n] * 1e-3 + 0.2);
                // Pressure ratio: quantized difference over a metric class.
                let pr = sink.fdiv(dq, 1.0 + m);
                // Sound-speed-like division on evolving data.
                let _ = sink.fdiv(nl, 1.0 + prev[i].abs());
                let t1 = sink.fadd(flux, jf);
                let t2 = sink.fadd(nl, pr);
                let upd = sink.fsub(t1, t2);
                q[i] = prev[i] + upd * 5e-3;
                sink.store(mem::at(mem::OUT, i));
                sink.int_ops(2);
                sink.branch();
            }
        }
    }
}

/// FLO52 — transonic-flow multigrid Euler solver.
///
/// Table 5 row: imul .86, fmul .02/.11, fdiv .06/.20 — almost entirely
/// evolving-state arithmetic; only sparse boundary work repeats.
pub fn flo52<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let n = n.max(8);
    let mut w = init_field(n, 0xF10, 0.0);
    for step in 0..STEPS {
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let row = sink.imul(y as i64, n as i64) as usize;
                let i = row + x;
                if x % 8 == 0 {
                    let _ = sink.imul(i as i64, 8);
                }
                sink.load(mem::at(mem::IN, i));
                let avg = (w[i - 1] + w[i + 1] + w[i - n] + w[i + n]) * 0.25;
                sink.int_ops(3);
                // Continuously evolving products and quotients.
                let visc = sink.fmul(avg, w[i] * 1e-4 + 0.3);
                let speed = sink.fdiv(visc, 1.0 + avg.abs());
                // Occasional boundary-class work (repeats): only on edges.
                if x == 1 || x == n - 2 {
                    let bq = ((w[i] / 8.0).round()) * 8.0;
                    let _ = sink.fmul(bq, 0.5);
                    let _ = sink.fdiv(bq, 2.5);
                }
                w[i] += (speed - w[i] * 1e-3) * (0.01 + step as f64 * 1e-4);
                sink.store(mem::at(mem::OUT, i));
                sink.branch();
            }
        }
    }
}

/// TRFD — two-electron integral transformation.
///
/// Table 5 row: fdiv **.85**/.99 — the transformation divides by products
/// of small integer indices `(i+j+2)` over and over; imul .60 from the
/// index products themselves.
pub fn trfd<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let basis = n.clamp(8, 24);
    let mut acc = 0.0f64;
    for _pass in 0..STEPS {
        for i in 0..basis {
            for j in 0..basis {
                // Index products: the row factor repeats all along the
                // inner loop, the pair product does not.
                let _ = sink.imul((i + 1) as i64, basis as i64);
                let ij = sink.imul((i + 1) as i64, (j + 1) as i64);
                sink.load(mem::at(mem::IN, i * basis + j));
                // Integral estimate: tiny integer alphabets — the paper's
                // 0.85 fdiv hit ratio comes from exactly this index
                // arithmetic recurring inside the transform's inner loops.
                let numer = (((i + j) % 8) + 1) as f64;
                let denom = ((j % 4) + 2) as f64;
                let term = sink.fdiv(numer, denom);
                // Contraction with a quantized coefficient.
                let coeff = ((ij % 16) + 1) as f64 * 0.125;
                let contrib = sink.fmul(term, coeff);
                acc = sink.fadd(acc, contrib);
                sink.int_ops(2);
                sink.branch();
            }
        }
    }
}

/// SPEC77 — spectral global weather model.
///
/// Table 5 row: imul .06 (fast-changing spectral indices), fmul .28/.37,
/// fdiv .01/.15 — quantized Legendre-like coefficients multiply evolving
/// spectral amplitudes.
pub fn spec77<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let modes = n.max(8);
    let mut rng = SplitMix64::new(0x577);
    // Small set of quantized basis coefficients.
    let legendre: Vec<f64> = (0..12).map(|k| ((k * k) as f64 / 12.0).round() / 4.0 + 0.25).collect();
    let mut amp: Vec<f64> = (0..modes * modes).map(|_| rng.next_range(-1.0, 1.0)).collect();
    for step in 0..STEPS {
        for m in 0..modes {
            for k in 0..modes {
                let idx = m * modes + k;
                // Spectral indices change every iteration: near-zero imul
                // reuse in a small table, full reuse across timesteps.
                let _ = sink.imul(idx as i64, 16);
                sink.load(mem::at(mem::IN, idx));
                // Quantized coefficient × quantized wavenumber factor: reuses.
                let c = legendre[k % legendre.len()];
                let wn = ((k % 4) + 1) as f64;
                let cw = sink.fmul(c, wn);
                // Evolving amplitude update: unique.
                let tend = sink.fmul(amp[idx], 0.98 + step as f64 * 1e-3);
                let flux = sink.fdiv(tend, 1.0 + amp[idx].abs() * 0.5);
                amp[idx] = cw * 1e-3 + tend * 0.9 + flux * 0.01;
                sink.store(mem::at(mem::OUT, idx));
                sink.int_ops(2);
                sink.branch();
            }
        }
    }
    // Final energy norm.
    let e2: f64 = amp.iter().map(|a| a * a).sum();
    let _ = newton_sqrt(sink, e2.max(1e-12), 2);
}

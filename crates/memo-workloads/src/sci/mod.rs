//! Scientific-suite stand-ins: Perfect Club (Table 2) and SPEC CFP95
//! (Table 3).
//!
//! The original suites are Fortran applications we cannot redistribute;
//! each stand-in is a small, genuine numerical kernel with the same
//! *computational character* as its namesake — the same physics family,
//! and crucially the same kind of operand streams:
//!
//! * **state operands** — continuously evolving floating-point values that
//!   essentially never repeat (the reason Table 5/6's 32-entry hit ratios
//!   are low: Franklin & Sohi's register instances die within 30–40
//!   instructions);
//! * **per-cell coefficient arrays** — computed once, multiplied by
//!   constants every timestep, so the same operand pairs recur *across*
//!   sweeps (reuse distance = array size): invisible to a 32-entry table,
//!   captured by the paper's "infinite" table;
//! * **quantized coefficients** — small value sets (material classes,
//!   limiter outputs, integer index factors) that even a 32-entry table
//!   catches.
//!
//! The blend of the three classes per kernel follows the corresponding
//! row of Table 5/6.

pub mod perfect;
pub mod spec;

use memo_sim::EventSink;

/// Which paper suite a scientific kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// The Perfect Club benchmarks (Table 2 / Table 5).
    Perfect,
    /// SPEC CFP95 (Table 3 / Table 6).
    SpecCfp95,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Perfect => f.write_str("Perfect"),
            Suite::SpecCfp95 => f.write_str("SPEC CFP95"),
        }
    }
}

/// A registered scientific application.
#[derive(Clone, Copy)]
pub struct SciApp {
    /// Application name (lower-case, as the paper prints SPEC names).
    pub name: &'static str,
    /// Which suite it stands in for.
    pub suite: Suite,
    /// One-line description from Table 2/3.
    pub description: &'static str,
    run: fn(&mut dyn EventSink, usize),
}

impl std::fmt::Debug for SciApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SciApp({} / {})", self.name, self.suite)
    }
}

impl SciApp {
    /// Run the kernel at problem size `n` (grid side / particle count
    /// scale; 24–48 is representative, larger sharpens the statistics).
    pub fn run(&self, sink: &mut dyn EventSink, n: usize) {
        (self.run)(sink, n);
    }
}

macro_rules! sci_app {
    ($suite:expr, $module:ident :: $name:ident, $desc:expr) => {
        SciApp {
            name: stringify!($name),
            suite: $suite,
            description: $desc,
            run: |sink, n| $module::$name(sink, n),
        }
    };
}

/// The nine Perfect Club stand-ins, in Table 2 order.
#[must_use]
pub fn perfect_apps() -> Vec<SciApp> {
    use Suite::Perfect as P;
    vec![
        sci_app!(P, perfect::adm, "Air pollution, fluid dynamics"),
        sci_app!(P, perfect::qcd, "Lattice gauge, quantum chromodynamics"),
        sci_app!(P, perfect::mdg, "Liquid water simulation, molecular dynamics"),
        sci_app!(P, perfect::track, "Missile tracking, signal processing"),
        sci_app!(P, perfect::ocean, "Ocean simulation, 2-D fluid dynamics"),
        sci_app!(P, perfect::arc2d, "Supersonic reentry, 2-D fluid dynamics"),
        sci_app!(P, perfect::flo52, "Transonic flow, 2-D fluid dynamics"),
        sci_app!(P, perfect::trfd, "2-electron transform integrals, molecular dynamics"),
        sci_app!(P, perfect::spec77, "Weather simulation, fluid dynamics"),
    ]
}

/// The ten SPEC CFP95 stand-ins, in Table 3 order.
#[must_use]
pub fn spec_apps() -> Vec<SciApp> {
    use Suite::SpecCfp95 as S;
    vec![
        sci_app!(S, spec::tomcatv, "Vectorized mesh generation"),
        sci_app!(S, spec::swim, "Shallow water equations"),
        sci_app!(S, spec::su2cor, "Monte-Carlo method"),
        sci_app!(S, spec::hydro2d, "Navier Stokes equations"),
        sci_app!(S, spec::mgrid, "3d potential field"),
        sci_app!(S, spec::applu, "Partial differential equations"),
        sci_app!(S, spec::turb3d, "Turbulence modeling"),
        sci_app!(S, spec::apsi, "Weather prediction"),
        sci_app!(S, spec::fpppp, "Gaussian series of quantum chemistry"),
        sci_app!(S, spec::wave5, "Maxwell's equation"),
    ]
}

/// Both suites concatenated (Perfect first, as the paper tabulates).
#[must_use]
pub fn all_apps() -> Vec<SciApp> {
    let mut apps = perfect_apps();
    apps.extend(spec_apps());
    apps
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_sim::CountingSink;

    #[test]
    fn registries_match_paper_counts() {
        assert_eq!(perfect_apps().len(), 9);
        assert_eq!(spec_apps().len(), 10);
        assert_eq!(all_apps().len(), 19);
    }

    #[test]
    fn every_kernel_runs_and_does_fp_work() {
        for app in all_apps() {
            let mut sink = CountingSink::new();
            app.run(&mut sink, 16);
            let m = sink.mix();
            assert!(m.total() > 100, "{} must do real work", app.name);
            // su2cor is the suite's integer-only member (Table 6 row).
            if app.name != "su2cor" {
                assert!(m.fp_mul + m.fp_div > 0, "{} must use fp units", app.name);
            } else {
                assert!(m.int_mul > 0);
            }
        }
    }

    #[test]
    fn op_presence_matches_tables_5_and_6() {
        // '-' cells in the paper: MDG, swim, wave5 have no integer multiply;
        // su2cor and mgrid lack fp division.
        for app in all_apps() {
            let mut sink = CountingSink::new();
            app.run(&mut sink, 16);
            let m = sink.mix();
            match app.name {
                "mdg" | "swim" | "wave5" => {
                    assert_eq!(m.int_mul, 0, "{} has no imul in the paper", app.name)
                }
                "su2cor" | "mgrid" => {
                    assert_eq!(m.fp_div, 0, "{} has no fdiv in the paper", app.name)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        for app in [perfect_apps()[0], spec_apps()[3]] {
            let mut a = CountingSink::new();
            let mut b = CountingSink::new();
            app.run(&mut a, 12);
            app.run(&mut b, 12);
            assert_eq!(a.mix(), b.mix(), "{}", app.name);
        }
    }
}

//! The ten SPEC CFP95 stand-in kernels (Table 3 / Table 6).

use memo_imaging::rng::SplitMix64;
use memo_sim::EventSink;

use crate::math::newton_sqrt;
use crate::mem;

const STEPS: usize = 4;

fn init(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n * n)
        .map(|i| ((i % 17) as f64 * 0.3).sin() * 20.0 + rng.next_range(-1.0, 1.0))
        .collect()
}

/// tomcatv — vectorized mesh generation.
///
/// Table 6 row: imul .14/.99, fmul .01/.16, fdiv ≈ 0 everywhere — mesh
/// coordinates relax continuously; virtually nothing repeats.
pub fn tomcatv<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let n = n.max(8);
    let mut xs = init(n, 0x70C0);
    let mut ys = init(n, 0x70C1);
    for _ in 0..STEPS {
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let c = j * n + i;
                // Mesh-point index arithmetic: both operands change every
                // iteration (low small-table reuse, full cross-sweep reuse).
                let _ = sink.imul(c as i64, 8);
                sink.load(mem::at(mem::IN, c));
                sink.load(mem::at(mem::AUX, c));
                // Jacobian terms of the continuously relaxing mesh.
                let xe = sink.fsub(xs[c + 1], xs[c - 1]);
                let ye = sink.fsub(ys[c + 1], ys[c - 1]);
                let a = sink.fmul(xe, xe);
                let b = sink.fmul(ye, ye);
                let alpha = sink.fadd(a, b);
                let res = sink.fdiv(xe, 1.0 + alpha.abs());
                xs[c] += res * 1e-3;
                ys[c] += alpha * 1e-6;
                sink.store(mem::at(mem::OUT, c));
                sink.int_ops(3);
                sink.branch();
            }
        }
    }
}

/// swim — shallow-water equations.
///
/// Table 6 row: no imul; fmul .16/**.93**, fdiv .00/.74 — nearly every
/// multiply is "array value × constant dt/dx", identical pairs every
/// timestep (the paper's canonical unbounded-table success story).
pub fn swim<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let n = n.max(8);
    // Quantized initial fields that the update rule perturbs only mildly,
    // so most (value, constant) pairs recur across steps.
    let mut u = init(n, 0x5317).iter().map(|v| (v * 2.0).round() / 2.0).collect::<Vec<_>>();
    let mut h: Vec<f64> = init(n, 0x5318).iter().map(|v| (v * 2.0).round() / 2.0 + 50.0).collect();
    let (dtdx, grav) = (0.125, 9.8125);
    for _ in 0..STEPS {
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let c = j * n + i;
                sink.load(mem::at(mem::IN, c));
                sink.load(mem::at(mem::AUX, c));
                // Array × constant: the dominant, recurring multiply class.
                let flux_u = sink.fmul(u[c], dtdx);
                let flux_h = sink.fmul(h[c], dtdx);
                let grad = sink.fmul(grav, h[c + 1] - h[c - 1]);
                // Courant check: height over constant depth scale — the
                // division stream that the unbounded table captures.
                let cfl = sink.fdiv(h[c], 64.0);
                let dun = sink.fsub(flux_u, grad * 1e-3);
                // Tiny, quantized update keeps the value sets stable.
                let du = (dun * 2.0).round() / 2.0;
                u[c] += du * 0.5;
                h[c] += ((flux_h + cfl) * 0.001 * 2.0).round() / 2.0;
                sink.store(mem::at(mem::OUT, c));
                sink.int_ops(2);
                sink.branch();
            }
        }
    }
}

/// su2cor — quantum-field Monte Carlo (the suite's integer-dominated
/// member: Table 6 shows no fp multiply or divide at all).
pub fn su2cor<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let n = n.max(8);
    let mut rng = SplitMix64::new(0x5500);
    let mut corr = 0.0f64;
    for _ in 0..STEPS {
        for site in 0..n * n {
            sink.load(mem::at(mem::IN, site));
            // Integer lattice arithmetic with mixed reuse.
            let stride = sink.imul((site % (3 * n)) as i64, n as i64);
            let spin = sink.imul((rng.next_below(4) as i64) - 2, (stride % 7) + 1);
            corr = sink.fadd(corr, spin as f64);
            sink.int_ops(4);
            sink.branch();
        }
    }
}

/// hydro2d — Navier–Stokes with a flux limiter.
///
/// Table 6 row: fmul **.75**/.97, fdiv **.78**/.97 — the minmod-style
/// limiter collapses flux ratios onto a tiny value set, so even a 32-entry
/// table hits on three quarters of the fp traffic.
pub fn hydro2d<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let n = n.max(8);
    let mut rho: Vec<f64> = init(n, 0x42D0).iter().map(|v| (v / 4.0).round() * 4.0 + 30.0).collect();
    for _ in 0..STEPS {
        let prev = rho.clone();
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let c = j * n + i;
                let _ = sink.imul(c as i64, 8);
                sink.load(mem::at(mem::IN, c));
                // Slope ratio of quantized differences: a tiny value set
                // (the minmod limiter's whole point).
                let dl = ((prev[c] - prev[c - 1]) / 8.0).round() * 8.0;
                let dr = ((prev[c + 1] - prev[c]) / 8.0).round() * 8.0;
                let r = if dr != 0.0 {
                    sink.fdiv(dl, dr)
                } else {
                    sink.annulled();
                    0.0
                };
                // Limiter output: clamped & quantized to eighths.
                let phi = (r.clamp(0.0, 2.0) * 4.0).round() / 4.0;
                let flux = sink.fmul(phi, dr);
                // Quantized density over a constant sound speed.
                let mach = sink.fdiv(prev[c], 8.0);
                let visc = sink.fmul(flux, 0.25);
                rho[c] = prev[c] + ((visc + mach * 1e-3) * 8.0).round() / 8.0 * 0.125;
                sink.store(mem::at(mem::OUT, c));
                sink.int_ops(2);
                sink.branch();
            }
        }
    }
}

/// mgrid — 3-D multigrid potential solver.
///
/// Table 6 row: imul .83, fmul .00/.01, **no divisions** — constant
/// stencil weights times continuously varying field values: every multiply
/// operand pair is effectively unique.
pub fn mgrid<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let n = n.max(8);
    let mut v = init(n, 0x36D0);
    let weights = [0.5, 0.25, 0.125];
    for _ in 0..STEPS {
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let row = sink.imul(j as i64, n as i64) as usize;
                let c = row + i;
                if i % 4 == 0 {
                    let _ = sink.imul(c as i64, 8); // residual-norm gather
                }
                for d in [c - 1, c + 1, c - n, c + n] {
                    sink.load(mem::at(mem::IN, d));
                }
                // Constant weights × evolving residuals: unique pairs.
                let r0 = sink.fmul(v[c], weights[0]);
                let r1 = sink.fmul(v[c - 1] + v[c + 1], weights[1]);
                let r2 = sink.fmul(v[c - n] + v[c + n], weights[2]);
                let s1 = sink.fadd(r0, r1);
                let sum = sink.fadd(s1, r2);
                v[c] = v[c] * 0.9993 + sum * 1e-4;
                sink.store(mem::at(mem::OUT, c));
                sink.int_ops(3);
                sink.branch();
            }
        }
    }
}

/// applu — SSOR-based PDE solver.
///
/// Table 6 row: imul .97, fmul .25/.66, fdiv .25/.64 — quantized pivot
/// classes plus per-cell factors over an evolving solution.
pub fn applu<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let n = n.max(8);
    let pivots = [1.5, 2.0, 2.5, 3.0, 4.0];
    let mut u = init(n, 0xA991);
    let factor = init(n, 0xA992);
    for _ in 0..STEPS {
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let row = sink.imul(j as i64, n as i64) as usize;
                let c = row + i;
                sink.load(mem::at(mem::IN, c));
                // Quantized residual over a pivot class: 32-entry hits.
                let rq = ((u[c - 1] + u[c + 1]) / 4.0).round() * 4.0;
                let piv = pivots[j % pivots.len()];
                let gs = sink.fdiv(rq, piv);
                let wq = sink.fmul(rq, piv);
                // Per-cell factor × constant relaxation: unbounded hits.
                let fx = sink.fmul(factor[c], 1.2);
                // Evolving terms: unique.
                let nl = sink.fmul(u[c], 0.99 + u[c - n] * 1e-6);
                let _ = sink.fdiv(nl, 1.0 + u[c].abs());
                u[c] = u[c] * 0.999 + (gs + wq * 1e-3 + fx * 1e-3) * 1e-3;
                sink.store(mem::at(mem::OUT, c));
                sink.int_ops(2);
                sink.branch();
            }
        }
    }
}

/// turb3d — isotropic-turbulence pseudo-spectral step.
///
/// Table 6 row: imul .80, fmul .16/.86, fdiv .03/**.99** — wavenumber
/// scalings recur exactly every step; the 1/k² divisions are per-mode
/// constants captured only by the unbounded table.
pub fn turb3d<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let n = n.max(8);
    let mut spec = init(n, 0x7B3D);
    // Per-mode wavenumber factors: fixed for the whole run.
    let k2: Vec<f64> = (0..n * n).map(|i| 1.0 + ((i % n) * (i % n)) as f64).collect();
    for step in 0..STEPS {
        for m in 0..n * n {
            let _ = sink.imul((m / n) as i64, n as i64);
            if m % 4 == 0 {
                let _ = sink.imul(m as i64, 16);
            }
            sink.load(mem::at(mem::IN, m));
            // Mode amplitude × fixed wavenumber factor: recurs across steps
            // while the amplitude is unchanged (the linear phase).
            let lin = sink.fmul(spec[m], 1.0 - 1e-4 * (step % 2) as f64);
            // Dissipation: amplitude over fixed k² — same pairs each step.
            let diss = sink.fdiv(spec[m], k2[m]);
            // Nonlinear convolution term: evolving, unique.
            let nl = sink.fmul(spec[m], spec[(m + 1) % (n * n)] * 1e-3);
            spec[m] = lin - diss * 1e-3 + nl * 1e-4;
            // Keep most amplitudes exactly stable so pairs genuinely recur.
            if m % 4 != 0 {
                spec[m] = (spec[m] * 64.0).round() / 64.0;
            }
            sink.store(mem::at(mem::OUT, m));
            sink.int_ops(2);
            sink.branch();
        }
    }
}

/// apsi — mesoscale weather prediction.
///
/// Table 6 row: imul .95, fmul .16/.39, fdiv .13/.57 — lookup-table
/// physics coefficients against evolving column state.
pub fn apsi<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let n = n.max(8);
    let lapse = [6.5, 7.0, 7.5, 8.0, 9.8]; // lapse-rate classes (K/km)
    let mut t = init(n, 0xA951);
    let pressure = init(n, 0xA952);
    for _ in 0..STEPS {
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let row = sink.imul(j as i64, n as i64) as usize;
                let c = row + i;
                sink.load(mem::at(mem::IN, c));
                // Quantized temperature anomaly × lapse class.
                let anom = ((t[c] - t[c - n]) / 2.0).round() * 2.0;
                let lr = lapse[j % lapse.len()];
                let adv = sink.fmul(anom, lr);
                // Quantized anomaly over the lapse class.
                let stab = sink.fdiv(anom, lr);
                // Evolving radiation term.
                let rad = sink.fmul(t[c], 0.002 + pressure[c] * 1e-6);
                let _ = sink.fdiv(rad, 1.0 + t[c].abs() * 0.1);
                t[c] += (adv * 1e-4 + stab * 1e-3 - rad * 1e-4).clamp(-0.5, 0.5);
                sink.store(mem::at(mem::OUT, c));
                sink.int_ops(3);
                sink.branch();
            }
        }
    }
}

/// fpppp — two-electron Gaussian integrals.
///
/// Table 6 row: imul .53, fmul .29/.55, fdiv .15/.62 — integer shell
/// products and quantized contraction coefficients against continuous
/// exponent arithmetic.
pub fn fpppp<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let shells = n.clamp(8, 20);
    let contraction = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5];
    let mut rng = SplitMix64::new(0xF999);
    let exponents: Vec<f64> = (0..shells).map(|_| rng.next_range(0.2, 3.0)).collect();
    let mut acc = 0.0f64;
    for _ in 0..STEPS {
        for i in 0..shells {
            for j in 0..shells {
                let _ = sink.imul(i as i64 + 1, shells as i64);
                let ij = sink.imul(i as i64 + 1, j as i64 + 1);
                sink.load(mem::at(mem::IN, i * shells + j));
                // Continuous exponent combination: unique.
                let zeta = sink.fadd(exponents[i], exponents[j]);
                let overlap = sink.fmul(exponents[i], exponents[j]);
                let ratio = sink.fdiv(overlap, zeta);
                // Quantized contraction coefficient product: repeats.
                let ci = contraction[i % contraction.len()];
                let cj = contraction[j % contraction.len()];
                let cc = sink.fmul(ci, cj);
                // Normalization by small integer shell degeneracy.
                let norm = sink.fdiv(cc, (ij % 8 + 1) as f64);
                let integral = ratio * norm;
                acc = sink.fadd(acc, integral);
                sink.int_ops(3);
                sink.branch();
            }
        }
    }
    let _ = newton_sqrt(sink, acc.abs().max(1e-12), 2);
}

/// wave5 — electromagnetic particle-in-cell.
///
/// Table 6 row: no imul; fmul .05/.11, fdiv .02/.16 — particle positions
/// and field samples drift continuously; reuse is marginal everywhere.
pub fn wave5<S: EventSink + ?Sized>(sink: &mut S, n: usize) {
    let particles = (n * 4).max(32);
    let mut rng = SplitMix64::new(0x3A7E);
    let mut pos: Vec<f64> = (0..particles).map(|_| rng.next_range(0.0, n as f64)).collect();
    let mut vel: Vec<f64> = (0..particles).map(|_| rng.next_range(-1.0, 1.0)).collect();
    let field = init(n.max(8), 0x3A7F);
    let nn = n.max(8);
    for _ in 0..STEPS {
        for p in 0..particles {
            sink.load(mem::at(mem::IN, p));
            let cell = (pos[p] as usize).min(nn - 1);
            sink.load(mem::at(mem::AUX, cell));
            // Field interpolation & Lorentz push: continuous operands.
            let frac = pos[p] - pos[p].floor();
            let e0 = field[cell * nn % (nn * nn)];
            let accel = sink.fmul(e0, 1.0 - frac);
            let drag = sink.fdiv(vel[p], 1.0 + vel[p].abs());
            vel[p] += (accel - drag) * 1e-3;
            let dv = sink.fmul(vel[p], 0.01);
            pos[p] = (pos[p] + dv).rem_euclid(nn as f64);
            sink.store(mem::at(mem::OUT, p));
            sink.int_ops(3);
            sink.branch();
        }
    }
}

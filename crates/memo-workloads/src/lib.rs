//! # memo-workloads
//!
//! Instrumented re-implementations of the paper's three benchmark suites
//! (§3.1, Tables 2–4):
//!
//! * [`mm`] — the eighteen Khoros multi-media (image / DSP) applications
//!   of Table 4, from `vsqrt` to `venhpatch`;
//! * [`sci::perfect`] — nine kernels standing in for the Perfect Club
//!   applications of Table 2 (ADM … SPEC77);
//! * [`sci::spec`] — ten kernels standing in for SPEC CFP95 (Table 3,
//!   tomcatv … wave5).
//!
//! Every kernel is written against [`memo_sim::EventSink`]: each integer
//! multiply, floating-point multiply/divide/sqrt goes through the sink
//! (where a simulator may memoize it), and loads/stores/ALU/branches are
//! emitted so the cycle accountant sees a full instruction stream. The
//! kernels compute *real* outputs — `vgauss` really renders Gaussians,
//! the FFT filters really transform — so the operand streams have the
//! genuine value-locality structure the paper measured, rather than being
//! synthetic traces.
//!
//! The [`suite`] module ties it together: registries of applications, the
//! per-app input sets (each MM app runs over the Table 8 image corpus),
//! and one-call helpers that produce hit-ratio and speedup measurements.
//!
//! ## Example
//!
//! ```
//! use memo_sim::{CountingSink, EventSink};
//! use memo_workloads::mm;
//! use memo_imaging::synth;
//!
//! let image = &synth::corpus(16)[0].image; // small-scale mandrill stand-in
//! let mut sink = CountingSink::new();
//! mm::vgauss(&mut sink, image);
//! assert!(sink.mix().fp_div > 0, "vgauss divides");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod math;
pub mod mm;
pub mod sci;
pub mod suite;

pub(crate) mod mem {
    //! Synthetic address bases so the cache model sees distinct arrays.

    /// Input array base.
    pub const IN: u64 = 0x0010_0000;
    /// Second input / auxiliary array base.
    pub const AUX: u64 = 0x0210_0000;
    /// Output array base.
    pub const OUT: u64 = 0x0410_0000;
    /// Scratch / table base.
    pub const SCRATCH: u64 = 0x0610_0000;

    /// Byte address of element `idx` (8-byte elements).
    #[must_use]
    pub fn at(base: u64, idx: usize) -> u64 {
        base + (idx as u64) * 8
    }
}

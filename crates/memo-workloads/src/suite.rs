//! Suite-level measurement drivers: run applications over their input
//! sets and collect the statistics the paper's tables report.
//!
//! Two measurement paths produce bit-identical results (asserted by the
//! `trace_equivalence` integration tests):
//!
//! * **native** — run the kernel with a [`MemoProbeSink`] attached, as the
//!   paper ran binaries under Shade;
//! * **record / replay** — record the kernel's operand stream once with
//!   [`record_mm_trace`] / [`record_sci_trace`] and replay the
//!   [`OpTrace`] against any number of configurations with
//!   [`replay_stats`] / [`replay_ratios`]. Sweeps use this path: one
//!   native execution, N memory-speed replays.
//!
//! Bank construction lives in one place — [`SweepSpec`] — instead of
//! being re-closed at every call site.

use std::sync::atomic::{AtomicU64, Ordering};

use memo_imaging::synth::{self, CorpusImage};
use memo_imaging::Image;
use memo_sim::{
    sweep_kind, CpuModel, CycleAccountant, CycleReport, Event, EventSink, MemoBank,
    MemoryHierarchy, OpTrace, TraceRecorderSink,
};
use memo_table::{MemoConfig, MemoStats, OpKind, SweepGrid};

use crate::mm::MmApp;
use crate::sci::SciApp;

/// The table shape a sweep point evaluates: a finite geometry or the
/// "infinitely large, fully associative" reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TableShape {
    /// Identical finite tables built from one [`MemoConfig`].
    Finite(MemoConfig),
    /// The infinite reference table.
    Infinite,
}

/// One sweep point's bank recipe: a [`TableShape`] plus the operation
/// kinds that get a table. `Copy`, comparable, and buildable anywhere —
/// the single place bank construction happens in the sweep drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSpec {
    shape: TableShape,
    kinds: [bool; 4],
}

impl SweepSpec {
    /// The paper's simulated system: 32-entry 4-way tables on the integer
    /// multiplier, fp multiplier, and fp divider.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::finite(
            MemoConfig::paper_default(),
            &[OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv],
        )
    }

    /// Identical finite tables from `cfg` on each of `kinds`.
    #[must_use]
    pub fn finite(cfg: MemoConfig, kinds: &[OpKind]) -> Self {
        SweepSpec { shape: TableShape::Finite(cfg), kinds: Self::mask(kinds) }
    }

    /// Infinite reference tables on each of `kinds`.
    #[must_use]
    pub fn infinite(kinds: &[OpKind]) -> Self {
        SweepSpec { shape: TableShape::Infinite, kinds: Self::mask(kinds) }
    }

    fn mask(kinds: &[OpKind]) -> [bool; 4] {
        let mut mask = [false; 4];
        for &kind in kinds {
            mask[kind as usize] = true;
        }
        mask
    }

    /// The shape of this spec's tables.
    #[must_use]
    pub fn shape(&self) -> TableShape {
        self.shape
    }

    /// The kinds that receive a table, in [`OpKind::ALL`] order.
    pub fn kinds(&self) -> impl Iterator<Item = OpKind> + '_ {
        OpKind::ALL.into_iter().filter(|&k| self.kinds[k as usize])
    }

    /// Construct the bank this spec describes.
    #[must_use]
    pub fn build(&self) -> MemoBank {
        let kinds: Vec<OpKind> = self.kinds().collect();
        match self.shape {
            TableShape::Finite(cfg) => MemoBank::uniform(cfg, &kinds),
            TableShape::Infinite => MemoBank::infinite(&kinds),
        }
    }
}

/// An [`EventSink`] that routes multi-cycle operations into a [`MemoBank`]
/// and discards everything else — the fast path for pure hit-ratio
/// experiments (Tables 5–10, Figures 2–4), where cycle accounting is not
/// needed.
#[derive(Debug)]
pub struct MemoProbeSink {
    bank: MemoBank,
}

impl MemoProbeSink {
    /// Probe through a fresh bank built from `spec`.
    #[must_use]
    pub fn new(spec: SweepSpec) -> Self {
        Self::with_bank(spec.build())
    }

    /// Probe through an existing bank (custom constructions — fault
    /// injection, circuit breakers — that [`SweepSpec`] doesn't describe).
    #[must_use]
    pub fn with_bank(bank: MemoBank) -> Self {
        MemoProbeSink { bank }
    }

    /// The bank, for reading statistics.
    #[must_use]
    pub fn bank(&self) -> &MemoBank {
        &self.bank
    }

    /// Consume the sink and return its bank.
    #[must_use]
    pub fn into_bank(self) -> MemoBank {
        self.bank
    }
}

impl EventSink for MemoProbeSink {
    fn record(&mut self, event: Event) {
        if let Event::Arith(op) = event {
            self.bank.execute(op);
        }
    }
}

/// Hit ratios per operation kind; `None` mirrors the paper's `-` cells
/// (the application never issues that operation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitRatios {
    /// Integer multiplication hit ratio.
    pub int_mul: Option<f64>,
    /// Floating-point multiplication hit ratio.
    pub fp_mul: Option<f64>,
    /// Floating-point division hit ratio.
    pub fp_div: Option<f64>,
}

impl HitRatios {
    /// Extract the ratio for `kind`.
    #[must_use]
    pub fn get(&self, kind: OpKind) -> Option<f64> {
        match kind {
            OpKind::IntMul => self.int_mul,
            OpKind::FpMul => self.fp_mul,
            OpKind::FpDiv => self.fp_div,
            OpKind::FpSqrt => None,
        }
    }

    /// Read the per-kind lookup hit ratios out of a bank.
    #[must_use]
    pub fn from_bank(bank: &MemoBank) -> Self {
        let ratio = |kind| {
            bank.stats(kind).and_then(|s: MemoStats| {
                if s.table_lookups == 0 {
                    None
                } else {
                    Some(s.lookup_hit_ratio())
                }
            })
        };
        HitRatios {
            int_mul: ratio(OpKind::IntMul),
            fp_mul: ratio(OpKind::FpMul),
            fp_div: ratio(OpKind::FpDiv),
        }
    }
}

/// The image corpus an MM application is evaluated on (the paper ran each
/// application "on 8 to 14 inputs"; we use the full 14-image Table 8
/// corpus).
#[must_use]
pub fn mm_inputs(scale: usize) -> Vec<CorpusImage> {
    synth::corpus(scale)
}

/// Record the operand stream of one MM application over `inputs` —
/// executed natively exactly once; the trace replays against any number
/// of configurations.
#[must_use]
pub fn record_mm_trace(app: &MmApp, inputs: &[&Image]) -> OpTrace {
    let mut rec = TraceRecorderSink::new();
    for input in inputs {
        app.run(&mut rec, input);
    }
    rec.into_trace()
}

/// Record the operand stream of one scientific kernel at size `n`.
#[must_use]
pub fn record_sci_trace(app: &SciApp, n: usize) -> OpTrace {
    let mut rec = TraceRecorderSink::new();
    app.run(&mut rec, n);
    rec.into_trace()
}

/// Replay one or more traces, in order, through a fresh bank built from
/// `spec` and return the bank (per-kind statistics are bit-identical to a
/// native run of the same stream).
///
/// Replay flows through the batched probe path ([`OpTrace::replay`] →
/// [`MemoBank::execute_batch`]); the per-op scalar path remains available
/// as [`OpTrace::replay_scalar`] and is property-tested bit-identical.
#[must_use]
pub fn replay_stats<'a>(
    traces: impl IntoIterator<Item = &'a OpTrace>,
    spec: SweepSpec,
) -> MemoBank {
    DIRECT_REPLAYS.fetch_add(1, Ordering::Relaxed);
    let mut bank = spec.build();
    for trace in traces {
        trace.replay(&mut bank);
    }
    bank
}

// Process-wide accounting of how sweep points were evaluated, surfaced in
// the `all_experiments` summary so the fused-pass win is visible in CI.
static GRIDS_FUSED: AtomicU64 = AtomicU64::new(0);
static POINTS_FUSED: AtomicU64 = AtomicU64::new(0);
static DIRECT_REPLAYS: AtomicU64 = AtomicU64::new(0);

/// How many sweep evaluations went through the fused single-pass engine
/// versus direct per-configuration replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionCounters {
    /// Fused passes executed (one [`replay_stats_fused`] call that fused).
    pub grids_fused: u64,
    /// Sweep points those passes served; `points_fused - grids_fused`
    /// full-trace replays were avoided.
    pub points_fused: u64,
    /// Full-trace replays performed directly ([`replay_stats`] calls).
    pub direct_replays: u64,
}

/// Snapshot the process-wide fusion accounting.
#[must_use]
pub fn fusion_counters() -> FusionCounters {
    FusionCounters {
        grids_fused: GRIDS_FUSED.load(Ordering::Relaxed),
        points_fused: POINTS_FUSED.load(Ordering::Relaxed),
        direct_replays: DIRECT_REPLAYS.load(Ordering::Relaxed),
    }
}

/// Per-kind [`MemoStats`] of one sweep point, however it was evaluated.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KindStats {
    stats: [Option<MemoStats>; 4],
}

impl KindStats {
    /// Read a bank's per-kind statistics (the direct-path constructor).
    #[must_use]
    pub fn from_bank(bank: &MemoBank) -> Self {
        let mut stats = [None; 4];
        for kind in OpKind::ALL {
            stats[kind as usize] = bank.stats(kind);
        }
        KindStats { stats }
    }

    /// Statistics of `kind`'s table (`None` when the spec attached none).
    #[must_use]
    pub fn stats(&self, kind: OpKind) -> Option<MemoStats> {
        self.stats[kind as usize]
    }

    /// Per-kind lookup hit ratios, with the same `None` semantics as
    /// [`HitRatios::from_bank`] (no table, or no lookups).
    #[must_use]
    pub fn ratios(&self) -> HitRatios {
        let ratio = |kind: OpKind| {
            self.stats(kind).and_then(|s| {
                if s.table_lookups == 0 {
                    None
                } else {
                    Some(s.lookup_hit_ratio())
                }
            })
        };
        HitRatios {
            int_mul: ratio(OpKind::IntMul),
            fp_mul: ratio(OpKind::FpMul),
            fp_div: ratio(OpKind::FpDiv),
        }
    }
}

/// Evaluate every spec in `specs` over the same traces, fusing them into
/// one stack pass per op kind when the family qualifies ([`SweepGrid`]'s
/// preconditions: shared policies, LRU, unprotected). Falls back to
/// direct per-spec replay — bit-identical either way — when the family
/// is not fusable or a mantissa-mode pass loses exactness.
///
/// Returns one [`KindStats`] per spec, in order.
#[must_use]
pub fn replay_stats_fused<'a>(
    traces: impl IntoIterator<Item = &'a OpTrace>,
    specs: &[SweepSpec],
) -> Vec<KindStats> {
    let traces: Vec<&OpTrace> = traces.into_iter().collect();
    if let Some(fused) = try_fused(&traces, specs) {
        GRIDS_FUSED.fetch_add(1, Ordering::Relaxed);
        POINTS_FUSED.fetch_add(specs.len() as u64, Ordering::Relaxed);
        return fused;
    }
    specs
        .iter()
        .map(|&spec| KindStats::from_bank(&replay_stats(traces.iter().copied(), spec)))
        .collect()
}

fn try_fused(traces: &[&OpTrace], specs: &[SweepSpec]) -> Option<Vec<KindStats>> {
    // A one-point "grid" has no replays to avoid: direct replay is both
    // exact and cheaper than the stack engine's shared bookkeeping.
    if specs.len() < 2 {
        return None;
    }
    let first = specs.first()?;
    if specs.iter().any(|s| s.kinds != first.kinds) {
        return None;
    }
    // Split the grid into finite points and the infinite column, keeping
    // each spec's position in the finite point list.
    let mut configs = Vec::new();
    let mut slots = Vec::with_capacity(specs.len());
    for spec in specs {
        match spec.shape {
            TableShape::Finite(cfg) => {
                slots.push(Some(configs.len()));
                configs.push(cfg);
            }
            TableShape::Infinite => slots.push(None),
        }
    }
    let include_infinite = slots.iter().any(Option::is_none);
    let grid = SweepGrid::new(&configs, include_infinite).ok()?;

    let mut results = vec![KindStats::default(); specs.len()];
    for kind in first.kinds() {
        let out = sweep_kind(traces.iter().copied(), kind, &grid);
        if !out.exact {
            return None;
        }
        for (slot, result) in slots.iter().zip(&mut results) {
            result.stats[kind as usize] = Some(match slot {
                Some(p) => out.finite[*p],
                None => out.infinite.expect("grid includes the infinite column"),
            });
        }
    }
    Some(results)
}

/// Replay one or more traces through a fresh bank and report hit ratios.
#[must_use]
pub fn replay_ratios<'a>(
    traces: impl IntoIterator<Item = &'a OpTrace>,
    spec: SweepSpec,
) -> HitRatios {
    HitRatios::from_bank(&replay_stats(traces, spec))
}

/// Run one MM application over `inputs` and report per-kind hit ratios
/// from a fresh bank built from `spec`.
pub fn measure_mm_app(app: &MmApp, inputs: &[&Image], spec: SweepSpec) -> HitRatios {
    let mut sink = MemoProbeSink::new(spec);
    for input in inputs {
        app.run(&mut sink, input);
    }
    HitRatios::from_bank(sink.bank())
}

/// Run one scientific kernel at size `n` and report per-kind hit ratios.
pub fn measure_sci_app(app: &SciApp, n: usize, spec: SweepSpec) -> HitRatios {
    let mut sink = MemoProbeSink::new(spec);
    app.run(&mut sink, n);
    HitRatios::from_bank(sink.bank())
}

/// Full cycle-level measurement of one MM application over its inputs —
/// the machinery behind the paper's speedup tables (11–13).
pub fn measure_mm_cycles(
    app: &MmApp,
    inputs: &[&Image],
    cpu: CpuModel,
    bank: MemoBank,
) -> CycleReport {
    let mut acc = CycleAccountant::new(cpu, MemoryHierarchy::typical_1997(), bank);
    for input in inputs {
        app.run(&mut acc, input);
    }
    acc.report()
}

/// Raw per-kind memo statistics after running an MM app over `inputs`.
pub fn measure_mm_stats(app: &MmApp, inputs: &[&Image], spec: SweepSpec) -> MemoBank {
    let mut sink = MemoProbeSink::new(spec);
    for input in inputs {
        app.run(&mut sink, input);
    }
    sink.into_bank()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mm, sci};

    fn small_inputs() -> Vec<Image> {
        mm_inputs(16).into_iter().map(|c| c.image).take(4).collect()
    }

    #[test]
    fn mm_hit_ratios_beat_sci_hit_ratios_at_32_entries() {
        // The paper's central claim (Tables 5-7): MM applications reuse
        // operands far better than scientific codes in a small table.
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().collect();

        let mm_apps = ["vspatial", "vgauss", "vgpwl"];
        let mut mm_div = Vec::new();
        for name in mm_apps {
            let app = mm::find(name).unwrap();
            let r = measure_mm_app(&app, &input_refs, SweepSpec::paper_default());
            if let Some(d) = r.fp_div {
                mm_div.push(d);
            }
        }
        let mm_avg = mm_div.iter().sum::<f64>() / mm_div.len() as f64;

        let mut sci_div = Vec::new();
        for app in sci::all_apps() {
            let r = measure_sci_app(&app, 24, SweepSpec::paper_default());
            if let Some(d) = r.fp_div {
                sci_div.push(d);
            }
        }
        let sci_avg = sci_div.iter().sum::<f64>() / sci_div.len() as f64;

        assert!(
            mm_avg > sci_avg + 0.15,
            "MM fdiv hit {mm_avg:.2} should clearly beat scientific {sci_avg:.2}"
        );
        assert!(mm_avg > 0.4, "MM suite fdiv average {mm_avg:.2}");
    }

    #[test]
    fn infinite_bank_dominates_finite_bank() {
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().collect();
        let app = mm::find("vcost").unwrap();
        let finite = measure_mm_app(&app, &input_refs, SweepSpec::paper_default());
        let infinite = measure_mm_app(
            &app,
            &input_refs,
            SweepSpec::infinite(&[OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv]),
        );
        for kind in [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv] {
            if let (Some(f), Some(i)) = (finite.get(kind), infinite.get(kind)) {
                assert!(i + 1e-9 >= f, "{kind}: infinite {i:.3} >= finite {f:.3}");
            }
        }
    }

    #[test]
    fn absent_ops_are_none() {
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().collect();
        let app = mm::find("vgauss").unwrap();
        let r = measure_mm_app(&app, &input_refs, SweepSpec::paper_default());
        assert_eq!(r.int_mul, None, "vgauss has no imul (Table 7 '-')");
        assert!(r.fp_div.is_some());
    }

    #[test]
    fn cycle_measurement_produces_speedup() {
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().take(2).collect();
        let app = mm::find("vspatial").unwrap();
        let report = measure_mm_cycles(
            &app,
            &input_refs,
            CpuModel::paper_slow(),
            MemoBank::paper_default(),
        );
        assert!(report.speedup_measured() > 1.0, "vspatial must speed up");
        let fe = report.fraction_enhanced(OpKind::FpDiv);
        assert!(fe > 0.0 && fe < 0.6, "FE {fe}");
    }

    #[test]
    fn uniform_bank_scales_with_size() {
        // Bigger tables never hurt on a real workload (fully associative).
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().take(2).collect();
        let app = mm::find("venhance").unwrap();
        let small = measure_mm_app(
            &app,
            &input_refs,
            SweepSpec::finite(
                MemoConfig::builder(8).assoc(memo_table::Assoc::Full).build().unwrap(),
                &[OpKind::FpMul],
            ),
        );
        let large = measure_mm_app(
            &app,
            &input_refs,
            SweepSpec::finite(
                MemoConfig::builder(512).assoc(memo_table::Assoc::Full).build().unwrap(),
                &[OpKind::FpMul],
            ),
        );
        assert!(large.fp_mul.unwrap() + 1e-9 >= small.fp_mul.unwrap());
    }

    #[test]
    fn spec_build_matches_bank_constructors() {
        // SweepSpec::paper_default() must describe MemoBank::paper_default().
        let spec = SweepSpec::paper_default();
        let from_spec = spec.build();
        let direct = MemoBank::paper_default();
        for kind in OpKind::ALL {
            assert_eq!(from_spec.stats(kind).is_some(), direct.stats(kind).is_some(), "{kind}");
        }
        assert_eq!(spec.kinds().count(), 3);
        assert!(matches!(spec.shape(), TableShape::Finite(_)));
    }

    #[test]
    fn fused_replay_matches_direct_and_counts_itself() {
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().take(2).collect();
        let app = mm::find("vspatial").unwrap();
        let trace = record_mm_trace(&app, &input_refs);
        let kinds = [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv];
        let specs: Vec<SweepSpec> = [8usize, 32, 128]
            .iter()
            .map(|&e| SweepSpec::finite(MemoConfig::builder(e).build().unwrap(), &kinds))
            .chain(std::iter::once(SweepSpec::infinite(&kinds)))
            .collect();
        let before = fusion_counters();
        let fused = replay_stats_fused([&trace], &specs);
        let after = fusion_counters();
        assert_eq!(after.grids_fused, before.grids_fused + 1, "grid must fuse");
        assert_eq!(after.points_fused, before.points_fused + 4);
        for (spec, ks) in specs.iter().zip(&fused) {
            let bank = replay_stats([&trace], *spec);
            assert_eq!(*ks, KindStats::from_bank(&bank), "{spec:?}");
        }
    }

    #[test]
    fn unfusable_specs_fall_back_to_direct() {
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().take(2).collect();
        let app = mm::find("vcost").unwrap();
        let trace = record_mm_trace(&app, &input_refs);
        // FIFO replacement has no inclusion property: the helper must
        // quietly take the direct path and still be bit-identical.
        let cfg = MemoConfig::builder(32)
            .replacement(memo_table::Replacement::Fifo)
            .build()
            .unwrap();
        let spec = SweepSpec::finite(cfg, &[OpKind::FpMul]);
        let before = fusion_counters();
        let fused = replay_stats_fused([&trace], &[spec]);
        let after = fusion_counters();
        assert_eq!(after.grids_fused, before.grids_fused, "FIFO must not fuse");
        assert!(after.direct_replays > before.direct_replays);
        assert_eq!(fused[0], KindStats::from_bank(&replay_stats([&trace], spec)));
    }

    #[test]
    fn replay_is_bit_identical_to_native() {
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().take(2).collect();
        let app = mm::find("vspatial").unwrap();
        let spec = SweepSpec::paper_default();

        let native = measure_mm_stats(&app, &input_refs, spec);
        let trace = record_mm_trace(&app, &input_refs);
        let replayed = replay_stats([&trace], spec);
        for kind in OpKind::ALL {
            assert_eq!(native.stats(kind), replayed.stats(kind), "{kind}");
        }
        assert_eq!(
            measure_mm_app(&app, &input_refs, spec),
            replay_ratios([&trace], spec)
        );
    }
}

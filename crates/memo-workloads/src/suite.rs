//! Suite-level measurement drivers: run applications over their input
//! sets and collect the statistics the paper's tables report.

use memo_imaging::synth::{self, CorpusImage};
use memo_imaging::Image;
use memo_sim::{CpuModel, CycleAccountant, CycleReport, Event, EventSink, MemoBank, MemoryHierarchy};
use memo_table::{MemoStats, OpKind};

use crate::mm::MmApp;
use crate::sci::SciApp;

/// An [`EventSink`] that routes multi-cycle operations into a [`MemoBank`]
/// and discards everything else — the fast path for pure hit-ratio
/// experiments (Tables 5–10, Figures 2–4), where cycle accounting is not
/// needed.
#[derive(Debug)]
pub struct MemoProbeSink {
    bank: MemoBank,
}

impl MemoProbeSink {
    /// Probe through the given bank.
    #[must_use]
    pub fn new(bank: MemoBank) -> Self {
        MemoProbeSink { bank }
    }

    /// The bank, for reading statistics.
    #[must_use]
    pub fn bank(&self) -> &MemoBank {
        &self.bank
    }

    /// Consume the sink and return its bank.
    #[must_use]
    pub fn into_bank(self) -> MemoBank {
        self.bank
    }
}

impl EventSink for MemoProbeSink {
    fn record(&mut self, event: Event) {
        if let Event::Arith(op) = event {
            self.bank.execute(op);
        }
    }
}

/// Hit ratios per operation kind; `None` mirrors the paper's `-` cells
/// (the application never issues that operation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitRatios {
    /// Integer multiplication hit ratio.
    pub int_mul: Option<f64>,
    /// Floating-point multiplication hit ratio.
    pub fp_mul: Option<f64>,
    /// Floating-point division hit ratio.
    pub fp_div: Option<f64>,
}

impl HitRatios {
    /// Extract the ratio for `kind`.
    #[must_use]
    pub fn get(&self, kind: OpKind) -> Option<f64> {
        match kind {
            OpKind::IntMul => self.int_mul,
            OpKind::FpMul => self.fp_mul,
            OpKind::FpDiv => self.fp_div,
            OpKind::FpSqrt => None,
        }
    }

    fn from_bank(bank: &MemoBank) -> Self {
        let ratio = |kind| {
            bank.stats(kind).and_then(|s: MemoStats| {
                if s.table_lookups == 0 {
                    None
                } else {
                    Some(s.lookup_hit_ratio())
                }
            })
        };
        HitRatios {
            int_mul: ratio(OpKind::IntMul),
            fp_mul: ratio(OpKind::FpMul),
            fp_div: ratio(OpKind::FpDiv),
        }
    }
}

/// The image corpus an MM application is evaluated on (the paper ran each
/// application "on 8 to 14 inputs"; we use the full 14-image Table 8
/// corpus).
#[must_use]
pub fn mm_inputs(scale: usize) -> Vec<CorpusImage> {
    synth::corpus(scale)
}

/// Run one MM application over `inputs` and report per-kind hit ratios
/// from a fresh bank produced by `make_bank`.
pub fn measure_mm_app(
    app: &MmApp,
    inputs: &[&Image],
    make_bank: impl FnOnce() -> MemoBank,
) -> HitRatios {
    let mut sink = MemoProbeSink::new(make_bank());
    for input in inputs {
        app.run(&mut sink, input);
    }
    HitRatios::from_bank(sink.bank())
}

/// Run one scientific kernel at size `n` and report per-kind hit ratios.
pub fn measure_sci_app(
    app: &SciApp,
    n: usize,
    make_bank: impl FnOnce() -> MemoBank,
) -> HitRatios {
    let mut sink = MemoProbeSink::new(make_bank());
    app.run(&mut sink, n);
    HitRatios::from_bank(sink.bank())
}

/// Full cycle-level measurement of one MM application over its inputs —
/// the machinery behind the paper's speedup tables (11–13).
pub fn measure_mm_cycles(
    app: &MmApp,
    inputs: &[&Image],
    cpu: CpuModel,
    bank: MemoBank,
) -> CycleReport {
    let mut acc = CycleAccountant::new(cpu, MemoryHierarchy::typical_1997(), bank);
    for input in inputs {
        app.run(&mut acc, input);
    }
    acc.report()
}

/// Raw per-kind memo statistics after running an MM app over `inputs`.
pub fn measure_mm_stats(
    app: &MmApp,
    inputs: &[&Image],
    make_bank: impl FnOnce() -> MemoBank,
) -> MemoBank {
    let mut sink = MemoProbeSink::new(make_bank());
    for input in inputs {
        app.run(&mut sink, input);
    }
    sink.into_bank()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mm, sci};
    use memo_table::MemoConfig;

    fn small_inputs() -> Vec<Image> {
        mm_inputs(16).into_iter().map(|c| c.image).take(4).collect()
    }

    #[test]
    fn mm_hit_ratios_beat_sci_hit_ratios_at_32_entries() {
        // The paper's central claim (Tables 5-7): MM applications reuse
        // operands far better than scientific codes in a small table.
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().collect();

        let mm_apps = ["vspatial", "vgauss", "vgpwl"];
        let mut mm_div = Vec::new();
        for name in mm_apps {
            let app = mm::find(name).unwrap();
            let r = measure_mm_app(&app, &input_refs, MemoBank::paper_default);
            if let Some(d) = r.fp_div {
                mm_div.push(d);
            }
        }
        let mm_avg = mm_div.iter().sum::<f64>() / mm_div.len() as f64;

        let mut sci_div = Vec::new();
        for app in sci::all_apps() {
            let r = measure_sci_app(&app, 24, MemoBank::paper_default);
            if let Some(d) = r.fp_div {
                sci_div.push(d);
            }
        }
        let sci_avg = sci_div.iter().sum::<f64>() / sci_div.len() as f64;

        assert!(
            mm_avg > sci_avg + 0.15,
            "MM fdiv hit {mm_avg:.2} should clearly beat scientific {sci_avg:.2}"
        );
        assert!(mm_avg > 0.4, "MM suite fdiv average {mm_avg:.2}");
    }

    #[test]
    fn infinite_bank_dominates_finite_bank() {
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().collect();
        let app = mm::find("vcost").unwrap();
        let finite = measure_mm_app(&app, &input_refs, MemoBank::paper_default);
        let infinite = measure_mm_app(&app, &input_refs, || {
            MemoBank::infinite(&[OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv])
        });
        for kind in [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv] {
            if let (Some(f), Some(i)) = (finite.get(kind), infinite.get(kind)) {
                assert!(i + 1e-9 >= f, "{kind}: infinite {i:.3} >= finite {f:.3}");
            }
        }
    }

    #[test]
    fn absent_ops_are_none() {
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().collect();
        let app = mm::find("vgauss").unwrap();
        let r = measure_mm_app(&app, &input_refs, MemoBank::paper_default);
        assert_eq!(r.int_mul, None, "vgauss has no imul (Table 7 '-')");
        assert!(r.fp_div.is_some());
    }

    #[test]
    fn cycle_measurement_produces_speedup() {
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().take(2).collect();
        let app = mm::find("vspatial").unwrap();
        let report = measure_mm_cycles(
            &app,
            &input_refs,
            CpuModel::paper_slow(),
            MemoBank::paper_default(),
        );
        assert!(report.speedup_measured() > 1.0, "vspatial must speed up");
        let fe = report.fraction_enhanced(OpKind::FpDiv);
        assert!(fe > 0.0 && fe < 0.6, "FE {fe}");
    }

    #[test]
    fn uniform_bank_scales_with_size() {
        // Bigger tables never hurt on a real workload (fully associative).
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().take(2).collect();
        let app = mm::find("venhance").unwrap();
        let small = measure_mm_app(&app, &input_refs, || {
            MemoBank::uniform(
                MemoConfig::builder(8)
                    .assoc(memo_table::Assoc::Full)
                    .build()
                    .unwrap(),
                &[OpKind::FpMul],
            )
        });
        let large = measure_mm_app(&app, &input_refs, || {
            MemoBank::uniform(
                MemoConfig::builder(512)
                    .assoc(memo_table::Assoc::Full)
                    .build()
                    .unwrap(),
                &[OpKind::FpMul],
            )
        });
        assert!(large.fp_mul.unwrap() + 1e-9 >= small.fp_mul.unwrap());
    }
}

//! Suite-level measurement drivers: run applications over their input
//! sets and collect the statistics the paper's tables report.
//!
//! Two measurement paths produce bit-identical results (asserted by the
//! `trace_equivalence` integration tests):
//!
//! * **native** — run the kernel with a [`MemoProbeSink`] attached, as the
//!   paper ran binaries under Shade;
//! * **record / replay** — record the kernel's operand stream once with
//!   [`record_mm_trace`] / [`record_sci_trace`] and replay the
//!   [`OpTrace`] against any number of configurations with
//!   [`replay_stats`] / [`replay_ratios`]. Sweeps use this path: one
//!   native execution, N memory-speed replays.
//!
//! Bank construction lives in one place — [`SweepSpec`] — instead of
//! being re-closed at every call site.

use memo_imaging::synth::{self, CorpusImage};
use memo_imaging::Image;
use memo_sim::{
    CpuModel, CycleAccountant, CycleReport, Event, EventSink, MemoBank, MemoryHierarchy, OpTrace,
    TraceRecorderSink,
};
use memo_table::{MemoConfig, MemoStats, OpKind};

use crate::mm::MmApp;
use crate::sci::SciApp;

/// The table shape a sweep point evaluates: a finite geometry or the
/// "infinitely large, fully associative" reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TableShape {
    /// Identical finite tables built from one [`MemoConfig`].
    Finite(MemoConfig),
    /// The infinite reference table.
    Infinite,
}

/// One sweep point's bank recipe: a [`TableShape`] plus the operation
/// kinds that get a table. `Copy`, comparable, and buildable anywhere —
/// the single place bank construction happens in the sweep drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepSpec {
    shape: TableShape,
    kinds: [bool; 4],
}

impl SweepSpec {
    /// The paper's simulated system: 32-entry 4-way tables on the integer
    /// multiplier, fp multiplier, and fp divider.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::finite(
            MemoConfig::paper_default(),
            &[OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv],
        )
    }

    /// Identical finite tables from `cfg` on each of `kinds`.
    #[must_use]
    pub fn finite(cfg: MemoConfig, kinds: &[OpKind]) -> Self {
        SweepSpec { shape: TableShape::Finite(cfg), kinds: Self::mask(kinds) }
    }

    /// Infinite reference tables on each of `kinds`.
    #[must_use]
    pub fn infinite(kinds: &[OpKind]) -> Self {
        SweepSpec { shape: TableShape::Infinite, kinds: Self::mask(kinds) }
    }

    fn mask(kinds: &[OpKind]) -> [bool; 4] {
        let mut mask = [false; 4];
        for &kind in kinds {
            mask[kind as usize] = true;
        }
        mask
    }

    /// The shape of this spec's tables.
    #[must_use]
    pub fn shape(&self) -> TableShape {
        self.shape
    }

    /// The kinds that receive a table, in [`OpKind::ALL`] order.
    pub fn kinds(&self) -> impl Iterator<Item = OpKind> + '_ {
        OpKind::ALL.into_iter().filter(|&k| self.kinds[k as usize])
    }

    /// Construct the bank this spec describes.
    #[must_use]
    pub fn build(&self) -> MemoBank {
        let kinds: Vec<OpKind> = self.kinds().collect();
        match self.shape {
            TableShape::Finite(cfg) => MemoBank::uniform(cfg, &kinds),
            TableShape::Infinite => MemoBank::infinite(&kinds),
        }
    }
}

/// An [`EventSink`] that routes multi-cycle operations into a [`MemoBank`]
/// and discards everything else — the fast path for pure hit-ratio
/// experiments (Tables 5–10, Figures 2–4), where cycle accounting is not
/// needed.
#[derive(Debug)]
pub struct MemoProbeSink {
    bank: MemoBank,
}

impl MemoProbeSink {
    /// Probe through a fresh bank built from `spec`.
    #[must_use]
    pub fn new(spec: SweepSpec) -> Self {
        Self::with_bank(spec.build())
    }

    /// Probe through an existing bank (custom constructions — fault
    /// injection, circuit breakers — that [`SweepSpec`] doesn't describe).
    #[must_use]
    pub fn with_bank(bank: MemoBank) -> Self {
        MemoProbeSink { bank }
    }

    /// The bank, for reading statistics.
    #[must_use]
    pub fn bank(&self) -> &MemoBank {
        &self.bank
    }

    /// Consume the sink and return its bank.
    #[must_use]
    pub fn into_bank(self) -> MemoBank {
        self.bank
    }
}

impl EventSink for MemoProbeSink {
    fn record(&mut self, event: Event) {
        if let Event::Arith(op) = event {
            self.bank.execute(op);
        }
    }
}

/// Hit ratios per operation kind; `None` mirrors the paper's `-` cells
/// (the application never issues that operation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitRatios {
    /// Integer multiplication hit ratio.
    pub int_mul: Option<f64>,
    /// Floating-point multiplication hit ratio.
    pub fp_mul: Option<f64>,
    /// Floating-point division hit ratio.
    pub fp_div: Option<f64>,
}

impl HitRatios {
    /// Extract the ratio for `kind`.
    #[must_use]
    pub fn get(&self, kind: OpKind) -> Option<f64> {
        match kind {
            OpKind::IntMul => self.int_mul,
            OpKind::FpMul => self.fp_mul,
            OpKind::FpDiv => self.fp_div,
            OpKind::FpSqrt => None,
        }
    }

    /// Read the per-kind lookup hit ratios out of a bank.
    #[must_use]
    pub fn from_bank(bank: &MemoBank) -> Self {
        let ratio = |kind| {
            bank.stats(kind).and_then(|s: MemoStats| {
                if s.table_lookups == 0 {
                    None
                } else {
                    Some(s.lookup_hit_ratio())
                }
            })
        };
        HitRatios {
            int_mul: ratio(OpKind::IntMul),
            fp_mul: ratio(OpKind::FpMul),
            fp_div: ratio(OpKind::FpDiv),
        }
    }
}

/// The image corpus an MM application is evaluated on (the paper ran each
/// application "on 8 to 14 inputs"; we use the full 14-image Table 8
/// corpus).
#[must_use]
pub fn mm_inputs(scale: usize) -> Vec<CorpusImage> {
    synth::corpus(scale)
}

/// Record the operand stream of one MM application over `inputs` —
/// executed natively exactly once; the trace replays against any number
/// of configurations.
#[must_use]
pub fn record_mm_trace(app: &MmApp, inputs: &[&Image]) -> OpTrace {
    let mut rec = TraceRecorderSink::new();
    for input in inputs {
        app.run(&mut rec, input);
    }
    rec.into_trace()
}

/// Record the operand stream of one scientific kernel at size `n`.
#[must_use]
pub fn record_sci_trace(app: &SciApp, n: usize) -> OpTrace {
    let mut rec = TraceRecorderSink::new();
    app.run(&mut rec, n);
    rec.into_trace()
}

/// Replay one or more traces, in order, through a fresh bank built from
/// `spec` and return the bank (per-kind statistics are bit-identical to a
/// native run of the same stream).
#[must_use]
pub fn replay_stats<'a>(
    traces: impl IntoIterator<Item = &'a OpTrace>,
    spec: SweepSpec,
) -> MemoBank {
    let mut bank = spec.build();
    for trace in traces {
        trace.replay(&mut bank);
    }
    bank
}

/// Replay one or more traces through a fresh bank and report hit ratios.
#[must_use]
pub fn replay_ratios<'a>(
    traces: impl IntoIterator<Item = &'a OpTrace>,
    spec: SweepSpec,
) -> HitRatios {
    HitRatios::from_bank(&replay_stats(traces, spec))
}

/// Run one MM application over `inputs` and report per-kind hit ratios
/// from a fresh bank built from `spec`.
pub fn measure_mm_app(app: &MmApp, inputs: &[&Image], spec: SweepSpec) -> HitRatios {
    let mut sink = MemoProbeSink::new(spec);
    for input in inputs {
        app.run(&mut sink, input);
    }
    HitRatios::from_bank(sink.bank())
}

/// Run one scientific kernel at size `n` and report per-kind hit ratios.
pub fn measure_sci_app(app: &SciApp, n: usize, spec: SweepSpec) -> HitRatios {
    let mut sink = MemoProbeSink::new(spec);
    app.run(&mut sink, n);
    HitRatios::from_bank(sink.bank())
}

/// Full cycle-level measurement of one MM application over its inputs —
/// the machinery behind the paper's speedup tables (11–13).
pub fn measure_mm_cycles(
    app: &MmApp,
    inputs: &[&Image],
    cpu: CpuModel,
    bank: MemoBank,
) -> CycleReport {
    let mut acc = CycleAccountant::new(cpu, MemoryHierarchy::typical_1997(), bank);
    for input in inputs {
        app.run(&mut acc, input);
    }
    acc.report()
}

/// Raw per-kind memo statistics after running an MM app over `inputs`.
pub fn measure_mm_stats(app: &MmApp, inputs: &[&Image], spec: SweepSpec) -> MemoBank {
    let mut sink = MemoProbeSink::new(spec);
    for input in inputs {
        app.run(&mut sink, input);
    }
    sink.into_bank()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mm, sci};

    fn small_inputs() -> Vec<Image> {
        mm_inputs(16).into_iter().map(|c| c.image).take(4).collect()
    }

    #[test]
    fn mm_hit_ratios_beat_sci_hit_ratios_at_32_entries() {
        // The paper's central claim (Tables 5-7): MM applications reuse
        // operands far better than scientific codes in a small table.
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().collect();

        let mm_apps = ["vspatial", "vgauss", "vgpwl"];
        let mut mm_div = Vec::new();
        for name in mm_apps {
            let app = mm::find(name).unwrap();
            let r = measure_mm_app(&app, &input_refs, SweepSpec::paper_default());
            if let Some(d) = r.fp_div {
                mm_div.push(d);
            }
        }
        let mm_avg = mm_div.iter().sum::<f64>() / mm_div.len() as f64;

        let mut sci_div = Vec::new();
        for app in sci::all_apps() {
            let r = measure_sci_app(&app, 24, SweepSpec::paper_default());
            if let Some(d) = r.fp_div {
                sci_div.push(d);
            }
        }
        let sci_avg = sci_div.iter().sum::<f64>() / sci_div.len() as f64;

        assert!(
            mm_avg > sci_avg + 0.15,
            "MM fdiv hit {mm_avg:.2} should clearly beat scientific {sci_avg:.2}"
        );
        assert!(mm_avg > 0.4, "MM suite fdiv average {mm_avg:.2}");
    }

    #[test]
    fn infinite_bank_dominates_finite_bank() {
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().collect();
        let app = mm::find("vcost").unwrap();
        let finite = measure_mm_app(&app, &input_refs, SweepSpec::paper_default());
        let infinite = measure_mm_app(
            &app,
            &input_refs,
            SweepSpec::infinite(&[OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv]),
        );
        for kind in [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv] {
            if let (Some(f), Some(i)) = (finite.get(kind), infinite.get(kind)) {
                assert!(i + 1e-9 >= f, "{kind}: infinite {i:.3} >= finite {f:.3}");
            }
        }
    }

    #[test]
    fn absent_ops_are_none() {
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().collect();
        let app = mm::find("vgauss").unwrap();
        let r = measure_mm_app(&app, &input_refs, SweepSpec::paper_default());
        assert_eq!(r.int_mul, None, "vgauss has no imul (Table 7 '-')");
        assert!(r.fp_div.is_some());
    }

    #[test]
    fn cycle_measurement_produces_speedup() {
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().take(2).collect();
        let app = mm::find("vspatial").unwrap();
        let report = measure_mm_cycles(
            &app,
            &input_refs,
            CpuModel::paper_slow(),
            MemoBank::paper_default(),
        );
        assert!(report.speedup_measured() > 1.0, "vspatial must speed up");
        let fe = report.fraction_enhanced(OpKind::FpDiv);
        assert!(fe > 0.0 && fe < 0.6, "FE {fe}");
    }

    #[test]
    fn uniform_bank_scales_with_size() {
        // Bigger tables never hurt on a real workload (fully associative).
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().take(2).collect();
        let app = mm::find("venhance").unwrap();
        let small = measure_mm_app(
            &app,
            &input_refs,
            SweepSpec::finite(
                MemoConfig::builder(8).assoc(memo_table::Assoc::Full).build().unwrap(),
                &[OpKind::FpMul],
            ),
        );
        let large = measure_mm_app(
            &app,
            &input_refs,
            SweepSpec::finite(
                MemoConfig::builder(512).assoc(memo_table::Assoc::Full).build().unwrap(),
                &[OpKind::FpMul],
            ),
        );
        assert!(large.fp_mul.unwrap() + 1e-9 >= small.fp_mul.unwrap());
    }

    #[test]
    fn spec_build_matches_bank_constructors() {
        // SweepSpec::paper_default() must describe MemoBank::paper_default().
        let spec = SweepSpec::paper_default();
        let from_spec = spec.build();
        let direct = MemoBank::paper_default();
        for kind in OpKind::ALL {
            assert_eq!(from_spec.stats(kind).is_some(), direct.stats(kind).is_some(), "{kind}");
        }
        assert_eq!(spec.kinds().count(), 3);
        assert!(matches!(spec.shape(), TableShape::Finite(_)));
    }

    #[test]
    fn replay_is_bit_identical_to_native() {
        let inputs = small_inputs();
        let input_refs: Vec<&Image> = inputs.iter().take(2).collect();
        let app = mm::find("vspatial").unwrap();
        let spec = SweepSpec::paper_default();

        let native = measure_mm_stats(&app, &input_refs, spec);
        let trace = record_mm_trace(&app, &input_refs);
        let replayed = replay_stats([&trace], spec);
        for kind in OpKind::ALL {
            assert_eq!(native.stats(kind), replayed.stats(kind), "{kind}");
        }
        assert_eq!(
            measure_mm_app(&app, &input_refs, spec),
            replay_ratios([&trace], spec)
        );
    }
}

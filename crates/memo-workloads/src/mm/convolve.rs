//! Convolution-style applications: `vdiff`, `vgef`, `vgauss`.

use memo_imaging::{Image, PixelType};
use memo_sim::EventSink;

use crate::math::exp_approx;
use crate::mem;

/// Sobel kernels — the paper's `vdiff (sobel)` row.
const SOBEL_X: [[f64; 3]; 3] = [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]];
const SOBEL_Y: [[f64; 3]; 3] = [[-1.0, -2.0, -1.0], [0.0, 0.0, 0.0], [1.0, 2.0, 1.0]];

/// Apply a 3×3 weighted operator at `(x, y)` with clamped borders.
///
/// Zero taps are skipped (no instruction at all); ×±1 and ×±2 taps go
/// through the multiplier — ×1 is trivial (the memo table's trivial
/// detector sees it), ×2/×−1/×−2 are regular multiplies over byte pixels.
fn conv3<S: EventSink + ?Sized>(
    sink: &mut S,
    img: &Image,
    band: usize,
    x: usize,
    y: usize,
    k: &[[f64; 3]; 3],
) -> f64 {
    let (w, h) = (img.width(), img.height());
    let mut acc = 0.0;
    for (ky, row) in k.iter().enumerate() {
        for (kx, &coeff) in row.iter().enumerate() {
            if coeff == 0.0 {
                continue;
            }
            let sx = (x + kx).saturating_sub(1).min(w - 1);
            let sy = (y + ky).saturating_sub(1).min(h - 1);
            sink.load(mem::at(mem::IN, sy * w + sx));
            let p = img.get(sx, sy, band);
            let t = sink.fmul(p, coeff);
            acc = sink.fadd(acc, t);
        }
    }
    acc
}

/// `vdiff` — differentiation using two N×N weighted operators (Sobel).
///
/// Two 3×3 convolutions per pixel plus an L1 gradient magnitude. Index
/// arithmetic mixes a row-invariant `y·width` multiply (hits often) with a
/// per-pixel offset multiply (mostly missing) — the address-pattern blend
/// behind the paper's mid-range `imul` hit ratios.
pub fn vdiff<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let mut bands = Vec::new();
    for b in 0..input.bands() {
        let mut out = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let row = sink.imul(y as i64, w as i64);
                let off = sink.imul(x as i64, input.bands() as i64);
                let _ = row + off;
                let gx = conv3(sink, input, b, x, y, &SOBEL_X);
                let gy = conv3(sink, input, b, x, y, &SOBEL_Y);
                sink.int_ops(2); // abs + add
                let mag = gx.abs() + gy.abs();
                sink.store(mem::at(mem::OUT, y * w + x));
                sink.branch();
                out.push(mag);
            }
        }
        bands.push(out);
    }
    Image::new(w, h, PixelType::Float, bands).expect("vdiff preserves dimensions")
}

/// `vgef` — gradient edge finder (Table 4's "edge detection").
///
/// A Prewitt-style operator with an extra smoothing tap and a threshold;
/// all multiplies, no divisions (the paper's Table 7 shows `-` for fdiv).
pub fn vgef<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    const PREWITT_X: [[f64; 3]; 3] = [[-1.0, 0.0, 1.0], [-1.0, 0.0, 1.0], [-1.0, 0.0, 1.0]];
    const PREWITT_Y: [[f64; 3]; 3] = [[-1.0, -1.0, -1.0], [0.0, 0.0, 0.0], [1.0, 1.0, 1.0]];
    let (w, h) = (input.width(), input.height());
    let threshold = 48.0;
    let mut bands = Vec::new();
    for b in 0..input.bands() {
        let mut out = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let _ = sink.imul(y as i64, w as i64);
                let _ = sink.imul(x as i64, 3);
                let gx = conv3(sink, input, b, x, y, &PREWITT_X);
                let gy = conv3(sink, input, b, x, y, &PREWITT_Y);
                // Edge energy: gx² + gy² compared against threshold².
                let exx = sink.fmul(gx, gx);
                let eyy = sink.fmul(gy, gy);
                let e = sink.fadd(exx, eyy);
                sink.branch(); // threshold test
                let v = if e > threshold * threshold { 255.0 } else { 0.0 };
                sink.store(mem::at(mem::OUT, y * w + x));
                sink.branch();
                out.push(v);
            }
        }
        bands.push(out);
    }
    Image::new(w, h, PixelType::Float, bands).expect("vgef preserves dimensions")
}

/// `vgauss` — generates Gaussian distributions (Table 4).
///
/// Renders a grid of Gaussian blobs whose amplitudes are sampled from the
/// input image. The exponent argument `d²/2σ²` divides a small set of
/// integer squared-distances by a per-blob constant, and the exponential
/// itself divides by the scaling constant — a highly repetitive division
/// stream (the paper measures `vgauss` fdiv hit ratios of ~0.8).
pub fn vgauss<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let cell = 16usize; // one blob per 16×16 cell
    let radius = 5i64;
    let sigmas = [1.5, 2.5, 4.0]; // small parameter set, as a generator tool would offer
    let mut out = vec![0.0f64; w * h];

    let mut blob = 0usize;
    let mut cy = cell / 2;
    while cy < h {
        let mut cx = cell / 2;
        while cx < w {
            sink.load(mem::at(mem::IN, cy * w + cx));
            let amplitude = input.get(cx, cy, 0) + 1.0;
            let sigma = sigmas[blob % sigmas.len()];
            let two_sigma2 = 2.0 * sigma * sigma;
            // Separable rendering: one axis table per blob (the classic
            // optimization — exp over the tiny alphabet of 1-D squared
            // offsets divided by the per-blob spread).
            let axis: Vec<f64> = (0..=radius)
                .map(|d| {
                    let z = sink.fdiv((d * d) as f64, two_sigma2);
                    exp_approx(sink, -z)
                })
                .collect();
            for dy in -radius..=radius {
                for dx in -radius..=radius {
                    let x = cx as i64 + dx;
                    let y = cy as i64 + dy;
                    if x < 0 || y < 0 || x as usize >= w || y as usize >= h {
                        sink.annulled();
                        continue;
                    }
                    sink.int_ops(3); // |dx|, |dy|, bounds arithmetic
                    // Elliptical support test: small-integer d² over the
                    // per-blob constant — a dense, repetitive division.
                    let d2 = (dx * dx + dy * dy) as f64;
                    let r2 = sink.fdiv(d2, two_sigma2);
                    sink.branch();
                    if r2 > 9.0 {
                        continue;
                    }
                    // g = gx·gy from the axis tables: within a row gy is
                    // fixed, so the multiplier sees ~radius distinct pairs.
                    let g = sink.fmul(
                        axis[dx.unsigned_abs() as usize],
                        axis[dy.unsigned_abs() as usize],
                    );
                    let v = sink.fmul(amplitude, g);
                    let idx = y as usize * w + x as usize;
                    sink.load(mem::at(mem::OUT, idx));
                    out[idx] += v;
                    sink.store(mem::at(mem::OUT, idx));
                    sink.branch();
                }
            }
            blob += 1;
            cx += cell;
        }
        cy += cell;
    }
    Image::new(w, h, PixelType::Float, vec![out]).expect("vgauss preserves dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_imaging::rng::SplitMix64;
    use memo_imaging::synth;
    use memo_sim::{CountingSink, NullSink};

    fn input() -> Image {
        let mut rng = SplitMix64::new(23);
        synth::plasma(32, 32, 0.8, &mut rng)
    }

    #[test]
    fn vdiff_detects_a_vertical_edge() {
        // Left half 0, right half 200: Sobel-x fires along the boundary.
        let img = Image::from_fn_byte(16, 8, |x, _| if x < 8 { 0 } else { 200 });
        let out = vdiff(&mut NullSink, &img);
        assert!(out.get(8, 4, 0) > out.get(2, 4, 0));
        assert!(out.get(8, 4, 0) > out.get(14, 4, 0));
    }

    #[test]
    fn vdiff_is_flat_on_constant_images() {
        let img = Image::from_fn_byte(12, 12, |_, _| 77);
        let out = vdiff(&mut NullSink, &img);
        assert!(out.samples().all(|s| s == 0.0));
    }

    #[test]
    fn vgef_binarizes() {
        let out = vgef(&mut NullSink, &input());
        assert!(out.samples().all(|s| s == 0.0 || s == 255.0));
    }

    #[test]
    fn vgef_has_no_divisions() {
        let mut sink = CountingSink::new();
        vgef(&mut sink, &input());
        assert_eq!(sink.mix().fp_div, 0, "Table 7 shows '-' for vgef fdiv");
        assert!(sink.mix().int_mul > 0);
    }

    #[test]
    fn vgauss_renders_blobs() {
        let out = vgauss(&mut NullSink, &input());
        // Blob centers (8,8), (24,8)… must dominate far-field points.
        assert!(out.get(8, 8, 0) > out.get(0, 0, 0));
        assert!(out.get(8, 8, 0) > 0.0);
    }

    #[test]
    fn vgauss_emits_no_integer_multiplies() {
        let mut sink = CountingSink::new();
        vgauss(&mut sink, &input());
        assert_eq!(sink.mix().int_mul, 0, "Table 7 shows '-' for vgauss imul");
        assert!(sink.mix().fp_div > 0);
    }
}

//! Local-statistics applications: `vspatial`, `venhance`, `venhpatch`,
//! `vkmeans`.

use memo_imaging::{Image, PixelType};
use memo_sim::EventSink;

use crate::math::newton_sqrt;
use crate::mem;

/// Gather the 3×3 neighbourhood of `(x, y)` (clamped borders), charging
/// the loads.
fn window3<S: EventSink + ?Sized>(
    sink: &mut S,
    img: &Image,
    band: usize,
    x: usize,
    y: usize,
) -> [f64; 9] {
    let (w, h) = (img.width(), img.height());
    let mut out = [0.0; 9];
    let mut i = 0;
    for dy in -1i64..=1 {
        for dx in -1i64..=1 {
            let sx = (x as i64 + dx).clamp(0, w as i64 - 1) as usize;
            let sy = (y as i64 + dy).clamp(0, h as i64 - 1) as usize;
            sink.load(mem::at(mem::IN, sy * w + sx));
            out[i] = img.get(sx, sy, band);
            i += 1;
        }
    }
    out
}

/// `vspatial` — statistical spatial feature extraction (Table 4).
///
/// Per pixel: the 3×3 neighbourhood's mean and variance. The divisions all
/// share the constant divisor 9 with small-integer dividends (sums of
/// bytes from a low-entropy window), which is why the paper measures a
/// 0.94 fdiv hit ratio for `vspatial` — the most memoizable app in the
/// suite.
pub fn vspatial<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let mut mean_band = Vec::with_capacity(w * h);
    let mut var_band = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let _ = sink.imul(y as i64, w as i64);
            let _ = sink.imul(x as i64, 3);
            let win = window3(sink, input, 0, x, y);
            let mut sum = 0.0;
            for &p in &win {
                sum = sink.fadd(sum, p);
            }
            // Fixed-point statistics pipeline: the window sum is truncated
            // to a 16-unit grid (a 4-bit shift) before the divide, so the
            // divisions by 9 draw from a tiny local alphabet — the paper's
            // 0.94 vspatial fdiv hit ratio.
            let sum_q = (sum / 16.0).round() * 16.0;
            sink.int_ops(1);
            let mean = sink.fdiv(sum_q, 9.0);
            // Integer offsets from the rounded mean: ≤ 511 distinct
            // squaring pairs, so the multiplier reuses heavily too.
            let mean_q = mean.round();
            sink.int_ops(1);
            let mut ss = 0.0;
            for &p in &win {
                let d = sink.fsub(p, mean_q);
                let dd = sink.fmul(d, d);
                ss = sink.fadd(ss, dd);
            }
            // Scaling by the constant 1/9 is strength-reduced to a
            // reciprocal multiply by any era compiler.
            let var = sink.fmul(ss, 1.0 / 9.0);
            sink.store(mem::at(mem::OUT, y * w + x));
            sink.store(mem::at(mem::OUT + 0x8_0000, y * w + x));
            sink.branch();
            mean_band.push(mean);
            var_band.push(var);
        }
    }
    Image::new(w, h, PixelType::Float, vec![mean_band, var_band])
        .expect("vspatial preserves dimensions")
}

/// `venhance` — local transformation by mean and variance (Table 4).
///
/// Wallis-style enhancement: `out = m_d + (p − m_l) · σ_d / σ_l` with
/// desired mean/σ constants and local statistics from the 3×3 window. The
/// gain division has a continuously varying divisor (the local σ), so its
/// fdiv hit ratio is *low* (0.12 in Table 7) even though the multiplies
/// reuse well.
pub fn venhance<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let (desired_mean, desired_sigma) = (128.0, 48.0);
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let win = window3(sink, input, 0, x, y);
            let mut sum = 0.0;
            for &p in &win {
                sum = sink.fadd(sum, p);
            }
            let mean = sink.fmul(sum, 1.0 / 9.0); // compiler-strength-reduced divide
            // Integer local statistics (fixed-point image pipeline): the
            // squarings reuse, while the gain's σ stays continuous.
            let mean_q = mean.round();
            sink.int_ops(1);
            let mut ss = 0.0;
            for &p in &win {
                let d = sink.fsub(p, mean_q);
                let dd = sink.fmul(d, d);
                ss = sink.fadd(ss, dd);
            }
            let var = sink.fmul(ss, 1.0 / 9.0);
            let sigma = newton_sqrt(sink, var, 2).max(1.0);
            // The continuously-varying divisor: poor memoization fodder.
            let gain = sink.fdiv(desired_sigma, sigma);
            let centred = sink.fsub(input.get(x, y, 0), mean_q);
            let scaled = sink.fmul(gain, centred);
            let v = sink.fadd(desired_mean, scaled);
            sink.store(mem::at(mem::OUT, y * w + x));
            sink.branch();
            out.push(v.clamp(0.0, 255.0));
        }
    }
    Image::new(w, h, PixelType::Float, vec![out]).expect("venhance preserves dimensions")
}

/// `venhpatch` — contrast stretch from a local histogram (Table 4).
///
/// The image is divided into 16×16 patches; each patch's min/max drive a
/// linear stretch. One scale factor per patch, reused for 256 pixels, and
/// byte-valued offsets: both the multiplier and the divider see extremely
/// repetitive streams (Table 7: imul 0.99, fmul 0.68).
pub fn venhpatch<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let patch = 16usize;
    let mut out = vec![0.0f64; w * h];
    let mut py = 0;
    while py < h {
        let mut px = 0;
        while px < w {
            // Patch extrema (histogram scan).
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for y in py..(py + patch).min(h) {
                for x in px..(px + patch).min(w) {
                    sink.load(mem::at(mem::IN, y * w + x));
                    sink.int_ops(2);
                    let p = input.get(x, y, 0);
                    lo = lo.min(p);
                    hi = hi.max(p);
                }
            }
            let range = (hi - lo).max(1.0);
            // One stretch factor per patch.
            let scale = sink.fdiv(255.0, range);
            for y in py..(py + patch).min(h) {
                for x in px..(px + patch).min(w) {
                    let _ = sink.imul(y as i64, w as i64);
                    let p = input.get(x, y, 0);
                    let d = sink.fsub(p, lo);
                    let v = sink.fmul(d, scale);
                    sink.store(mem::at(mem::OUT, y * w + x));
                    sink.branch();
                    out[y * w + x] = v.clamp(0.0, 255.0);
                }
            }
            px += patch;
        }
        py += patch;
    }
    Image::new(w, h, PixelType::Float, vec![out]).expect("venhpatch preserves dimensions")
}

/// `vkmeans` — k-means clustering of pixel intensities (Table 4).
///
/// Eight clusters, five Lloyd iterations. Distance evaluation multiplies
/// byte-pixel offsets against themselves (≤ 256 × 8 distinct pairs) and
/// normalizes by per-cluster spread constants; centroid updates divide
/// accumulated sums by counts.
pub fn vkmeans<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    const K: usize = 8;
    const ITERS: usize = 5;
    let (w, h) = (input.width(), input.height());
    let mut centroids: [f64; K] = std::array::from_fn(|k| (k as f64 + 0.5) * (256.0 / K as f64));
    let mut assignment = vec![0u8; w * h];

    for _ in 0..ITERS {
        let mut sums = [0.0f64; K];
        let mut counts = [0u64; K];
        for y in 0..h {
            for x in 0..w {
                let idx = y * w + x;
                sink.load(mem::at(mem::IN, idx));
                let p = input.get(x, y, 0);
                // 1-D k-means: locate the two candidate clusters by a
                // boundary scan (integer compares), then evaluate the
                // normalized squared distance for just those two — byte
                // pixels against quarter-grid centroids.
                sink.int_ops(3);
                let nearest = centroids
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        (a.1 - p).abs().partial_cmp(&(b.1 - p).abs()).expect("finite")
                    })
                    .map(|(k, _)| k)
                    .expect("k >= 1");
                let second = if nearest == 0 { 1 } else { nearest - 1 };
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for k in [nearest, second] {
                    let c = centroids[k];
                    let d = sink.fsub(p, c);
                    let dd = sink.fmul(d, d);
                    // Normalized distance against the cluster spread.
                    let nd = sink.fdiv(dd, 16.0 + c);
                    sink.branch();
                    if nd < best_d {
                        best_d = nd;
                        best = k;
                    }
                }
                sums[best] += p;
                counts[best] += 1;
                sink.int_ops(2);
                sink.store(mem::at(mem::SCRATCH, idx));
                assignment[idx] = best as u8;
            }
        }
        for k in 0..K {
            if counts[k] > 0 {
                // Fixed-point centroid update (quarter-level precision):
                // keeps the per-pixel distance operands on a small grid,
                // the classic integer k-means of 90s image libraries.
                let c = sink.fdiv(sums[k], counts[k] as f64);
                centroids[k] = (c * 4.0).round() / 4.0;
                sink.int_ops(2);
            } else {
                sink.annulled();
            }
        }
    }

    let out: Vec<f64> = assignment.iter().map(|&a| centroids[a as usize]).collect();
    Image::new(w, h, PixelType::Float, vec![out]).expect("vkmeans preserves dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_imaging::rng::SplitMix64;
    use memo_imaging::synth;
    use memo_sim::{CountingSink, NullSink};

    fn input() -> Image {
        let mut rng = SplitMix64::new(31);
        synth::plasma(32, 32, 0.7, &mut rng)
    }

    #[test]
    fn vspatial_mean_is_correct_in_interior() {
        let img = Image::from_fn_byte(8, 8, |x, y| (10 * x + y) as u8);
        let out = vspatial(&mut NullSink, &img);
        let mut want = 0.0;
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                want += img.get((4 + dx) as usize, (4 + dy) as usize, 0);
            }
        }
        want /= 9.0;
        // The fixed-point pipeline truncates the window sum to a 16-unit
        // grid: the mean is accurate to 16/9 ≈ 1.8 grey levels.
        assert!((out.get(4, 4, 0) - want).abs() <= 16.0 / 9.0 + 1e-9);
    }

    #[test]
    fn vspatial_variance_zero_on_flat_regions() {
        let img = Image::from_fn_byte(8, 8, |_, _| 50);
        let out = vspatial(&mut NullSink, &img);
        assert!(out.band(1).iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn venhance_moves_toward_desired_stats() {
        let out = venhance(&mut NullSink, &input());
        let mean: f64 = out.band(0).iter().sum::<f64>() / out.pixels_per_band() as f64;
        assert!((mean - 128.0).abs() < 40.0, "enhanced mean {mean} pulled toward 128");
    }

    #[test]
    fn venhpatch_stretches_each_patch_to_full_range() {
        let out = venhpatch(&mut NullSink, &input());
        let (lo, hi) = out.min_max();
        assert!(lo <= 1.0 && hi >= 250.0, "stretched range [{lo}, {hi}]");
    }

    #[test]
    fn vkmeans_output_has_at_most_k_values() {
        let out = vkmeans(&mut NullSink, &input());
        let mut values: Vec<u64> = out.samples().map(f64::to_bits).collect();
        values.sort_unstable();
        values.dedup();
        assert!(values.len() <= 8, "{} distinct cluster values", values.len());
    }

    #[test]
    fn vkmeans_reduces_quantization_error() {
        let img = input();
        let out = vkmeans(&mut NullSink, &img);
        let err: f64 = img
            .band(0)
            .iter()
            .zip(out.band(0))
            .map(|(&p, &c)| (p - c) * (p - c))
            .sum::<f64>()
            / img.pixels_per_band() as f64;
        assert!(err < 400.0, "k=8 on smooth data should quantize well, mse={err}");
    }

    #[test]
    fn op_mixes_match_table7_presence() {
        // vspatial & venhpatch use imul; venhance & vkmeans do not.
        let img = input();
        let mut s = CountingSink::new();
        vspatial(&mut s, &img);
        assert!(s.mix().int_mul > 0);
        let mut s = CountingSink::new();
        venhance(&mut s, &img);
        assert_eq!(s.mix().int_mul, 0);
        assert!(s.mix().fp_div > 0);
        let mut s = CountingSink::new();
        vkmeans(&mut s, &img);
        assert_eq!(s.mix().int_mul, 0);
        assert!(s.mix().fp_div > 0);
    }
}

//! Geometric applications: `vslope`, `vcost`, `vdetilt`, `vwarp`,
//! `vsurf`, `vgpwl`.

use memo_imaging::{Image, PixelType};
use memo_sim::EventSink;

use crate::math::{atan2_approx, hypot_approx, newton_sqrt};
use crate::mem;

fn clamped(img: &Image, x: i64, y: i64, band: usize) -> f64 {
    let sx = x.clamp(0, img.width() as i64 - 1) as usize;
    let sy = y.clamp(0, img.height() as i64 - 1) as usize;
    img.get(sx, sy, band)
}

/// `vslope` — slope and aspect from elevation data (Table 4).
///
/// Central differences over a 30-unit grid give the surface gradient; the
/// slope magnitude needs a square root (Newton divisions on continuous
/// data) and the aspect an arctangent — a moderately memoizable division
/// mix, as the paper's 0.25 fdiv hit ratio suggests.
pub fn vslope<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let cell = 30.0; // metres per pixel
    let mut slope = Vec::with_capacity(w * h);
    let mut aspect = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let _ = sink.imul(y as i64, w as i64); // row base (hits)
            let _ = sink.imul(x as i64, 2); // aspect-pair offset (misses)
            let _ = sink.imul((y * w + x) as i64, 8); // byte offset (misses)
            for d in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                sink.load(mem::at(mem::IN, (y as i64 + d.1).max(0) as usize * w + x));
                let _ = d;
            }
            let east = clamped(input, x as i64 + 1, y as i64, 0);
            let west = clamped(input, x as i64 - 1, y as i64, 0);
            let north = clamped(input, x as i64, y as i64 - 1, 0);
            let south = clamped(input, x as i64, y as i64 + 1, 0);
            // dz/dx = (E − W) / (2·cell): small-integer dividends.
            let dx = sink.fsub(east, west);
            let dzx = sink.fdiv(dx, 2.0 * cell);
            let dy = sink.fsub(south, north);
            let dzy = sink.fdiv(dy, 2.0 * cell);
            let sl = hypot_approx(sink, dzx, dzy);
            let asp = atan2_approx(sink, dzy, dzx);
            sink.store(mem::at(mem::OUT, y * w + x));
            sink.store(mem::at(mem::OUT + 0x8_0000, y * w + x));
            sink.branch();
            slope.push(sl);
            aspect.push(asp);
        }
    }
    Image::new(w, h, PixelType::Float, vec![slope, aspect]).expect("vslope preserves dimensions")
}

/// `vcost` — surface arc length from a given pixel (Table 4).
///
/// Accumulates the 3-D arc length `√(cell² + Δz²)` along row scans from
/// the origin pixel, then normalizes by the Euclidean ground distance.
/// The arc-length square roots run on small-integer arguments (byte
/// elevation deltas) — highly repetitive divisions — while the final
/// normalization divides continuous accumulations.
pub fn vcost<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let mut out = vec![0.0f64; w * h];
    for y in 0..h {
        let mut acc = 0.0;
        for x in 0..w {
            let _ = sink.imul(y as i64, w as i64);
            sink.load(mem::at(mem::IN, y * w + x));
            if x > 0 {
                let dz = sink.fsub(input.get(x, y, 0), input.get(x - 1, y, 0));
                let dz2 = sink.fmul(dz, dz);
                let seg2 = sink.fadd(1.0, dz2);
                let seg = newton_sqrt(sink, seg2, 2);
                acc = sink.fadd(acc, seg);
            } else {
                sink.annulled();
            }
            // Normalize by ground distance from the origin column.
            let v = if x > 0 {
                sink.fdiv(acc, x as f64)
            } else {
                sink.annulled();
                0.0
            };
            sink.store(mem::at(mem::OUT, y * w + x));
            sink.branch();
            out[y * w + x] = v;
        }
    }
    Image::new(w, h, PixelType::Float, vec![out]).expect("vcost preserves dimensions")
}

/// `vdetilt` — subtract the best-fit plane (Table 4).
///
/// Ordinary least squares over the whole raster, then a per-pixel plane
/// subtraction. The normal-equation denominators depend only on the image
/// dimensions, so (as any optimizing compiler of the era would) they are
/// folded into reciprocal multiplications — `vdetilt` is the suite's only
/// multiply-only application (Table 7 shows `-` for both imul and fdiv).
pub fn vdetilt<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let n = (w * h) as f64;
    // Centered coordinates make the normal equations diagonal:
    // a = Σx'p / Σx'², b = Σy'p / Σy'², c = Σp / n.
    let cx = (w as f64 - 1.0) / 2.0;
    let cy = (h as f64 - 1.0) / 2.0;
    let (mut sxp, mut syp, mut sp) = (0.0, 0.0, 0.0);
    let (mut sxx, mut syy) = (0.0, 0.0);
    for y in 0..h {
        for x in 0..w {
            sink.load(mem::at(mem::IN, y * w + x));
            let p = input.get(x, y, 0);
            let xf = x as f64 - cx;
            let yf = y as f64 - cy;
            let xp = sink.fmul(xf, p);
            sxp = sink.fadd(sxp, xp);
            let yp = sink.fmul(yf, p);
            syp = sink.fadd(syp, yp);
            sp = sink.fadd(sp, p);
            let xx = sink.fmul(xf, xf);
            sxx = sink.fadd(sxx, xx);
            let yy = sink.fmul(yf, yf);
            syy = sink.fadd(syy, yy);
            sink.int_ops(2);
            sink.branch();
        }
    }
    // Reciprocals of dimension-only sums: compile-time constants in the
    // original tool, so multiplications — not divisions — at run time.
    let a = sink.fmul(sxp, 1.0 / sxx);
    let b = sink.fmul(syp, 1.0 / syy);
    let c = sink.fmul(sp, 1.0 / n);

    let mut out = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let xf = x as f64 - cx;
            let yf = y as f64 - cy;
            let ax = sink.fmul(a, xf);
            let by = sink.fmul(b, yf);
            let tilt = sink.fadd(ax, by);
            let plane = sink.fadd(tilt, c);
            let v = sink.fsub(input.get(x, y, 0), plane);
            sink.store(mem::at(mem::OUT, y * w + x));
            sink.branch();
            out.push(v);
        }
    }
    Image::new(w, h, PixelType::Float, vec![out]).expect("vdetilt preserves dimensions")
}

/// `vwarp` — polynomial geometric transformation (Table 4).
///
/// A projective-style warp: source coordinates are low-order polynomials
/// of the small-integer destination coordinates divided by a perspective
/// term, followed by bilinear interpolation.
pub fn vwarp<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    // Rational warp coefficients on a 1/16 grid — warp tools of the era
    // accepted fixed-point parameters, which keeps the interpolation
    // weights on a tiny value set.
    let (a0, a1, a2) = (2.0, 0.9375, 0.0625);
    let (b0, b1, b2) = (1.0, 0.0625, 0.9375);
    let mut out = Vec::with_capacity(w * h);
    let block = 8usize;
    for y in 0..h {
        for x in 0..w {
            let _ = sink.imul(y as i64, w as i64); // row base (hits)
            let _ = sink.imul(x as i64, 8); // per-pixel offsets (miss)
            let _ = sink.imul(x as i64, input.bands() as i64);
            let _ = sink.imul((y * w + x) as i64, 3);
            let xf = x as f64;
            let yf = y as f64;
            let a1x = sink.fmul(a1, xf);
            let a2y = sink.fmul(a2, yf);
            let u_partial = sink.fadd(a0, a1x);
            let u_num = sink.fadd(u_partial, a2y);
            let b1x = sink.fmul(b1, xf);
            let b2y = sink.fmul(b2, yf);
            let v_partial = sink.fadd(b0, b1x);
            let v_num = sink.fadd(v_partial, b2y);
            // Piecewise-constant perspective: the denominator is evaluated
            // once per 8×8 block (a standard rational-warp optimization),
            // so the divisions pair 1/16-grid numerators with a handful of
            // block denominators.
            let bx = (x / block) as f64;
            let by = (y / block) as f64;
            let den = 1.0 + bx * 0.004 + by * 0.003;
            sink.int_ops(2);
            let u = sink.fdiv(u_num, den);
            let v = sink.fdiv(v_num, den);
            // Bilinear sample at (u, v).
            let (iu, iv) = (u.floor(), v.floor());
            let (fu, fv) = (u - iu, v - iv);
            sink.int_ops(4);
            for d in 0..4u64 {
                sink.load(mem::at(mem::IN, d as usize));
            }
            let p00 = clamped(input, iu as i64, iv as i64, 0);
            let p10 = clamped(input, iu as i64 + 1, iv as i64, 0);
            let p01 = clamped(input, iu as i64, iv as i64 + 1, 0);
            let p11 = clamped(input, iu as i64 + 1, iv as i64 + 1, 0);
            let t0 = sink.fmul(p00, 1.0 - fu);
            let t1 = sink.fmul(p10, fu);
            let top = sink.fadd(t0, t1);
            let b0w = sink.fmul(p01, 1.0 - fu);
            let b1w = sink.fmul(p11, fu);
            let bot = sink.fadd(b0w, b1w);
            let v0 = sink.fmul(top, 1.0 - fv);
            let v1 = sink.fmul(bot, fv);
            let val = sink.fadd(v0, v1);
            sink.store(mem::at(mem::OUT, y * w + x));
            sink.branch();
            out.push(val);
        }
    }
    Image::new(w, h, PixelType::Float, vec![out]).expect("vwarp preserves dimensions")
}

/// `vsurf` — surface parameters: normal vector and illumination angle
/// (Table 4).
///
/// Tangent vectors from elevation differences, cross product, vector
/// normalization (three divisions by the continuously varying norm), and
/// a Lambertian dot product against a fixed light.
pub fn vsurf<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let light = (0.3, -0.5, 0.81); // unit-ish light direction
    let mut shade = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let _ = sink.imul(y as i64, w as i64);
            let _ = sink.imul(x as i64, 2);
            sink.load(mem::at(mem::IN, y * w + x));
            sink.load(mem::at(mem::IN, y * w + (x + 1).min(w - 1)));
            sink.load(mem::at(mem::IN, (y + 1).min(h - 1) * w + x));
            let dzx = sink.fsub(clamped(input, x as i64 + 1, y as i64, 0), input.get(x, y, 0));
            let dzy = sink.fsub(clamped(input, x as i64, y as i64 + 1, 0), input.get(x, y, 0));
            // Normal ∝ (−dzx, −dzy, 1).
            let nx = -dzx;
            let ny = -dzy;
            let nz = 1.0;
            let nxx = sink.fmul(nx, nx);
            let nyy = sink.fmul(ny, ny);
            let nsum = sink.fadd(nxx, nyy);
            let n2 = sink.fadd(nsum, 1.0);
            let norm = newton_sqrt(sink, n2, 2);
            let ux = sink.fdiv(nx, norm);
            let uy = sink.fdiv(ny, norm);
            let uz = sink.fdiv(nz, norm);
            let dx = sink.fmul(ux, light.0);
            let dy = sink.fmul(uy, light.1);
            let dz = sink.fmul(uz, light.2);
            let dxy = sink.fadd(dx, dy);
            let dot = sink.fadd(dxy, dz);
            sink.store(mem::at(mem::OUT, y * w + x));
            sink.branch();
            shade.push(dot.max(0.0));
        }
    }
    Image::new(w, h, PixelType::Float, vec![shade]).expect("vsurf preserves dimensions")
}

/// `vgpwl` — two-dimensional piecewise-linear image (Table 4).
///
/// Approximates the image by bilinear patches anchored at a coarse grid of
/// control points. Interpolation weights divide small-integer offsets by
/// the constant tile size, and the corner deltas repeat per tile — both
/// units see very repetitive streams (Table 7: fmul 0.50, fdiv 0.58).
pub fn vgpwl<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let tile = 8usize;
    let mut out = vec![0.0f64; w * h];
    let mut py = 0;
    while py < h {
        let mut px = 0;
        while px < w {
            let x1 = (px + tile).min(w - 1);
            let y1 = (py + tile).min(h - 1);
            for idx in [py * w + px, py * w + x1, y1 * w + px, y1 * w + x1] {
                sink.load(mem::at(mem::IN, idx));
            }
            let c00 = input.get(px, py, 0);
            let c10 = input.get(x1, py, 0);
            let c01 = input.get(px, y1, 0);
            let c11 = input.get(x1, y1, 0);
            for y in py..(py + tile).min(h) {
                for x in px..(px + tile).min(w) {
                    // Small-integer offsets over the constant tile size.
                    let fx = sink.fdiv((x - px) as f64, tile as f64);
                    let fy = sink.fdiv((y - py) as f64, tile as f64);
                    let d_top = sink.fsub(c10, c00);
                    let s_top = sink.fmul(d_top, fx);
                    let top = sink.fadd(c00, s_top);
                    let d_bot = sink.fsub(c11, c01);
                    let s_bot = sink.fmul(d_bot, fx);
                    let bot = sink.fadd(c01, s_bot);
                    let d_v = sink.fsub(bot, top);
                    let s_v = sink.fmul(d_v, fy);
                    let v = sink.fadd(top, s_v);
                    sink.store(mem::at(mem::OUT, y * w + x));
                    sink.branch();
                    out[y * w + x] = v;
                }
            }
            px += tile;
        }
        py += tile;
    }
    Image::new(w, h, PixelType::Float, vec![out]).expect("vgpwl preserves dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_imaging::rng::SplitMix64;
    use memo_imaging::synth;
    use memo_sim::{CountingSink, NullSink};

    fn input() -> Image {
        let mut rng = SplitMix64::new(41);
        synth::plasma(32, 32, 0.7, &mut rng)
    }

    #[test]
    fn vslope_flat_terrain_has_zero_slope() {
        let img = Image::from_fn_byte(12, 12, |_, _| 100);
        let out = vslope(&mut NullSink, &img);
        assert!(out.band(0).iter().all(|&s| s.abs() < 1e-9));
    }

    #[test]
    fn vslope_ramp_slope_matches_gradient() {
        // Elevation rises 6 per pixel eastward: central diff 12/60 = 0.2.
        let img = Image::from_fn_byte(16, 4, |x, _| (x * 6) as u8);
        let out = vslope(&mut NullSink, &img);
        let s = out.get(8, 2, 0);
        assert!((s - 0.2).abs() < 1e-3, "slope {s}");
    }

    #[test]
    fn vcost_increases_along_rows() {
        let out = vcost(&mut NullSink, &input());
        // Arc length per unit distance is ≥ 1 away from the origin column.
        assert!(out.get(20, 5, 0) >= 1.0 - 1e-9);
        assert_eq!(out.get(0, 5, 0), 0.0);
    }

    #[test]
    fn vdetilt_removes_a_pure_tilt() {
        let img = Image::from_fn_byte(16, 16, |x, y| (x * 3 + y * 2 + 10) as u8);
        let out = vdetilt(&mut NullSink, &img);
        let max_residual = out.samples().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max_residual < 1.0, "plane removed, residual {max_residual}");
    }

    #[test]
    fn vdetilt_is_multiply_only() {
        let mut s = CountingSink::new();
        vdetilt(&mut s, &input());
        assert_eq!(s.mix().fp_div, 0, "Table 7 '-' for vdetilt fdiv");
        assert_eq!(s.mix().int_mul, 0, "Table 7 '-' for vdetilt imul");
        assert!(s.mix().fp_mul > 0);
    }

    #[test]
    fn vwarp_preserves_constant_images() {
        let img = Image::from_fn_byte(24, 24, |_, _| 90);
        let out = vwarp(&mut NullSink, &img);
        assert!(out.samples().all(|v| (v - 90.0).abs() < 1e-9));
    }

    #[test]
    fn vsurf_shading_in_unit_range() {
        let out = vsurf(&mut NullSink, &input());
        assert!(out.samples().all(|v| (0.0..=1.001).contains(&v)));
    }

    #[test]
    fn vgpwl_interpolates_exactly_at_control_points() {
        let img = input();
        let out = vgpwl(&mut NullSink, &img);
        assert!((out.get(0, 0, 0) - img.get(0, 0, 0)).abs() < 1e-9);
        assert!((out.get(8, 8, 0) - img.get(8, 8, 0)).abs() < 1e-9);
    }

    #[test]
    fn vgpwl_is_close_to_smooth_input() {
        let mut rng = SplitMix64::new(43);
        let img = synth::smooth(&synth::plasma(32, 32, 0.5, &mut rng), 2);
        let out = vgpwl(&mut NullSink, &img);
        let mse: f64 = img
            .band(0)
            .iter()
            .zip(out.band(0))
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f64>()
            / img.pixels_per_band() as f64;
        assert!(mse < 100.0, "piecewise-linear fit mse {mse}");
    }
}

//! Point-wise applications: `vsqrt`, `vrect2pol`, `vmpp`.

use memo_imaging::{Image, PixelType};
use memo_sim::EventSink;

use crate::math::{atan2_approx, hypot_approx, newton_sqrt};
use crate::mem;

/// `vsqrt` — square root of each pixel (Table 4).
///
/// The square root is computed by the classic Newton–Raphson iteration, so
/// the kernel's multi-cycle traffic is *divisions* — which is why the
/// paper's Table 11 (fdiv speedups) includes `vsqrt`. Byte-valued pixels
/// give at most 256 distinct iteration streams, so the divisions repeat
/// heavily.
pub fn vsqrt<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let mut bands = Vec::new();
    for b in 0..input.bands() {
        let mut out = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let idx = y * w + x;
                sink.load(mem::at(mem::IN, idx));
                let p = input.get(x, y, b);
                // Two iterations suffice for 8-bit data — and keep the
                // divider's operand alphabet at 2 pairs per grey level.
                let r = newton_sqrt(sink, p, 2);
                sink.store(mem::at(mem::OUT, idx));
                sink.branch();
                out.push(r);
            }
        }
        bands.push(out);
    }
    Image::new(w, h, PixelType::Float, bands).expect("vsqrt preserves dimensions")
}

/// Derive a companion "imaginary" plane from the input (the Khoros tools
/// consumed genuine complex images; we synthesize the imaginary part from
/// the horizontally shifted image, keeping it image-derived and byte-ish).
fn imaginary_of(input: &Image, band: usize, x: usize, y: usize) -> f64 {
    let xs = (x + 1) % input.width();
    input.get(xs, y, band) - 128.0
}

/// `vrect2pol` — rectangular → polar conversion (Table 4).
///
/// Per pixel: magnitude `r = √(re² + im²)` and phase `θ = atan2(im, re)`.
/// The arctangent's ratio division dominates the fdiv stream.
pub fn vrect2pol<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let mut mag = Vec::with_capacity(w * h);
    let mut phase = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let idx = y * w + x;
            sink.load(mem::at(mem::IN, idx));
            sink.load(mem::at(mem::AUX, idx));
            let re = input.get(x, y, 0) - 128.0;
            let im = imaginary_of(input, 0, x, y);
            let r = hypot_approx(sink, re, im);
            let th = atan2_approx(sink, im, re);
            sink.store(mem::at(mem::OUT, idx));
            sink.store(mem::at(mem::OUT + 0x8_0000, idx));
            sink.int_ops(2);
            sink.branch();
            mag.push(r);
            phase.push(th);
        }
    }
    Image::new(w, h, PixelType::Float, vec![mag, phase]).expect("vrect2pol preserves dimensions")
}

/// `vmpp` — 2-D information from COMPLEX images (Table 4).
///
/// Extracts magnitude, power (`re² + im²`) and normalized phase per pixel;
/// the power normalization divides by the local magnitude.
pub fn vmpp<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    let (w, h) = (input.width(), input.height());
    let mut mag = Vec::with_capacity(w * h);
    let mut power = Vec::with_capacity(w * h);
    let mut norm = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let idx = y * w + x;
            sink.load(mem::at(mem::IN, idx));
            sink.load(mem::at(mem::AUX, idx));
            let re = input.get(x, y, 0) - 128.0;
            let im = imaginary_of(input, 0, x, y);
            let rr = sink.fmul(re, re);
            let ii = sink.fmul(im, im);
            let pw = sink.fadd(rr, ii);
            let r = newton_sqrt(sink, pw, 3);
            // Normalized real part: re / |z| (guard the zero vector).
            let n = if r > 0.0 {
                sink.fdiv(re, r)
            } else {
                sink.annulled();
                0.0
            };
            sink.store(mem::at(mem::OUT, idx));
            sink.store(mem::at(mem::OUT + 0x8_0000, idx));
            sink.store(mem::at(mem::OUT + 0x10_0000, idx));
            sink.int_ops(2);
            sink.branch();
            mag.push(r);
            power.push(pw);
            norm.push(n);
        }
    }
    Image::new(w, h, PixelType::Float, vec![mag, power, norm]).expect("vmpp preserves dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_imaging::synth;
    use memo_imaging::rng::SplitMix64;
    use memo_sim::{CountingSink, NullSink};

    fn input() -> Image {
        let mut rng = SplitMix64::new(17);
        synth::noise(24, 16, 64, &mut rng)
    }

    #[test]
    fn vsqrt_computes_square_roots() {
        let img = input();
        let out = vsqrt(&mut NullSink, &img);
        for y in 0..img.height() {
            for x in 0..img.width() {
                let want = img.get(x, y, 0).sqrt();
                let got = out.get(x, y, 0);
                assert!((got - want).abs() < 1e-4 * want.max(1.0), "({x},{y}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn vsqrt_divides_not_multiplies_mostly() {
        let mut sink = CountingSink::new();
        vsqrt(&mut sink, &input());
        let m = sink.mix();
        assert!(m.fp_div > 0);
        assert_eq!(m.int_mul, 0, "vsqrt has no integer multiplies (Table 7 '-')");
    }

    #[test]
    fn vrect2pol_matches_reference_polar() {
        let img = input();
        let out = vrect2pol(&mut NullSink, &img);
        let (x, y) = (5, 3);
        let re = img.get(x, y, 0) - 128.0;
        let im = img.get((x + 1) % img.width(), y, 0) - 128.0;
        assert!((out.get(x, y, 0) - (re * re + im * im).sqrt()).abs() < 1e-3);
        assert!((out.get(x, y, 1) - f64::atan2(im, re)).abs() < 5e-3);
    }

    #[test]
    fn vmpp_power_is_square_of_magnitude() {
        let img = input();
        let out = vmpp(&mut NullSink, &img);
        for x in 0..img.width() {
            let m = out.get(x, 2, 0);
            let p = out.get(x, 2, 1);
            assert!((m * m - p).abs() < 1e-3 * p.max(1.0));
        }
    }

    #[test]
    fn complex_apps_emit_divisions() {
        for f in [vrect2pol, vmpp] as [fn(&mut CountingSink, &Image) -> Image; 2] {
            let mut sink = CountingSink::new();
            f(&mut sink, &input());
            assert!(sink.mix().fp_div > 0);
            assert!(sink.mix().fp_mul > 0);
        }
    }
}

//! The eighteen Khoros multi-media applications of Table 4.
//!
//! Each function re-implements the corresponding Khoros image-processing /
//! DSP program over our [`Image`] substrate, instrumented through
//! [`EventSink`]. The kernels compute real outputs; their multiply/divide
//! operand streams therefore carry the genuine value-locality the paper
//! measured (byte-valued pixels × small coefficient sets within
//! low-entropy windows).
//!
//! | name | paper description |
//! |------|-------------------|
//! | `vspatial`  | statistical spatial feature extraction |
//! | `vcost`     | surface arc length from a given pixel |
//! | `vslope`    | slope and aspect images from elevation data |
//! | `vsqrt`     | square root of each pixel |
//! | `vdiff`     | differentiation using two N×N weighted ops |
//! | `vdetilt`   | best-fit plane subtracted from the image |
//! | `vgauss`    | generates Gaussian distributions |
//! | `venhance`  | local transformation (mean & variance) |
//! | `vgef`      | edge detection |
//! | `vwarp`     | polynomial geometric transformation |
//! | `vrect2pol` | conversion of rectangular to polar data |
//! | `vmpp`      | 2-D information from COMPLEX images |
//! | `vbrf`      | band-reject filtering in the frequency domain |
//! | `vbpf`      | band-pass filtering in the frequency domain |
//! | `vsurf`     | surface parameters (normal and angle) |
//! | `vkmeans`   | k-means clustering |
//! | `vgpwl`     | two-dimensional piecewise-linear image |
//! | `venhpatch` | contrast stretch from a local histogram |

mod convolve;
mod freq;
mod geom;
mod point;
mod stats;

pub use convolve::{vdiff, vgauss, vgef};
pub use freq::{vbpf, vbrf};
pub use geom::{vcost, vdetilt, vgpwl, vslope, vsurf, vwarp};
pub use point::{vmpp, vrect2pol, vsqrt};
pub use stats::{venhance, venhpatch, vkmeans, vspatial};

use memo_imaging::Image;
use memo_sim::EventSink;

/// A registered multi-media application.
#[derive(Clone, Copy)]
pub struct MmApp {
    /// Application name, as in Table 4.
    pub name: &'static str,
    /// One-line description from Table 4.
    pub description: &'static str,
    run: fn(&mut dyn EventSink, &Image) -> Image,
}

impl std::fmt::Debug for MmApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MmApp({})", self.name)
    }
}

impl MmApp {
    /// Run the application on `input`, streaming events into `sink`.
    pub fn run(&self, sink: &mut dyn EventSink, input: &Image) -> Image {
        (self.run)(sink, input)
    }
}

macro_rules! app {
    ($name:ident, $desc:expr) => {
        MmApp {
            name: stringify!($name),
            description: $desc,
            run: |sink, img| $name(sink, img),
        }
    };
}

/// All eighteen applications, in the paper's Table 4 order.
#[must_use]
pub fn apps() -> Vec<MmApp> {
    vec![
        app!(vspatial, "Statistical spatial feature extraction"),
        app!(vcost, "Surface arc length from a given pixel"),
        app!(vslope, "Slope and aspect images from elevation data"),
        app!(vsqrt, "Square root of each pixel"),
        app!(vdiff, "Differentiation using two NxN weighted ops"),
        app!(vdetilt, "Best-fit plane subtracted from the image"),
        app!(vgauss, "Generates Gaussian distributions"),
        app!(venhance, "Local transformation (mean & variance)"),
        app!(vgef, "Edge detection"),
        app!(vwarp, "Polynomial geometric transformation (warp)"),
        app!(vrect2pol, "Conversion of rectangular to polar data"),
        app!(vmpp, "2-D information from COMPLEX images"),
        app!(vbrf, "Band-reject filtering in the frequency domain"),
        app!(vbpf, "Band-pass filtering in the frequency domain"),
        app!(vsurf, "Surface parameters (normal and angle)"),
        app!(vkmeans, "Kmeans clustering algorithm"),
        app!(vgpwl, "Two dimensional piecewise linear image"),
        app!(venhpatch, "Stretches contrast based on a local histogram"),
    ]
}

/// Look an application up by name.
#[must_use]
pub fn find(name: &str) -> Option<MmApp> {
    apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_imaging::synth;
    use memo_sim::CountingSink;

    #[test]
    fn registry_has_all_eighteen() {
        let apps = apps();
        assert_eq!(apps.len(), 18);
        let mut names: Vec<_> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18, "names are unique");
    }

    #[test]
    fn find_by_name() {
        assert!(find("vgauss").is_some());
        assert!(find("nosuch").is_none());
    }

    #[test]
    fn every_app_runs_and_emits_fp_work() {
        let corpus = synth::corpus(16);
        let img = &corpus[0].image;
        for app in apps() {
            let mut sink = CountingSink::new();
            let out = app.run(&mut sink, img);
            assert!(out.width() > 0, "{} produced an image", app.name);
            let m = sink.mix();
            assert!(
                m.fp_mul + m.fp_div + m.fp_sqrt > 0,
                "{} must exercise a multi-cycle fp unit",
                app.name
            );
            assert!(m.loads > 0 && m.branches > 0, "{} emits a full stream", app.name);
        }
    }
}

//! Frequency-domain applications: `vbrf` (band-reject) and `vbpf`
//! (band-pass).
//!
//! Both run a real radix-2 FFT along each image row, apply a frequency
//! mask, and transform back. FFT butterflies multiply twiddle factors into
//! continuously varying spectral data — nearly unmemoizable (the paper
//! measures an fmul hit ratio of 0.01 for `vbrf`) — while the surrounding
//! windowing / fixed-point stages reuse heavily, which is how `vbpf`
//! reaches 0.54.

use memo_imaging::{Image, PixelType};
use memo_sim::EventSink;

use crate::mem;

/// Complex multiply-accumulate butterfly over one stage pair.
fn butterfly<S: EventSink + ?Sized>(
    sink: &mut S,
    a: (f64, f64),
    b: (f64, f64),
    w: (f64, f64),
) -> ((f64, f64), (f64, f64)) {
    // t = w · b (4 multiplies, 2 adds)
    let rr = sink.fmul(w.0, b.0);
    let ii = sink.fmul(w.1, b.1);
    let ri = sink.fmul(w.0, b.1);
    let ir = sink.fmul(w.1, b.0);
    let tr = sink.fsub(rr, ii);
    let ti = sink.fadd(ri, ir);
    let a_re = sink.fadd(a.0, tr);
    let a_im = sink.fadd(a.1, ti);
    let b_re = sink.fsub(a.0, tr);
    let b_im = sink.fsub(a.1, ti);
    ((a_re, a_im), (b_re, b_im))
}

/// In-place iterative radix-2 FFT (decimation in time).
///
/// `data.len()` must be a power of two. Twiddle factors come from a
/// precomputed table (charged as loads, like the sine tables real DSP
/// codes index). With `quantum = Some(q)` the transform runs in
/// fixed-point mode: twiddles and butterfly outputs are rounded to the
/// grid `q` — the block-floating-point FFT of 90s DSP pipelines, whose
/// small operand alphabet is what makes `vbpf` memoizable.
fn fft<S: EventSink + ?Sized>(
    sink: &mut S,
    data: &mut [(f64, f64)],
    inverse: bool,
    quantum: Option<f64>,
) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        sink.int_ops(2);
        if (j as usize) > i {
            data.swap(i, j as usize);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                sink.load(mem::at(mem::SCRATCH, k)); // twiddle table
                let mut w = ((ang * k as f64).cos(), (ang * k as f64).sin());
                if quantum.is_some() {
                    // Fixed-point twiddle table (1/64 steps is typical).
                    w = ((w.0 * 64.0).round() / 64.0, (w.1 * 64.0).round() / 64.0);
                }
                let (a, b) = (data[start + k], data[start + k + len / 2]);
                sink.load(mem::at(mem::AUX, start + k));
                sink.load(mem::at(mem::AUX, start + k + len / 2));
                let (mut na, mut nb) = butterfly(sink, a, b, w);
                if let Some(q) = quantum {
                    na = ((na.0 / q).round() * q, (na.1 / q).round() * q);
                    nb = ((nb.0 / q).round() * q, (nb.1 / q).round() * q);
                    sink.int_ops(4);
                }
                data[start + k] = na;
                data[start + k + len / 2] = nb;
                sink.store(mem::at(mem::AUX, start + k));
                sink.store(mem::at(mem::AUX, start + k + len / 2));
                sink.branch();
            }
        }
        len <<= 1;
    }
}

/// Shared row-filter driver. `keep` decides which frequency bins survive;
/// `quantum` switches the whole pipeline into fixed-point mode (windowing,
/// butterflies, spectrum and the final scaling all operate on a small
/// value grid, making the streams memoizable).
fn row_filter<S: EventSink + ?Sized>(
    sink: &mut S,
    input: &Image,
    keep: impl Fn(usize, usize) -> bool,
    windowed: bool,
    quantum: Option<f64>,
) -> Image {
    let (w, h) = (input.width(), input.height());
    let n = w.next_power_of_two().max(8);
    // Quantized Hann window — a small coefficient set over byte pixels.
    let window: Vec<f64> = (0..n)
        .map(|i| {
            let raw = 0.5 - 0.5 * (std::f64::consts::TAU * i as f64 / n as f64).cos();
            (raw * 16.0).round() / 16.0
        })
        .collect();

    let mut out = Vec::with_capacity(w * h);
    for y in 0..h {
        let mut row: Vec<(f64, f64)> = Vec::with_capacity(n);
        for (x, &win) in window.iter().enumerate() {
            let p = if x < w {
                sink.load(mem::at(mem::IN, y * w + x));
                input.get(x, y, 0)
            } else {
                0.0
            };
            let v = if windowed {
                sink.load(mem::at(mem::SCRATCH, x));
                sink.fmul(p, win)
            } else {
                p
            };
            row.push((v, 0.0));
            sink.int_ops(1);
        }
        fft(sink, &mut row, false, quantum);
        for (k, bin) in row.iter_mut().enumerate() {
            let _ = sink.imul(y as i64, n as i64); // row base (hits)
            let _ = sink.imul(y as i64, 2 * n as i64); // output row base (hits)
            let _ = sink.imul(k as i64, 2); // complex-pair offset (misses)
            sink.branch();
            if !keep(k, n) {
                // Mask multiply by zero: trivial, detected before the table.
                bin.0 = sink.fmul(bin.0, 0.0);
                bin.1 = sink.fmul(bin.1, 0.0);
            }
        }
        if quantum.is_some() {
            for bin in row.iter_mut() {
                sink.int_ops(2);
                bin.0 = bin.0.round();
                bin.1 = bin.1.round();
            }
        }
        fft(sink, &mut row, true, quantum);
        for (x, bin) in row.iter().take(w).enumerate() {
            // Inverse-FFT normalization: divide by the constant N.
            let v = sink.fdiv(bin.0, n as f64);
            sink.store(mem::at(mem::OUT, y * w + x));
            out.push(v);
        }
    }
    Image::new(w, h, PixelType::Float, vec![out]).expect("row filter preserves dimensions")
}

/// `vbrf` — band-reject filtering in the frequency domain (Table 4).
///
/// Rejects the middle octave of row frequencies. Raw floating-point
/// pipeline: almost nothing repeats (fmul hit ≈ 0.01 in Table 7).
pub fn vbrf<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    row_filter(
        sink,
        input,
        |k, n| {
            let f = k.min(n - k); // fold to positive frequency
            !(n / 8..n / 3).contains(&f)
        },
        false,
        None,
    )
}

/// `vbpf` — band-pass filtering in the frequency domain (Table 4).
///
/// Keeps the low-mid band. The quantized analysis window and fixed-point
/// spectrum give the multiplier and divider repetitive operand streams.
pub fn vbpf<S: EventSink + ?Sized>(sink: &mut S, input: &Image) -> Image {
    row_filter(
        sink,
        input,
        |k, n| {
            let f = k.min(n - k);
            (n / 16..n / 4).contains(&f) || f == 0
        },
        true,
        Some(0.0625),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_imaging::rng::SplitMix64;
    use memo_imaging::synth;
    use memo_sim::{CountingSink, NullSink};

    #[test]
    fn fft_roundtrip_recovers_signal() {
        let mut sink = NullSink;
        let src: Vec<(f64, f64)> =
            (0..16).map(|i| ((i as f64 * 0.7).sin() * 10.0, 0.0)).collect();
        let mut data = src.clone();
        fft(&mut sink, &mut data, false, None);
        fft(&mut sink, &mut data, true, None);
        for (orig, got) in src.iter().zip(&data) {
            assert!((orig.0 - got.0 / 16.0).abs() < 1e-9);
            assert!((got.1 / 16.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut sink = NullSink;
        let mut data = vec![(0.0, 0.0); 8];
        data[0] = (1.0, 0.0);
        fft(&mut sink, &mut data, false, None);
        for bin in &data {
            assert!((bin.0 - 1.0).abs() < 1e-12 && bin.1.abs() < 1e-12);
        }
    }

    #[test]
    fn vbrf_preserves_dc() {
        let img = memo_imaging::Image::from_fn_byte(16, 4, |_, _| 100);
        let out = vbrf(&mut NullSink, &img);
        // A constant image is pure DC: the reject band leaves it intact.
        for x in 0..16 {
            assert!((out.get(x, 2, 0) - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn vbrf_attenuates_mid_band() {
        // A mid-frequency cosine lands in the reject band [n/8, n/3).
        let img = memo_imaging::Image::from_fn_byte(32, 4, |x, _| {
            (128.0 + 100.0 * (std::f64::consts::TAU * 8.0 * x as f64 / 32.0).cos()) as u8
        });
        let out = vbrf(&mut NullSink, &img);
        let energy: f64 = (0..32).map(|x| (out.get(x, 1, 0) - 128.0).powi(2)).sum();
        let input_energy: f64 = (0..32).map(|x| (img.get(x, 1, 0) - 128.0).powi(2)).sum();
        assert!(energy < input_energy * 0.1, "rejected: {energy} vs {input_energy}");
    }

    #[test]
    fn vbpf_rejects_dc_ripple_less_than_band() {
        let mut rng = SplitMix64::new(47);
        let img = synth::noise(32, 8, 256, &mut rng);
        let out = vbpf(&mut NullSink, &img);
        assert_eq!((out.width(), out.height()), (32, 8));
    }

    #[test]
    fn filters_emit_the_expected_mix() {
        let mut rng = SplitMix64::new(53);
        let img = synth::noise(32, 8, 64, &mut rng);
        let mut s = CountingSink::new();
        vbrf(&mut s, &img);
        let brf = s.mix();
        assert!(brf.fp_mul > 0 && brf.fp_div > 0 && brf.int_mul > 0);

        let mut s = CountingSink::new();
        vbpf(&mut s, &img);
        let bpf = s.mix();
        assert!(bpf.fp_mul > brf.fp_mul, "vbpf adds windowing multiplies");
    }
}

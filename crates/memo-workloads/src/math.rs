//! Instrumented math building blocks.
//!
//! 1990s image-processing codes computed `sqrt`, `exp`, `atan` in software
//! from multiplies and divides — which is exactly why the paper's `vsqrt`
//! application appears in the *division* speedup table (its Newton
//! iteration divides), and why `vgauss` (exponentials) and `vrect2pol`
//! (arctangents) are division-heavy. These helpers emit the same operation
//! streams.

use memo_sim::EventSink;

/// Square root by Newton–Raphson: `x' = (x + a/x) / 2`.
///
/// Emits one `fdiv` and one `fmul` per iteration plus the seeding ops.
/// Three iterations from a decent seed give ~1e-6 relative accuracy on
/// pixel-range data — what a fast 90s library would ship.
pub fn newton_sqrt<S: EventSink + ?Sized>(sink: &mut S, a: f64, iterations: u32) -> f64 {
    if a <= 0.0 {
        return if a == 0.0 { 0.0 } else { f64::NAN };
    }
    // Seed from the exponent (bit trick — integer work).
    sink.int_ops(2);
    let mut x = f64::from_bits((a.to_bits() >> 1) + (0x3FF0_0000_0000_0000 >> 1));
    for _ in 0..iterations {
        let q = sink.fdiv(a, x);
        let s = sink.fadd(x, q);
        x = sink.fmul(s, 0.5);
        sink.branch();
    }
    x
}

/// `exp(x)` by scaling-and-squaring of `(1 + x/1024)^1024`.
///
/// Emits one `fdiv` (by the constant 1024 — highly memoizable when `x`
/// repeats) and ten squarings (`fmul`).
pub fn exp_approx<S: EventSink + ?Sized>(sink: &mut S, x: f64) -> f64 {
    let scaled = sink.fdiv(x, 1024.0);
    let mut y = sink.fadd(1.0, scaled);
    for _ in 0..10 {
        y = sink.fmul(y, y);
    }
    y
}

/// `atan2(y, x)` from the ratio `y/x` and a degree-7 odd polynomial.
///
/// Emits one `fdiv` plus four `fmul`s (Horner on `r²`), with quadrant
/// fix-up in integer ops.
pub fn atan2_approx<S: EventSink + ?Sized>(sink: &mut S, y: f64, x: f64) -> f64 {
    use std::f64::consts::{FRAC_PI_2, PI};
    sink.int_ops(2); // sign/quadrant tests
    if x == 0.0 && y == 0.0 {
        return 0.0;
    }
    // Reduce to |r| <= 1 by swapping the ratio.
    let (num, den, swapped) = if y.abs() <= x.abs() { (y, x, false) } else { (x, y, true) };
    let r = sink.fdiv(num, den);
    let r2 = sink.fmul(r, r);
    // atan(r) ≈ r·(c1 + r²·(c3 + r²·c5)) — odd minimax fit on [-1, 1].
    let mut p = sink.fmul(r2, -0.046_496_474_9);
    p = sink.fadd(p, 0.1593_1422);
    p = sink.fmul(p, r2);
    p = sink.fadd(p, -0.3276_2277);
    p = sink.fmul(p, r2);
    p = sink.fadd(p, 0.9999_9345);
    let mut angle = sink.fmul(r, p);
    if swapped {
        angle = if r >= 0.0 { FRAC_PI_2 - angle } else { -FRAC_PI_2 - angle };
        sink.branch();
    }
    if x < 0.0 {
        angle = if y >= 0.0 { angle + PI } else { angle - PI };
        sink.branch();
    }
    angle
}

/// Hypotenuse `sqrt(a² + b²)` — two multiplies, an add, and a Newton sqrt.
pub fn hypot_approx<S: EventSink + ?Sized>(sink: &mut S, a: f64, b: f64) -> f64 {
    let aa = sink.fmul(a, a);
    let bb = sink.fmul(b, b);
    let sum = sink.fadd(aa, bb);
    newton_sqrt(sink, sum, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_sim::{CountingSink, NullSink};

    #[test]
    fn newton_sqrt_converges() {
        let mut sink = NullSink;
        for a in [0.25, 1.0, 2.0, 100.0, 65025.0] {
            let got = newton_sqrt(&mut sink, a, 4);
            assert!((got - a.sqrt()).abs() / a.sqrt() < 1e-6, "sqrt({a}) ≈ {got}");
        }
        assert_eq!(newton_sqrt(&mut sink, 0.0, 3), 0.0);
        assert!(newton_sqrt(&mut sink, -1.0, 3).is_nan());
    }

    #[test]
    fn newton_sqrt_emits_divisions() {
        let mut sink = CountingSink::new();
        newton_sqrt(&mut sink, 2.0, 3);
        assert_eq!(sink.mix().fp_div, 3);
        assert_eq!(sink.mix().fp_mul, 3);
    }

    #[test]
    fn exp_is_close_on_kernel_range() {
        let mut sink = NullSink;
        for x in [-4.0, -2.0, -0.5, 0.0, 0.5, 1.0] {
            let got = exp_approx(&mut sink, x);
            let want = x.exp();
            assert!((got - want).abs() / want < 0.01, "exp({x}): {got} vs {want}");
        }
    }

    #[test]
    fn exp_emits_one_division_ten_multiplies() {
        let mut sink = CountingSink::new();
        exp_approx(&mut sink, -1.5);
        assert_eq!(sink.mix().fp_div, 1);
        assert_eq!(sink.mix().fp_mul, 10);
    }

    #[test]
    fn atan2_quadrants() {
        let mut sink = NullSink;
        for &(y, x) in &[
            (1.0, 1.0),
            (1.0, -1.0),
            (-1.0, -1.0),
            (-1.0, 1.0),
            (0.3, 2.0),
            (2.0, 0.3),
            (-2.0, 0.3),
        ] {
            let got = atan2_approx(&mut sink, y, x);
            let want = f64::atan2(y, x);
            assert!((got - want).abs() < 2e-3, "atan2({y},{x}): {got} vs {want}");
        }
        assert_eq!(atan2_approx(&mut sink, 0.0, 0.0), 0.0);
    }

    #[test]
    fn hypot_matches() {
        let mut sink = NullSink;
        let got = hypot_approx(&mut sink, 3.0, 4.0);
        assert!((got - 5.0).abs() < 1e-6);
    }
}

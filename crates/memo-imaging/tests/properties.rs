//! Property-style tests for the image substrate: entropy bounds, generator
//! invariants, and PNM round-trips over deterministic pseudo-random images
//! (the repo builds offline, so SplitMix64 streams replace proptest).

use memo_imaging::rng::SplitMix64;
use memo_imaging::{entropy, io, synth, Histogram, Image, PixelType};

fn arb_byte_image(r: &mut SplitMix64) -> Image {
    let w = 1 + r.next_below(39) as usize;
    let h = 1 + r.next_below(39) as usize;
    let mut rng = SplitMix64::new(r.next_u64());
    Image::from_fn_byte(w, h, |_, _| rng.next_below(256) as u8)
}

const ROUNDS: u64 = 32;

/// Shannon entropy is bounded by the log of the alphabet size.
#[test]
fn entropy_is_bounded() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("entropy");
        let n = 1 + r.next_below(2000) as usize;
        let samples: Vec<u8> = (0..n).map(|_| r.next_below(256) as u8).collect();
        let h = Histogram::from_samples(samples.iter().map(|&b| f64::from(b)));
        let e = h.entropy_bits();
        assert!(e >= 0.0);
        assert!(e <= 8.0 + 1e-9);
        assert!(e <= (h.distinct() as f64).log2() + 1e-9);
    }
}

/// Windowed entropy never exceeds what the window alphabet allows and
/// full-image entropy never exceeds 8 bits for byte images.
#[test]
fn windowed_entropy_bounds() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("windowed");
        let img = arb_byte_image(&mut r);
        let full = entropy::full_entropy(&img).unwrap();
        let w8 = entropy::windowed_entropy(&img, 8).unwrap();
        assert!(full <= 8.0 + 1e-9);
        // An 8×8 window holds at most 64 samples: ≤ 6 bits.
        assert!(w8 <= 6.0 + 1e-9);
    }
}

/// Quantization to `levels` bounds entropy by log2(levels) and is
/// idempotent.
#[test]
fn quantize_bounds_and_idempotence() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("quantize");
        let img = arb_byte_image(&mut r);
        let levels = 1 + r.next_below(256);
        let q = synth::quantize(&img, levels);
        let e = entropy::full_entropy(&q).unwrap();
        assert!(e <= (levels as f64).log2() + 1e-9, "entropy {e} vs levels {levels}");
        let qq = synth::quantize(&q, levels);
        assert_eq!(q, qq, "quantization must be idempotent");
    }
}

/// PNM round-trips arbitrary single-band byte images exactly.
#[test]
fn pnm_roundtrip() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("pnm");
        let img = arb_byte_image(&mut r);
        let mut buf = Vec::new();
        io::write_pnm(&img, &mut buf).unwrap();
        let back = io::read_pnm(buf.as_slice()).unwrap();
        assert_eq!(back, img);
    }
}

/// Crop then read agrees with direct access; stacking preserves bands.
#[test]
fn crop_and_stack_are_consistent() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("crop");
        let img = arb_byte_image(&mut r);
        let fx = 0.1 + 0.9 * r.next_f64();
        let fy = 0.1 + 0.9 * r.next_f64();
        let cw = ((img.width() as f64 * fx) as usize).max(1);
        let ch = ((img.height() as f64 * fy) as usize).max(1);
        let c = synth::crop(&img, cw, ch);
        assert_eq!((c.width(), c.height()), (cw, ch));
        for y in (0..ch).step_by(3) {
            for x in (0..cw).step_by(3) {
                assert_eq!(c.get(x, y, 0), img.get(x, y, 0));
            }
        }
        let rgb = synth::stack_bands(&[c.clone(), c.clone(), c.clone()]);
        assert_eq!(rgb.bands(), 3);
        assert_eq!(rgb.get(0, 0, 2), c.get(0, 0, 0));
    }
}

/// The smooth operator is a contraction: the value range never grows.
#[test]
fn smooth_contracts_range() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("smooth");
        let img = arb_byte_image(&mut r);
        let s = synth::smooth(&img, 1);
        let (lo0, hi0) = img.min_max();
        let (lo1, hi1) = s.min_max();
        assert!(lo1 >= lo0 - 1e-9);
        assert!(hi1 <= hi0 + 1e-9);
    }
}

/// Generators are deterministic functions of their seed.
#[test]
fn generators_are_seed_deterministic() {
    for seed in 0..ROUNDS {
        let seed = SplitMix64::new(seed).split("gen-seed").next_u64();
        let mut r1 = SplitMix64::new(seed);
        let mut r2 = SplitMix64::new(seed);
        assert_eq!(synth::plasma(17, 13, 0.8, &mut r1), synth::plasma(17, 13, 0.8, &mut r2));
        assert_eq!(synth::labels(9, 9, 4, &mut r1), synth::labels(9, 9, 4, &mut r2));
    }
}

/// Normalization always produces a full-range byte image (unless the
/// input is constant).
#[test]
fn normalization_spans_byte_range() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("normalize");
        let img = arb_byte_image(&mut r);
        let n = img.normalized_to_byte();
        assert_eq!(n.pixel_type(), PixelType::Byte);
        let (lo, hi) = n.min_max();
        let (ilo, ihi) = img.min_max();
        if ihi > ilo {
            assert_eq!((lo, hi), (0.0, 255.0));
        } else {
            assert_eq!(lo, hi);
        }
    }
}

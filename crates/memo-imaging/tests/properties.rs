//! Property tests for the image substrate: entropy bounds, generator
//! invariants, and PNM round-trips over arbitrary images.

use memo_imaging::rng::SplitMix64;
use memo_imaging::{entropy, io, synth, Histogram, Image, PixelType};
use proptest::prelude::*;

fn arb_dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..40, 1usize..40)
}

fn arb_byte_image() -> impl Strategy<Value = Image> {
    (arb_dims(), any::<u64>()).prop_map(|((w, h), seed)| {
        let mut rng = SplitMix64::new(seed);
        Image::from_fn_byte(w, h, |_, _| rng.next_below(256) as u8)
    })
}

proptest! {
    /// Shannon entropy is bounded by the log of the alphabet size.
    #[test]
    fn entropy_is_bounded(samples in prop::collection::vec(0u8..=255, 1..2000)) {
        let h = Histogram::from_samples(samples.iter().map(|&b| f64::from(b)));
        let e = h.entropy_bits();
        prop_assert!(e >= 0.0);
        prop_assert!(e <= 8.0 + 1e-9);
        prop_assert!(e <= (h.distinct() as f64).log2() + 1e-9);
    }

    /// Windowed entropy never exceeds what the window alphabet allows and
    /// full-image entropy never exceeds 8 bits for byte images.
    #[test]
    fn windowed_entropy_bounds(img in arb_byte_image()) {
        let full = entropy::full_entropy(&img).unwrap();
        let w8 = entropy::windowed_entropy(&img, 8).unwrap();
        prop_assert!(full <= 8.0 + 1e-9);
        // An 8×8 window holds at most 64 samples: ≤ 6 bits.
        prop_assert!(w8 <= 6.0 + 1e-9);
    }

    /// Quantization to `levels` bounds entropy by log2(levels) and is
    /// idempotent.
    #[test]
    fn quantize_bounds_and_idempotence(img in arb_byte_image(), levels in 1u64..=256) {
        let q = synth::quantize(&img, levels);
        let e = entropy::full_entropy(&q).unwrap();
        prop_assert!(e <= (levels as f64).log2() + 1e-9, "entropy {e} vs levels {levels}");
        let qq = synth::quantize(&q, levels);
        prop_assert_eq!(q, qq, "quantization must be idempotent");
    }

    /// PNM round-trips arbitrary single-band byte images exactly.
    #[test]
    fn pnm_roundtrip(img in arb_byte_image()) {
        let mut buf = Vec::new();
        io::write_pnm(&img, &mut buf).unwrap();
        let back = io::read_pnm(buf.as_slice()).unwrap();
        prop_assert_eq!(back, img);
    }

    /// Crop then read agrees with direct access; stacking preserves bands.
    #[test]
    fn crop_and_stack_are_consistent(
        img in arb_byte_image(),
        fx in 0.1f64..1.0,
        fy in 0.1f64..1.0,
    ) {
        let cw = ((img.width() as f64 * fx) as usize).max(1);
        let ch = ((img.height() as f64 * fy) as usize).max(1);
        let c = synth::crop(&img, cw, ch);
        prop_assert_eq!((c.width(), c.height()), (cw, ch));
        for y in (0..ch).step_by(3) {
            for x in (0..cw).step_by(3) {
                prop_assert_eq!(c.get(x, y, 0), img.get(x, y, 0));
            }
        }
        let rgb = synth::stack_bands(&[c.clone(), c.clone(), c.clone()]);
        prop_assert_eq!(rgb.bands(), 3);
        prop_assert_eq!(rgb.get(0, 0, 2), c.get(0, 0, 0));
    }

    /// The smooth operator is a contraction: the value range never grows.
    #[test]
    fn smooth_contracts_range(img in arb_byte_image()) {
        let s = synth::smooth(&img, 1);
        let (lo0, hi0) = img.min_max();
        let (lo1, hi1) = s.min_max();
        prop_assert!(lo1 >= lo0 - 1e-9);
        prop_assert!(hi1 <= hi0 + 1e-9);
    }

    /// Generators are deterministic functions of their seed.
    #[test]
    fn generators_are_seed_deterministic(seed in any::<u64>()) {
        let mut r1 = SplitMix64::new(seed);
        let mut r2 = SplitMix64::new(seed);
        prop_assert_eq!(synth::plasma(17, 13, 0.8, &mut r1), synth::plasma(17, 13, 0.8, &mut r2));
        prop_assert_eq!(synth::labels(9, 9, 4, &mut r1), synth::labels(9, 9, 4, &mut r2));
    }

    /// Normalization always produces a full-range byte image (unless the
    /// input is constant).
    #[test]
    fn normalization_spans_byte_range(img in arb_byte_image()) {
        let n = img.normalized_to_byte();
        prop_assert_eq!(n.pixel_type(), PixelType::Byte);
        let (lo, hi) = n.min_max();
        let (ilo, ihi) = img.min_max();
        if ihi > ilo {
            prop_assert_eq!((lo, hi), (0.0, 255.0));
        } else {
            prop_assert_eq!(lo, hi);
        }
    }
}

//! Deterministic synthetic image generators.
//!
//! The paper's experiments (Table 8, Figure 2) use fourteen real test
//! images — mandrill, lenna, medical scans, a label map, a fractal —
//! spanning whole-image entropies from ≈ 1.4 to ≈ 7.8 bits. Those binaries
//! are not redistributable, so this module synthesizes a corpus with the
//! same *statistical* spread: per row we generate an image of the same
//! size, pixel type and band count, tuned (texture mix, quantization,
//! smoothing) to land in the same entropy region. The substitution is
//! sound because every downstream result depends on the images only
//! through their value statistics, which the experiments *measure* rather
//! than assume.

use crate::image::{Image, PixelType};
use crate::rng::SplitMix64;

/// Uniform random noise over `levels` evenly spaced grey values.
///
/// Entropy ≈ `log2(levels)` both whole-image and per-window: the
/// high-entropy extreme of the corpus.
///
/// # Panics
///
/// Panics if `levels` is 0 or exceeds 256.
#[must_use]
pub fn noise(width: usize, height: usize, levels: u64, rng: &mut SplitMix64) -> Image {
    assert!((1..=256).contains(&levels), "levels must be in 1..=256");
    let step = 255.0 / (levels.max(2) - 1) as f64;
    Image::from_fn_byte(width, height, |_, _| (rng.next_below(levels) as f64 * step) as u8)
}

/// Diamond-square ("plasma") fractal texture — the natural-image stand-in.
///
/// `roughness` in `(0, 1]`: higher is noisier (more high-frequency detail,
/// higher windowed entropy).
#[must_use]
pub fn plasma(width: usize, height: usize, roughness: f64, rng: &mut SplitMix64) -> Image {
    let side = (width.max(height) - 1).next_power_of_two().max(2);
    let n = side + 1;
    let mut grid = vec![0.0f64; n * n];
    let mut amplitude = 1.0;

    // Seed corners.
    for &(x, y) in &[(0, 0), (side, 0), (0, side), (side, side)] {
        grid[y * n + x] = rng.next_f64();
    }

    let mut step = side;
    while step > 1 {
        let half = step / 2;
        // Diamond step.
        for y in (half..n).step_by(step) {
            for x in (half..n).step_by(step) {
                let avg = (grid[(y - half) * n + (x - half)]
                    + grid[(y - half) * n + (x + half)]
                    + grid[(y + half) * n + (x - half)]
                    + grid[(y + half) * n + (x + half)])
                    / 4.0;
                grid[y * n + x] = avg + (rng.next_f64() - 0.5) * amplitude;
            }
        }
        // Square step.
        for y in (0..n).step_by(half) {
            let x_start = if (y / half).is_multiple_of(2) { half } else { 0 };
            for x in (x_start..n).step_by(step) {
                let mut sum = 0.0;
                let mut cnt = 0.0;
                if y >= half {
                    sum += grid[(y - half) * n + x];
                    cnt += 1.0;
                }
                if y + half < n {
                    sum += grid[(y + half) * n + x];
                    cnt += 1.0;
                }
                if x >= half {
                    sum += grid[y * n + (x - half)];
                    cnt += 1.0;
                }
                if x + half < n {
                    sum += grid[y * n + (x + half)];
                    cnt += 1.0;
                }
                grid[y * n + x] = sum / cnt + (rng.next_f64() - 0.5) * amplitude;
            }
        }
        amplitude *= roughness;
        step = half;
    }

    let float = Image::new(
        n,
        n,
        PixelType::Float,
        vec![grid],
    )
    .expect("grid dimensions are consistent");
    crop(&float.normalized_to_byte(), width, height)
}

/// Crop the top-left `width × height` region.
///
/// # Panics
///
/// Panics if the crop exceeds the source dimensions.
#[must_use]
pub fn crop(image: &Image, width: usize, height: usize) -> Image {
    assert!(width <= image.width() && height <= image.height(), "crop exceeds source");
    let bands = (0..image.bands())
        .map(|b| {
            let mut out = Vec::with_capacity(width * height);
            for y in 0..height {
                for x in 0..width {
                    out.push(image.get(x, y, b));
                }
            }
            out
        })
        .collect();
    Image::new(width, height, image.pixel_type(), bands).expect("crop dimensions are consistent")
}

/// Posterize to `levels` grey values — the primary entropy-lowering knob.
///
/// # Panics
///
/// Panics if `levels` is 0 or exceeds 256.
#[must_use]
pub fn quantize(image: &Image, levels: u64) -> Image {
    assert!((1..=256).contains(&levels));
    let bands = (0..image.bands())
        .map(|b| {
            image
                .band(b)
                .iter()
                .map(|&p| {
                    if levels == 1 {
                        return 0.0;
                    }
                    // Snap to the nearest of `levels` evenly spaced grey
                    // values — idempotent by construction (the nearest
                    // level of a level is itself; property-tested).
                    let out_step = 255.0 / (levels - 1) as f64;
                    let k = (p.clamp(0.0, 255.0) / out_step).round();
                    (k * out_step).round()
                })
                .collect()
        })
        .collect();
    Image::new(image.width(), image.height(), PixelType::Byte, bands)
        .expect("quantize preserves dimensions")
}

/// Box-blur smoothing; each pass lowers local (windowed) entropy.
#[must_use]
pub fn smooth(image: &Image, passes: usize) -> Image {
    let mut img = image.clone();
    for _ in 0..passes {
        let mut next = img.clone();
        for b in 0..img.bands() {
            for y in 0..img.height() {
                for x in 0..img.width() {
                    let mut sum = 0.0;
                    let mut cnt = 0.0;
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let nx = x as i64 + dx;
                            let ny = y as i64 + dy;
                            if nx >= 0
                                && ny >= 0
                                && (nx as usize) < img.width()
                                && (ny as usize) < img.height()
                            {
                                sum += img.get(nx as usize, ny as usize, b);
                                cnt += 1.0;
                            }
                        }
                    }
                    next.set(x, y, b, sum / cnt);
                }
            }
        }
        img = if image.pixel_type() == PixelType::Byte {
            // Re-quantize to stay a byte image.
            Image::new(next.width(), next.height(), PixelType::Byte, bands_of(&next))
                .expect("smooth preserves dimensions")
        } else {
            next
        };
    }
    img
}

fn bands_of(image: &Image) -> Vec<Vec<f64>> {
    (0..image.bands()).map(|b| image.band(b).to_vec()).collect()
}

/// A Voronoi label map (INTEGER pixel type) — the `lablabel` stand-in:
/// large constant regions, very low windowed entropy.
#[must_use]
pub fn labels(width: usize, height: usize, regions: usize, rng: &mut SplitMix64) -> Image {
    let sites: Vec<(f64, f64)> = (0..regions.max(1))
        .map(|_| (rng.next_f64() * width as f64, rng.next_f64() * height as f64))
        .collect();
    let mut data = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (i, &(sx, sy)) in sites.iter().enumerate() {
                let d = (sx - x as f64).powi(2) + (sy - y as f64).powi(2);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            data.push(best as f64);
        }
    }
    Image::new(width, height, PixelType::Integer, vec![data])
        .expect("label dimensions are consistent")
}

/// A textured night-sky field with bright points — the `star` stand-in
/// (the paper's `star` has substantial background texture: full entropy
/// ≈ 5.9, 8×8 ≈ 4.6).
#[must_use]
pub fn starfield(width: usize, height: usize, stars: usize, rng: &mut SplitMix64) -> Image {
    let nebula = quantize(&plasma(width, height, 0.65, rng), 48);
    let mut img = Image::from_fn_byte(width, height, |x, y| (nebula.get(x, y, 0) * 0.35) as u8);
    for _ in 0..stars {
        let x = rng.next_below(width as u64) as usize;
        let y = rng.next_below(height as u64) as usize;
        let v = 128 + rng.next_below(128) as u8;
        img.set(x, y, 0, f64::from(v));
        // A small glow.
        for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
            let nx = x as i64 + dx;
            let ny = y as i64 + dy;
            if nx >= 0 && ny >= 0 && (nx as usize) < width && (ny as usize) < height {
                img.set(nx as usize, ny as usize, 0, f64::from(v / 2));
            }
        }
    }
    img
}

/// Smooth radial float field — the medical FLOAT stand-in (`head`, `spine`).
#[must_use]
pub fn radial_float(width: usize, height: usize, rng: &mut SplitMix64) -> Image {
    let cx = width as f64 / 2.0 + rng.next_range(-8.0, 8.0);
    let cy = height as f64 / 2.0 + rng.next_range(-8.0, 8.0);
    let jitter = rng.next_range(0.001, 0.01);
    Image::from_fn_float(width, height, |x, y| {
        let d = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
        (d * 0.05).sin() * 40.0 + d * jitter + 100.0
    })
}

/// Stack `bands` single-band images into one multi-band image.
///
/// # Panics
///
/// Panics if dimensions disagree or `images` is empty.
#[must_use]
pub fn stack_bands(images: &[Image]) -> Image {
    assert!(!images.is_empty());
    let (w, h) = (images[0].width(), images[0].height());
    let mut bands = Vec::new();
    for img in images {
        assert_eq!((img.width(), img.height()), (w, h), "band dimensions must agree");
        for b in 0..img.bands() {
            bands.push(img.band(b).to_vec());
        }
    }
    Image::new(w, h, images[0].pixel_type(), bands).expect("stack dimensions are consistent")
}

/// One named input mirroring a row of the paper's Table 8.
#[derive(Debug, Clone)]
pub struct CorpusImage {
    /// Name of the paper image this stands in for.
    pub name: &'static str,
    /// The synthetic image.
    pub image: Image,
}

/// The corpus: one synthetic stand-in per Table 8 row, at `scale`-reduced
/// dimensions (`scale = 1` reproduces the paper's sizes; experiments use
/// `scale = 4` for quick runs).
///
/// # Panics
///
/// Panics if `scale` is zero.
#[must_use]
pub fn corpus(scale: usize) -> Vec<CorpusImage> {
    assert!(scale > 0, "scale must be non-zero");
    let s = |d: usize| (d / scale).max(16);
    let mut rng = SplitMix64::new(0x1998_05AF);

    let mut out = Vec::new();
    let mut push = |name: &'static str, image: Image| out.push(CorpusImage { name, image });

    // High-entropy natural textures (entropy ≈ 7.0–7.4 full, but locally
    // smooth: 8×8 windows around 4–5 bits, as Table 8 measures).
    push("mandrill", plasma_noise(s(256), s(256), 0.75, 180, &mut rng));
    push("nature", plasma_noise(s(256), s(256), 0.65, 160, &mut rng));
    push("muppet1", textured(s(240), s(256), 0.55, 1, 96, &mut rng));
    push("guya", textured(s(128), s(128), 0.55, 1, 64, &mut rng));

    // Sparse / dark (entropy ≈ 5–6 full but very low windowed).
    push("star", starfield(s(158), s(158), s(158) * s(158) / 60, &mut rng));

    // Small / smooth (entropy ≈ 4–5).
    push("chroms", quantize(&plasma(s(64), s(64), 0.7, &mut rng), 40));
    push("airport1", quantize(&smooth(&plasma(s(256), s(256), 0.6, &mut rng), 1), 28));

    // Label map, INTEGER (entropy ≈ 3.4 full, ≈ 0.9 windowed).
    push("lablabel", labels(s(243), s(486), 12, &mut rng));

    // Near-flat fractal (entropy ≈ 1.4).
    push("fractal", quantize(&smooth(&plasma(s(450), s(409), 0.4, &mut rng), 2), 4));

    // FLOAT medical stand-ins (entropy unreported, like the paper).
    push("head", radial_float(s(228), s(256), &mut rng));
    push("spine", radial_float(s(228), s(256), &mut rng));

    // RGB three-band naturals (entropy ≈ 7.6–7.8 pooled).
    for name in ["lenna.rgb", "mandril.rgb", "lizard.rgb"] {
        let (w, h) = match name {
            "lenna.rgb" | "mandril.rgb" => (s(480), s(512)),
            _ => (s(512), s(768)),
        };
        let bands: Vec<Image> = (0..3).map(|_| plasma_noise(w, h, 0.7, 220, &mut rng)).collect();
        push(name, stack_bands(&bands));
    }

    out
}

/// Smoothed-then-quantized plasma: the box blur first removes
/// high-frequency jitter, then posterization creates the literal value
/// plateaus that give real photographs their low windowed entropy.
fn textured(
    width: usize,
    height: usize,
    roughness: f64,
    passes: usize,
    levels: u64,
    rng: &mut SplitMix64,
) -> Image {
    quantize(&smooth(&plasma(width, height, roughness, rng), passes), levels)
}

/// Plasma texture with additive noise, quantized to `levels` values —
/// the workhorse "natural image" generator.
fn plasma_noise(
    width: usize,
    height: usize,
    roughness: f64,
    levels: u64,
    rng: &mut SplitMix64,
) -> Image {
    let base = plasma(width, height, roughness, rng);
    let mut jittered = base.clone();
    for y in 0..height {
        for x in 0..width {
            // Mild sensor noise: keeps the whole-image histogram rich
            // without destroying the local flatness real images have.
            let v = base.get(x, y, 0) + rng.next_range(-6.0, 6.0);
            jittered.set(x, y, 0, v.clamp(0.0, 255.0));
        }
    }
    quantize(&jittered, levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy;

    fn rng() -> SplitMix64 {
        SplitMix64::new(7)
    }

    #[test]
    fn noise_entropy_tracks_levels() {
        let mut r = rng();
        let img = noise(64, 64, 4, &mut r);
        let e = entropy::full_entropy(&img).unwrap();
        assert!((e - 2.0).abs() < 0.1, "entropy {e}");
    }

    #[test]
    fn plasma_has_requested_dimensions_and_byte_range() {
        let mut r = rng();
        let img = plasma(100, 60, 0.8, &mut r);
        assert_eq!((img.width(), img.height()), (100, 60));
        let (min, max) = img.min_max();
        assert!(min >= 0.0 && max <= 255.0);
        assert!(max > min, "plasma must not be constant");
    }

    #[test]
    fn quantize_reduces_distinct_values_and_entropy() {
        let mut r = rng();
        let img = plasma(64, 64, 0.9, &mut r);
        let q = quantize(&img, 4);
        let e_full = entropy::full_entropy(&img).unwrap();
        let e_q = entropy::full_entropy(&q).unwrap();
        assert!(e_q <= (4.0f64).log2() + 1e-9);
        assert!(e_q < e_full);
    }

    #[test]
    fn smooth_lowers_windowed_entropy() {
        let mut r = rng();
        let img = noise(64, 64, 256, &mut r);
        let smoothed = smooth(&img, 2);
        let before = entropy::windowed_entropy(&img, 8).unwrap();
        let after = entropy::windowed_entropy(&smoothed, 8).unwrap();
        assert!(after < before, "{after} < {before}");
    }

    #[test]
    fn labels_have_few_values_and_flat_windows() {
        let mut r = rng();
        let img = labels(96, 96, 8, &mut r);
        assert_eq!(img.pixel_type(), PixelType::Integer);
        let full = entropy::full_entropy(&img).unwrap();
        let win8 = entropy::windowed_entropy(&img, 8).unwrap();
        assert!(full <= 3.0 + 1e-9);
        assert!(win8 < full, "windows are mostly single-label");
    }

    #[test]
    fn corpus_covers_paper_shape() {
        let corpus = corpus(4);
        assert_eq!(corpus.len(), 14);
        // Names match Table 8 rows.
        assert!(corpus.iter().any(|c| c.name == "mandrill"));
        assert!(corpus.iter().any(|c| c.name == "lablabel"));
        // Three RGB images with 3 bands.
        assert_eq!(corpus.iter().filter(|c| c.image.bands() == 3).count(), 3);
        // Two FLOAT images, unreported entropy.
        let floats: Vec<_> =
            corpus.iter().filter(|c| c.image.pixel_type() == PixelType::Float).collect();
        assert_eq!(floats.len(), 2);
        for f in floats {
            assert!(entropy::report(&f.image).is_none());
        }
    }

    #[test]
    fn corpus_spans_a_wide_entropy_range() {
        let corpus = corpus(4);
        let entropies: Vec<f64> = corpus
            .iter()
            .filter_map(|c| entropy::full_entropy(&c.image))
            .collect();
        let min = entropies.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = entropies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 2.5, "lowest-entropy stand-in at {min}");
        assert!(max > 6.0, "highest-entropy stand-in at {max}");
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus(8);
        let b = corpus(8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.image, y.image);
        }
    }

    #[test]
    fn stack_bands_combines() {
        let mut r = rng();
        let a = noise(16, 16, 8, &mut r);
        let b = noise(16, 16, 8, &mut r);
        let rgb = stack_bands(&[a.clone(), b, a]);
        assert_eq!(rgb.bands(), 3);
    }

    #[test]
    fn crop_takes_top_left() {
        let img = Image::from_fn_byte(8, 8, |x, y| (x * 8 + y) as u8);
        let c = crop(&img, 3, 2);
        assert_eq!((c.width(), c.height()), (3, 2));
        assert_eq!(c.get(2, 1, 0), img.get(2, 1, 0));
    }
}

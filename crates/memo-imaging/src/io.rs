//! Binary PNM (PGM / PPM) reading and writing.
//!
//! Single-band byte images round-trip through `P5` (PGM), three-band byte
//! images through `P6` (PPM). This is enough to inspect the synthetic
//! corpus with any image viewer and to feed external images into the
//! experiments.

use std::io::{Read, Write};
use std::path::Path;

use crate::image::{Image, ImagingError, PixelType};

/// Write `image` as binary PGM (1 band) or PPM (3 bands).
///
/// Non-byte images are normalized to 0–255 first.
///
/// # Errors
///
/// [`ImagingError::Format`] when the band count is neither 1 nor 3, or
/// [`ImagingError::Io`] on write failure.
pub fn write_pnm<W: Write>(image: &Image, mut writer: W) -> Result<(), ImagingError> {
    let image = if image.pixel_type() == PixelType::Byte {
        image.clone()
    } else {
        image.normalized_to_byte()
    };
    let (magic, bands) = match image.bands() {
        1 => ("P5", 1),
        3 => ("P6", 3),
        n => return Err(ImagingError::Format(format!("{n} bands not expressible in PNM"))),
    };
    writeln!(writer, "{magic}")?;
    writeln!(writer, "{} {}", image.width(), image.height())?;
    writeln!(writer, "255")?;
    let mut buf = Vec::with_capacity(image.pixels_per_band() * bands);
    for y in 0..image.height() {
        for x in 0..image.width() {
            for b in 0..bands {
                buf.push(image.get(x, y, b) as u8);
            }
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Write `image` to `path` as binary PGM / PPM.
///
/// # Errors
///
/// As [`write_pnm`], plus file-creation failures.
pub fn save_pnm(image: &Image, path: impl AsRef<Path>) -> Result<(), ImagingError> {
    let file = std::fs::File::create(path)?;
    write_pnm(image, std::io::BufWriter::new(file))
}

/// Read a binary PGM (`P5`) or PPM (`P6`) image.
///
/// # Errors
///
/// [`ImagingError::Format`] on malformed headers or truncated pixel data.
pub fn read_pnm<R: Read>(mut reader: R) -> Result<Image, ImagingError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut pos = 0usize;

    let magic = next_token(&raw, &mut pos)?;
    let bands = match magic.as_str() {
        "P5" => 1usize,
        "P6" => 3,
        other => return Err(ImagingError::Format(format!("unsupported magic {other:?}"))),
    };
    let width: usize = parse_token(&raw, &mut pos)?;
    let height: usize = parse_token(&raw, &mut pos)?;
    let maxval: usize = parse_token(&raw, &mut pos)?;
    if maxval == 0 || maxval > 255 {
        return Err(ImagingError::Format(format!("unsupported maxval {maxval}")));
    }
    // Exactly one whitespace byte separates the header from pixel data.
    pos += 1;

    let need = width
        .checked_mul(height)
        .and_then(|n| n.checked_mul(bands))
        .ok_or_else(|| ImagingError::Format("dimensions overflow".into()))?;
    if raw.len() < pos + need {
        return Err(ImagingError::Format(format!(
            "truncated pixel data: need {need}, have {}",
            raw.len().saturating_sub(pos)
        )));
    }

    let mut band_data = vec![Vec::with_capacity(width * height); bands];
    for chunk in raw[pos..pos + need].chunks_exact(bands) {
        for (b, &v) in chunk.iter().enumerate() {
            band_data[b].push(f64::from(v));
        }
    }
    Image::new(width, height, PixelType::Byte, band_data)
}

/// Read a PNM image from `path`.
///
/// # Errors
///
/// As [`read_pnm`], plus file-open failures.
pub fn load_pnm(path: impl AsRef<Path>) -> Result<Image, ImagingError> {
    let file = std::fs::File::open(path)?;
    read_pnm(std::io::BufReader::new(file))
}

fn next_token(raw: &[u8], pos: &mut usize) -> Result<String, ImagingError> {
    // Skip whitespace and `#` comments.
    loop {
        while *pos < raw.len() && raw[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if *pos < raw.len() && raw[*pos] == b'#' {
            while *pos < raw.len() && raw[*pos] != b'\n' {
                *pos += 1;
            }
        } else {
            break;
        }
    }
    let start = *pos;
    while *pos < raw.len() && !raw[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
    if start == *pos {
        return Err(ImagingError::Format("unexpected end of header".into()));
    }
    String::from_utf8(raw[start..*pos].to_vec())
        .map_err(|_| ImagingError::Format("non-utf8 header token".into()))
}

fn parse_token(raw: &[u8], pos: &mut usize) -> Result<usize, ImagingError> {
    let tok = next_token(raw, pos)?;
    tok.parse().map_err(|_| ImagingError::Format(format!("expected a number, got {tok:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::synth;

    #[test]
    fn pgm_roundtrip() {
        let mut rng = SplitMix64::new(5);
        let img = synth::noise(17, 9, 64, &mut rng);
        let mut buf = Vec::new();
        write_pnm(&img, &mut buf).unwrap();
        let back = read_pnm(buf.as_slice()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn ppm_roundtrip() {
        let mut rng = SplitMix64::new(5);
        let bands: Vec<_> = (0..3).map(|_| synth::noise(8, 6, 32, &mut rng)).collect();
        let rgb = synth::stack_bands(&bands);
        let mut buf = Vec::new();
        write_pnm(&rgb, &mut buf).unwrap();
        let back = read_pnm(buf.as_slice()).unwrap();
        assert_eq!(back, rgb);
    }

    #[test]
    fn float_images_are_normalized_on_write() {
        let img = Image::from_fn_float(4, 4, |x, y| (x as f64 - y as f64) * 100.0);
        let mut buf = Vec::new();
        write_pnm(&img, &mut buf).unwrap();
        let back = read_pnm(buf.as_slice()).unwrap();
        assert_eq!(back.pixel_type(), PixelType::Byte);
        assert_eq!(back.min_max(), (0.0, 255.0));
    }

    #[test]
    fn comments_in_header_are_skipped() {
        let data = b"P5\n# a comment\n2 2\n255\n\x00\x40\x80\xff";
        let img = read_pnm(&data[..]).unwrap();
        assert_eq!(img.get(1, 1, 0), 255.0);
        assert_eq!(img.get(1, 0, 0), 64.0);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(read_pnm(&b"P4\n1 1\n255\n\x00"[..]).is_err(), "wrong magic");
        assert!(read_pnm(&b"P5\n2 2\n255\n\x00"[..]).is_err(), "truncated");
        assert!(read_pnm(&b"P5\nx y\n255\n"[..]).is_err(), "non-numeric dims");
        assert!(read_pnm(&b"P5\n1 1\n70000\n\x00\x00"[..]).is_err(), "wide maxval");
    }

    #[test]
    fn two_band_images_cannot_be_written() {
        let mut rng = SplitMix64::new(5);
        let bands: Vec<_> = (0..2).map(|_| synth::noise(4, 4, 8, &mut rng)).collect();
        let img = synth::stack_bands(&bands);
        assert!(write_pnm(&img, Vec::new()).is_err());
    }

    #[test]
    fn save_and_load_via_files() {
        let dir = std::env::temp_dir().join("memo_imaging_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        let mut rng = SplitMix64::new(6);
        let img = synth::noise(12, 12, 16, &mut rng);
        save_pnm(&img, &path).unwrap();
        let back = load_pnm(&path).unwrap();
        assert_eq!(back, img);
        std::fs::remove_file(&path).ok();
    }
}

//! Binary PNM (PGM / PPM) reading and writing.
//!
//! Single-band byte images round-trip through `P5` (PGM), three-band byte
//! images through `P6` (PPM). This is enough to inspect the synthetic
//! corpus with any image viewer and to feed external images into the
//! experiments.
//!
//! All failure modes carry a typed [`ImageIoError`] — malformed headers,
//! truncated payloads, and hostile dimensions are reported structurally,
//! never by panic.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use crate::image::{Image, ImagingError, PixelType};

/// Refuse headers whose pixel payload would exceed this many bytes — a
/// hostile 5-byte header must not provoke a multi-gigabyte allocation.
pub const MAX_PIXEL_BYTES: usize = 1 << 30;

/// Why a PNM read or write failed, structurally.
#[derive(Debug)]
pub enum ImageIoError {
    /// The magic number is not `P5` or `P6`.
    UnsupportedMagic(String),
    /// The band count cannot be expressed in PGM/PPM (only 1 or 3 can).
    UnsupportedBandCount(usize),
    /// `maxval` is zero or wider than one byte.
    UnsupportedMaxval(usize),
    /// A header field that should be a number is not.
    BadHeaderToken(String),
    /// The header is not ASCII/UTF-8.
    NonUtf8Header,
    /// The input ended mid-header.
    UnexpectedEof,
    /// `width × height × bands` overflows or exceeds [`MAX_PIXEL_BYTES`].
    OversizedDimensions {
        /// Declared width.
        width: usize,
        /// Declared height.
        height: usize,
        /// Bands implied by the magic number.
        bands: usize,
    },
    /// The pixel payload is shorter than the header promises.
    TruncatedPixels {
        /// Bytes the header requires.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The decoded pixels do not form a valid [`Image`].
    Validation(ImagingError),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for ImageIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageIoError::UnsupportedMagic(m) => write!(f, "unsupported PNM magic {m:?}"),
            ImageIoError::UnsupportedBandCount(n) => {
                write!(f, "{n} bands not expressible in PNM (only 1 or 3)")
            }
            ImageIoError::UnsupportedMaxval(v) => write!(f, "unsupported maxval {v}"),
            ImageIoError::BadHeaderToken(t) => write!(f, "expected a number, got {t:?}"),
            ImageIoError::NonUtf8Header => f.write_str("non-utf8 header token"),
            ImageIoError::UnexpectedEof => f.write_str("unexpected end of header"),
            ImageIoError::OversizedDimensions { width, height, bands } => write!(
                f,
                "declared {width}x{height}x{bands} image exceeds the {MAX_PIXEL_BYTES}-byte cap"
            ),
            ImageIoError::TruncatedPixels { need, have } => {
                write!(f, "truncated pixel data: need {need} bytes, have {have}")
            }
            ImageIoError::Validation(e) => write!(f, "decoded pixels are invalid: {e}"),
            ImageIoError::Io(e) => write!(f, "io failure: {e}"),
        }
    }
}

impl std::error::Error for ImageIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageIoError::Io(e) => Some(e),
            ImageIoError::Validation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImageIoError {
    fn from(e: std::io::Error) -> Self {
        ImageIoError::Io(e)
    }
}

impl From<ImagingError> for ImageIoError {
    fn from(e: ImagingError) -> Self {
        ImageIoError::Validation(e)
    }
}

/// Lossy downgrade for callers that pool all imaging failures.
impl From<ImageIoError> for ImagingError {
    fn from(e: ImageIoError) -> Self {
        match e {
            ImageIoError::Io(io) => ImagingError::Io(io),
            ImageIoError::Validation(v) => v,
            other => ImagingError::Format(other.to_string()),
        }
    }
}

/// Write `image` as binary PGM (1 band) or PPM (3 bands).
///
/// Non-byte images are normalized to 0–255 first.
///
/// # Errors
///
/// [`ImageIoError::UnsupportedBandCount`] when the band count is neither
/// 1 nor 3, or [`ImageIoError::Io`] on write failure.
pub fn write_pnm<W: Write>(image: &Image, mut writer: W) -> Result<(), ImageIoError> {
    let image = if image.pixel_type() == PixelType::Byte {
        image.clone()
    } else {
        image.normalized_to_byte()
    };
    let (magic, bands) = match image.bands() {
        1 => ("P5", 1),
        3 => ("P6", 3),
        n => return Err(ImageIoError::UnsupportedBandCount(n)),
    };
    writeln!(writer, "{magic}")?;
    writeln!(writer, "{} {}", image.width(), image.height())?;
    writeln!(writer, "255")?;
    let mut buf = Vec::with_capacity(image.pixels_per_band() * bands);
    for y in 0..image.height() {
        for x in 0..image.width() {
            for b in 0..bands {
                buf.push(image.get(x, y, b) as u8);
            }
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Write `image` to `path` as binary PGM / PPM.
///
/// # Errors
///
/// As [`write_pnm`], plus file-creation failures.
pub fn save_pnm(image: &Image, path: impl AsRef<Path>) -> Result<(), ImageIoError> {
    let file = std::fs::File::create(path)?;
    write_pnm(image, std::io::BufWriter::new(file))
}

/// Read a binary PGM (`P5`) or PPM (`P6`) image.
///
/// # Errors
///
/// A structured [`ImageIoError`] on malformed headers, hostile
/// dimensions, or truncated pixel data.
pub fn read_pnm<R: Read>(mut reader: R) -> Result<Image, ImageIoError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut pos = 0usize;

    let magic = next_token(&raw, &mut pos)?;
    let bands = match magic.as_str() {
        "P5" => 1usize,
        "P6" => 3,
        other => return Err(ImageIoError::UnsupportedMagic(other.to_string())),
    };
    let width: usize = parse_token(&raw, &mut pos)?;
    let height: usize = parse_token(&raw, &mut pos)?;
    let maxval: usize = parse_token(&raw, &mut pos)?;
    if maxval == 0 || maxval > 255 {
        return Err(ImageIoError::UnsupportedMaxval(maxval));
    }
    // Exactly one whitespace byte separates the header from pixel data.
    pos += 1;

    let need = width
        .checked_mul(height)
        .and_then(|n| n.checked_mul(bands))
        .filter(|&n| n <= MAX_PIXEL_BYTES)
        .ok_or(ImageIoError::OversizedDimensions { width, height, bands })?;
    if raw.len() < pos + need {
        return Err(ImageIoError::TruncatedPixels {
            need,
            have: raw.len().saturating_sub(pos),
        });
    }

    let mut band_data = vec![Vec::with_capacity(width * height); bands];
    for chunk in raw[pos..pos + need].chunks_exact(bands) {
        for (b, &v) in chunk.iter().enumerate() {
            band_data[b].push(f64::from(v));
        }
    }
    Ok(Image::new(width, height, PixelType::Byte, band_data)?)
}

/// Read a PNM image from `path`.
///
/// # Errors
///
/// As [`read_pnm`], plus file-open failures.
pub fn load_pnm(path: impl AsRef<Path>) -> Result<Image, ImageIoError> {
    let file = std::fs::File::open(path)?;
    read_pnm(std::io::BufReader::new(file))
}

fn next_token(raw: &[u8], pos: &mut usize) -> Result<String, ImageIoError> {
    // Skip whitespace and `#` comments.
    loop {
        while *pos < raw.len() && raw[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
        if *pos < raw.len() && raw[*pos] == b'#' {
            while *pos < raw.len() && raw[*pos] != b'\n' {
                *pos += 1;
            }
        } else {
            break;
        }
    }
    let start = *pos;
    while *pos < raw.len() && !raw[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
    if start == *pos {
        return Err(ImageIoError::UnexpectedEof);
    }
    String::from_utf8(raw[start..*pos].to_vec()).map_err(|_| ImageIoError::NonUtf8Header)
}

fn parse_token(raw: &[u8], pos: &mut usize) -> Result<usize, ImageIoError> {
    let tok = next_token(raw, pos)?;
    tok.parse().map_err(|_| ImageIoError::BadHeaderToken(tok))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::synth;

    #[test]
    fn pgm_roundtrip() {
        let mut rng = SplitMix64::new(5);
        let img = synth::noise(17, 9, 64, &mut rng);
        let mut buf = Vec::new();
        write_pnm(&img, &mut buf).unwrap();
        let back = read_pnm(buf.as_slice()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn ppm_roundtrip() {
        let mut rng = SplitMix64::new(5);
        let bands: Vec<_> = (0..3).map(|_| synth::noise(8, 6, 32, &mut rng)).collect();
        let rgb = synth::stack_bands(&bands);
        let mut buf = Vec::new();
        write_pnm(&rgb, &mut buf).unwrap();
        let back = read_pnm(buf.as_slice()).unwrap();
        assert_eq!(back, rgb);
    }

    #[test]
    fn float_images_are_normalized_on_write() {
        let img = Image::from_fn_float(4, 4, |x, y| (x as f64 - y as f64) * 100.0);
        let mut buf = Vec::new();
        write_pnm(&img, &mut buf).unwrap();
        let back = read_pnm(buf.as_slice()).unwrap();
        assert_eq!(back.pixel_type(), PixelType::Byte);
        assert_eq!(back.min_max(), (0.0, 255.0));
    }

    #[test]
    fn comments_in_header_are_skipped() {
        let data = b"P5\n# a comment\n2 2\n255\n\x00\x40\x80\xff";
        let img = read_pnm(&data[..]).unwrap();
        assert_eq!(img.get(1, 1, 0), 255.0);
        assert_eq!(img.get(1, 0, 0), 64.0);
    }

    #[test]
    fn malformed_inputs_yield_structured_errors() {
        assert!(matches!(
            read_pnm(&b"P4\n1 1\n255\n\x00"[..]),
            Err(ImageIoError::UnsupportedMagic(m)) if m == "P4"
        ));
        assert!(matches!(
            read_pnm(&b"P5\n2 2\n255\n\x00"[..]),
            Err(ImageIoError::TruncatedPixels { need: 4, have: 1 })
        ));
        assert!(matches!(
            read_pnm(&b"P5\nx y\n255\n"[..]),
            Err(ImageIoError::BadHeaderToken(t)) if t == "x"
        ));
        assert!(matches!(
            read_pnm(&b"P5\n1 1\n70000\n\x00\x00"[..]),
            Err(ImageIoError::UnsupportedMaxval(70000))
        ));
        assert!(matches!(read_pnm(&b"P5\n1"[..]), Err(ImageIoError::UnexpectedEof)));
    }

    #[test]
    fn hostile_dimensions_are_rejected_without_allocating() {
        // 5 exabytes declared in a 30-byte header.
        let data = b"P6\n99999999999 99999999999\n255\n";
        assert!(matches!(
            read_pnm(&data[..]),
            Err(ImageIoError::OversizedDimensions { .. })
        ));
    }

    #[test]
    fn errors_downgrade_to_imaging_error() {
        let err = read_pnm(&b"P4\n"[..]).unwrap_err();
        let pooled: crate::ImagingError = err.into();
        assert!(pooled.to_string().contains("P4"));
    }

    #[test]
    fn two_band_images_cannot_be_written() {
        let mut rng = SplitMix64::new(5);
        let bands: Vec<_> = (0..2).map(|_| synth::noise(4, 4, 8, &mut rng)).collect();
        let img = synth::stack_bands(&bands);
        assert!(matches!(
            write_pnm(&img, Vec::new()),
            Err(ImageIoError::UnsupportedBandCount(2))
        ));
    }

    #[test]
    fn save_and_load_via_files() {
        let dir = std::env::temp_dir().join("memo_imaging_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        let mut rng = SplitMix64::new(6);
        let img = synth::noise(12, 12, 16, &mut rng);
        save_pnm(&img, &path).unwrap();
        let back = load_pnm(&path).unwrap();
        assert_eq!(back, img);
        std::fs::remove_file(&path).ok();
    }
}

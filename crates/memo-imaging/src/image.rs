//! The raster image type used throughout the reproduction.

use std::fmt;

/// Pixel representation of one image band (Table 8's "type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PixelType {
    /// 8-bit unsigned grey level (0–255).
    Byte,
    /// 32-bit signed integer (label maps and the like).
    Integer,
    /// 32-bit IEEE float (medical imagery in the paper).
    Float,
}

impl fmt::Display for PixelType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PixelType::Byte => f.write_str("BYTE"),
            PixelType::Integer => f.write_str("INTEGER"),
            PixelType::Float => f.write_str("FLOAT"),
        }
    }
}

/// Errors from image construction and IO.
#[derive(Debug)]
pub enum ImagingError {
    /// Width or height is zero, or bands is zero.
    EmptyDimensions,
    /// Supplied pixel data does not match `width × height`.
    DataSizeMismatch {
        /// Expected number of pixels per band.
        expected: usize,
        /// Number of pixels supplied.
        actual: usize,
    },
    /// Coordinates or band index out of range.
    OutOfBounds,
    /// Malformed PNM input.
    Format(String),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for ImagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImagingError::EmptyDimensions => f.write_str("image dimensions must be non-zero"),
            ImagingError::DataSizeMismatch { expected, actual } => {
                write!(f, "band holds {actual} pixels, expected {expected}")
            }
            ImagingError::OutOfBounds => f.write_str("pixel coordinates out of bounds"),
            ImagingError::Format(msg) => write!(f, "malformed image data: {msg}"),
            ImagingError::Io(e) => write!(f, "io failure: {e}"),
        }
    }
}

impl std::error::Error for ImagingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImagingError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImagingError {
    fn from(e: std::io::Error) -> Self {
        ImagingError::Io(e)
    }
}

/// A width × height raster with one or more bands of a single pixel type.
///
/// Pixels are stored as `f64` internally (the workloads do floating-point
/// arithmetic on them regardless of source type, exactly like the Khoros
/// kernels did); the [`PixelType`] records the *semantic* type, which
/// matters for entropy analysis and IO. Byte images are quantized on
/// construction.
///
/// # Examples
///
/// ```
/// use memo_imaging::{Image, PixelType};
///
/// let img = Image::from_fn_byte(4, 4, |x, y| ((x + y) * 16) as u8);
/// assert_eq!(img.width(), 4);
/// assert_eq!(img.pixel_type(), PixelType::Byte);
/// assert_eq!(img.get(1, 2, 0), 48.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixel_type: PixelType,
    bands: Vec<Vec<f64>>,
}

impl Image {
    /// Create an image from raw per-band samples.
    ///
    /// # Errors
    ///
    /// [`ImagingError::EmptyDimensions`] for zero-sized rasters or zero
    /// bands; [`ImagingError::DataSizeMismatch`] when a band's length is
    /// not `width × height`.
    pub fn new(
        width: usize,
        height: usize,
        pixel_type: PixelType,
        bands: Vec<Vec<f64>>,
    ) -> Result<Self, ImagingError> {
        if width == 0 || height == 0 || bands.is_empty() {
            return Err(ImagingError::EmptyDimensions);
        }
        let expected = width * height;
        for band in &bands {
            if band.len() != expected {
                return Err(ImagingError::DataSizeMismatch { expected, actual: band.len() });
            }
        }
        let mut img = Image { width, height, pixel_type, bands };
        if pixel_type == PixelType::Byte {
            img.quantize_bytes();
        }
        Ok(img)
    }

    /// Single-band byte image computed from a function of `(x, y)`.
    #[must_use]
    pub fn from_fn_byte(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f64::from(f(x, y)));
            }
        }
        Image::new(width, height, PixelType::Byte, vec![data])
            .expect("from_fn dimensions are consistent")
    }

    /// Single-band float image computed from a function of `(x, y)`.
    #[must_use]
    pub fn from_fn_float(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Image::new(width, height, PixelType::Float, vec![data])
            .expect("from_fn dimensions are consistent")
    }

    fn quantize_bytes(&mut self) {
        for band in &mut self.bands {
            for p in band.iter_mut() {
                *p = p.round().clamp(0.0, 255.0);
            }
        }
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of bands (1 for grey, 3 for RGB).
    #[must_use]
    pub fn bands(&self) -> usize {
        self.bands.len()
    }

    /// Semantic pixel type.
    #[must_use]
    pub fn pixel_type(&self) -> PixelType {
        self.pixel_type
    }

    /// Total pixels per band.
    #[must_use]
    pub fn pixels_per_band(&self) -> usize {
        self.width * self.height
    }

    /// Sample `(x, y)` of `band`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds; use [`Image::try_get`] for checked access.
    #[must_use]
    pub fn get(&self, x: usize, y: usize, band: usize) -> f64 {
        self.bands[band][y * self.width + x]
    }

    /// Checked sample access.
    ///
    /// # Errors
    ///
    /// [`ImagingError::OutOfBounds`] when any index is out of range.
    pub fn try_get(&self, x: usize, y: usize, band: usize) -> Result<f64, ImagingError> {
        if x >= self.width || y >= self.height || band >= self.bands.len() {
            return Err(ImagingError::OutOfBounds);
        }
        Ok(self.get(x, y, band))
    }

    /// Overwrite sample `(x, y)` of `band`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, x: usize, y: usize, band: usize, value: f64) {
        self.bands[band][y * self.width + x] = value;
    }

    /// Borrow one band's samples in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `band` is out of range.
    #[must_use]
    pub fn band(&self, band: usize) -> &[f64] {
        &self.bands[band]
    }

    /// Iterate over all samples of all bands.
    pub fn samples(&self) -> impl Iterator<Item = f64> + '_ {
        self.bands.iter().flat_map(|b| b.iter().copied())
    }

    /// Minimum and maximum sample over all bands.
    ///
    /// Returns `(0.0, 0.0)` for an image whose samples are all NaN.
    #[must_use]
    pub fn min_max(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in self.samples() {
            if s < min {
                min = s;
            }
            if s > max {
                max = s;
            }
        }
        if min > max {
            (0.0, 0.0)
        } else {
            (min, max)
        }
    }

    /// A new byte image with samples linearly rescaled to 0–255.
    #[must_use]
    pub fn normalized_to_byte(&self) -> Image {
        let (min, max) = self.min_max();
        let scale = if max > min { 255.0 / (max - min) } else { 0.0 };
        let bands = self
            .bands
            .iter()
            .map(|b| b.iter().map(|&p| ((p - min) * scale).round().clamp(0.0, 255.0)).collect())
            .collect();
        Image { width: self.width, height: self.height, pixel_type: PixelType::Byte, bands }
            .tap_quantized()
    }

    fn tap_quantized(mut self) -> Image {
        self.quantize_bytes();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_dimensions() {
        assert!(matches!(
            Image::new(0, 4, PixelType::Byte, vec![vec![]]),
            Err(ImagingError::EmptyDimensions)
        ));
        assert!(matches!(
            Image::new(2, 2, PixelType::Byte, vec![]),
            Err(ImagingError::EmptyDimensions)
        ));
        assert!(matches!(
            Image::new(2, 2, PixelType::Byte, vec![vec![0.0; 3]]),
            Err(ImagingError::DataSizeMismatch { expected: 4, actual: 3 })
        ));
    }

    #[test]
    fn byte_images_are_quantized() {
        let img = Image::new(2, 1, PixelType::Byte, vec![vec![3.7, 260.0]]).unwrap();
        assert_eq!(img.get(0, 0, 0), 4.0);
        assert_eq!(img.get(1, 0, 0), 255.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::from_fn_float(3, 3, |x, y| (x * 10 + y) as f64);
        assert_eq!(img.get(2, 1, 0), 21.0);
        img.set(2, 1, 0, -4.5);
        assert_eq!(img.get(2, 1, 0), -4.5);
        assert!(img.try_get(3, 0, 0).is_err());
        assert!(img.try_get(0, 3, 0).is_err());
        assert!(img.try_get(0, 0, 1).is_err());
    }

    #[test]
    fn min_max_and_normalization() {
        let img = Image::from_fn_float(2, 2, |x, y| (x as f64 - y as f64) * 10.0);
        assert_eq!(img.min_max(), (-10.0, 10.0));
        let byte = img.normalized_to_byte();
        assert_eq!(byte.pixel_type(), PixelType::Byte);
        assert_eq!(byte.min_max(), (0.0, 255.0));
    }

    #[test]
    fn multiband_access() {
        let bands = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let img = Image::new(2, 1, PixelType::Byte, bands).unwrap();
        assert_eq!(img.bands(), 3);
        assert_eq!(img.get(1, 0, 2), 6.0);
        assert_eq!(img.samples().count(), 6);
    }

    #[test]
    fn display_pixel_types() {
        assert_eq!(PixelType::Byte.to_string(), "BYTE");
        assert_eq!(PixelType::Integer.to_string(), "INTEGER");
        assert_eq!(PixelType::Float.to_string(), "FLOAT");
    }
}

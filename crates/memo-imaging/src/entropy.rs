//! Whole-image and windowed entropy (§3.2, Table 8, Figure 2).
//!
//! The paper computes three figures per image: the entropy of the full
//! histogram, and the *mean* entropy of 16×16 and 8×8 windows. Small
//! windows hold few distinct values, so their entropies are much lower —
//! which is precisely why kernels operating on local neighbourhoods keep
//! re-issuing the same operand pairs.

use crate::histogram::Histogram;
use crate::image::{Image, PixelType};

/// The entropy triple the paper reports per image (bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntropyReport {
    /// Entropy of the whole-image histogram.
    pub full: f64,
    /// Mean entropy over 16×16 windows.
    pub win16: f64,
    /// Mean entropy over 8×8 windows.
    pub win8: f64,
}

/// Entropy of the full image (all bands pooled, as a single histogram).
///
/// FLOAT imagery gets `None` — the paper leaves those cells blank because a
/// continuous-valued histogram has no natural 256-level alphabet.
#[must_use]
pub fn full_entropy(image: &Image) -> Option<f64> {
    if image.pixel_type() == PixelType::Float {
        return None;
    }
    Some(Histogram::from_samples(image.samples()).entropy_bits())
}

/// Mean entropy over `window × window` tiles (all bands pooled per tile).
///
/// Tiles at the right/bottom edges that don't fill a full window are
/// included with their partial contents, matching how a raster scan of the
/// image would bucket them. Returns `None` for FLOAT imagery.
#[must_use]
pub fn windowed_entropy(image: &Image, window: usize) -> Option<f64> {
    if image.pixel_type() == PixelType::Float {
        return None;
    }
    assert!(window > 0, "window must be non-zero");
    let mut sum = 0.0;
    let mut tiles = 0u64;
    let mut y0 = 0;
    while y0 < image.height() {
        let mut x0 = 0;
        while x0 < image.width() {
            let mut h = Histogram::new();
            for band in 0..image.bands() {
                for y in y0..(y0 + window).min(image.height()) {
                    for x in x0..(x0 + window).min(image.width()) {
                        h.record(image.get(x, y, band));
                    }
                }
            }
            sum += h.entropy_bits();
            tiles += 1;
            x0 += window;
        }
        y0 += window;
    }
    Some(sum / tiles as f64)
}

/// The full report: whole-image, 16×16, and 8×8 entropies.
///
/// Returns `None` for FLOAT imagery (the paper's blank cells).
#[must_use]
pub fn report(image: &Image) -> Option<EntropyReport> {
    Some(EntropyReport {
        full: full_entropy(image)?,
        win16: windowed_entropy(image, 16)?,
        win8: windowed_entropy(image, 8)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn noise_image(levels: u64, seed: u64) -> Image {
        let mut rng = SplitMix64::new(seed);
        Image::from_fn_byte(64, 64, |_, _| {
            (rng.next_below(levels) * (256 / levels)) as u8
        })
    }

    #[test]
    fn uniform_noise_approaches_log2_levels() {
        for levels in [2u64, 16, 256] {
            let img = noise_image(levels, 42);
            let e = full_entropy(&img).unwrap();
            let target = (levels as f64).log2();
            assert!(
                (e - target).abs() < 0.15,
                "levels={levels}: entropy {e} vs log2 {target}"
            );
        }
    }

    #[test]
    fn windowed_entropy_is_below_full_for_structured_images() {
        // A smooth gradient: full image has many values, each window few.
        let img = Image::from_fn_byte(128, 128, |x, y| ((x + y) / 2) as u8);
        let r = report(&img).unwrap();
        assert!(r.win8 < r.win16, "8x8 {} < 16x16 {}", r.win8, r.win16);
        assert!(r.win16 < r.full, "16x16 {} < full {}", r.win16, r.full);
    }

    #[test]
    fn constant_image_has_zero_everywhere() {
        let img = Image::from_fn_byte(32, 32, |_, _| 7);
        let r = report(&img).unwrap();
        assert_eq!((r.full, r.win16, r.win8), (0.0, 0.0, 0.0));
    }

    #[test]
    fn float_images_are_unreported() {
        let img = Image::from_fn_float(8, 8, |x, _| x as f64 * 0.1);
        assert_eq!(full_entropy(&img), None);
        assert_eq!(report(&img), None);
    }

    #[test]
    fn entropy_bounded_by_alphabet() {
        let img = noise_image(256, 9);
        let e = full_entropy(&img).unwrap();
        assert!(e <= 8.0 + 1e-9);
        assert!(e >= 0.0);
    }

    #[test]
    fn edge_tiles_are_handled() {
        // 20×20 with window 16 → partial tiles on two sides; must not panic
        // and must produce a sane value.
        let img = Image::from_fn_byte(20, 20, |x, y| (x * y) as u8);
        let e = windowed_entropy(&img, 16).unwrap();
        assert!(e >= 0.0);
    }
}

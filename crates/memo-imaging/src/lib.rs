//! # memo-imaging
//!
//! Image substrate for the ASPLOS'98 memoing reproduction.
//!
//! The paper's §3.2 ties MEMO-TABLE hit ratios to the **entropy** of the
//! images that multi-media applications process: the lower the entropy —
//! especially within small 8×8 / 16×16 windows — the fewer distinct pixel
//! values a kernel touches, the more operand pairs repeat, and the higher
//! the hit ratio (about −5 % per entropy bit, Figure 2).
//!
//! This crate provides everything the workloads and experiments need:
//!
//! * [`Image`] — width × height × bands raster with BYTE / INTEGER / FLOAT
//!   pixel types (the types of Table 8);
//! * [`Histogram`] and entropy analysis (whole-image and windowed) in
//!   [`entropy`];
//! * deterministic synthetic image generators spanning the entropy range
//!   of the paper's test images in [`synth`];
//! * a named corpus mirroring Table 8's fourteen inputs
//!   ([`synth::corpus`]);
//! * PGM / PPM (PNM binary) reading and writing in [`io`];
//! * a tiny splittable PRNG ([`rng::SplitMix64`]) reused by the workload
//!   crate so the whole reproduction is seed-deterministic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod entropy;
mod histogram;
mod image;
pub mod io;
pub mod rng;
pub mod synth;

pub use histogram::Histogram;
pub use image::{Image, ImagingError, PixelType};
pub use io::ImageIoError;

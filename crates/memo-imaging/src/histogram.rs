//! Value histograms, the basis of the paper's entropy measure.

use std::collections::HashMap;

/// A histogram over discrete sample values.
///
/// Byte samples use a dense 256-bin array; other values fall into a sparse
/// map keyed by their bit pattern (each distinct value is its own bin, the
/// natural reading of the paper's formula for INTEGER imagery).
#[derive(Debug, Clone)]
pub struct Histogram {
    dense: [u64; 256],
    sparse: HashMap<u64, u64>,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram { dense: [0; 256], sparse: HashMap::new(), total: 0 }
    }

    /// Build a histogram from an iterator of samples.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut h = Histogram::new();
        for s in samples {
            h.record(s);
        }
        h
    }

    /// Record one sample.
    pub fn record(&mut self, sample: f64) {
        self.total += 1;
        if sample.fract() == 0.0 && (0.0..=255.0).contains(&sample) {
            self.dense[sample as usize] += 1;
        } else {
            *self.sparse.entry(sample.to_bits()).or_insert(0) += 1;
        }
    }

    /// Total samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct values observed.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.dense.iter().filter(|&&c| c > 0).count() + self.sparse.len()
    }

    /// Shannon entropy in bits: `E = −Σ p_k · log2(p_k)` (the paper's
    /// equation in §3.2).
    ///
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        let mut e = 0.0;
        for &count in self.dense.iter().filter(|&&c| c > 0) {
            let p = count as f64 / n;
            e -= p * p.log2();
        }
        for &count in self.sparse.values() {
            let p = count as f64 / n;
            e -= p * p.log2();
        }
        e.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bytes_have_eight_bits() {
        // The paper's worked example: 256 equally likely grey levels → 8 bits.
        let h = Histogram::from_samples((0..256).map(f64::from));
        assert!((h.entropy_bits() - 8.0).abs() < 1e-12);
        assert_eq!(h.distinct(), 256);
    }

    #[test]
    fn constant_image_has_zero_entropy() {
        let h = Histogram::from_samples(std::iter::repeat_n(7.0, 100));
        assert_eq!(h.entropy_bits(), 0.0);
        assert_eq!(h.distinct(), 1);
    }

    #[test]
    fn two_equal_values_have_one_bit() {
        let h = Histogram::from_samples([0.0, 255.0].iter().cycle().take(50).copied());
        assert!((h.entropy_bits() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_lowers_entropy() {
        let balanced = Histogram::from_samples([1.0, 2.0, 1.0, 2.0]);
        let skewed = Histogram::from_samples([1.0, 1.0, 1.0, 2.0]);
        assert!(skewed.entropy_bits() < balanced.entropy_bits());
    }

    #[test]
    fn non_byte_values_use_sparse_bins() {
        let h = Histogram::from_samples([0.5, 0.5, 1e9, -3.0]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.distinct(), 3);
        assert!(h.entropy_bits() > 0.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.entropy_bits(), 0.0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.distinct(), 0);
    }
}

//! A tiny deterministic PRNG (SplitMix64).
//!
//! Every synthetic input in the reproduction — images, scientific initial
//! conditions, workload parameters — is derived from explicit seeds through
//! this generator, so each experiment is bit-reproducible across runs and
//! platforms. SplitMix64 passes BigCrush, needs no dependencies, and can be
//! "split" into independent streams by hashing a label into the seed.

/// SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use memo_imaging::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent generator for a labelled sub-stream.
    #[must_use]
    pub fn split(&self, label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for byte in label.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SplitMix64 { state: self.state ^ h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below requires a non-empty range");
        // Multiply-shift rejection-free mapping (tiny bias is irrelevant
        // for synthetic inputs; determinism is what matters).
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform double in `[lo, hi)`.
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard-normal sample (Box–Muller).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(8);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let root = SplitMix64::new(1);
        let mut x1 = root.split("images");
        let mut x2 = root.split("workloads");
        let mut x1b = root.split("images");
        assert_ne!(x1.next_u64(), x2.next_u64());
        x1 = root.split("images");
        assert_eq!(x1.next_u64(), x1b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.next_below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut r = SplitMix64::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}

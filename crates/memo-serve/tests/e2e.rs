//! End-to-end: boot the real server on an ephemeral port, speak real
//! HTTP over real sockets, and hold the service to its core promises —
//! artifact bytes identical to the CLI runners, cache hits on repeats,
//! backpressure instead of queueing without bound, and a clean drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use memo_experiments::{runner, ExpConfig};
use memo_serve::server::{self, ServerConfig, ServerHandle};

fn boot(workers: usize, queue_capacity: usize) -> ServerHandle {
    // MEMO_SCALE/MEMO_SCI_N from the environment must not skew the
    // byte-identity comparison, so pin the config explicitly.
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity,
        cache_capacity: 64,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        cfg: ExpConfig::quick(),
        store_dir: None,
        ..ServerConfig::default()
    };
    server::start(&config).expect("bind ephemeral port")
}

/// One full HTTP exchange on a fresh connection; returns (status,
/// headers, body).
fn get(handle: &ServerHandle, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes())
        .expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("complete header block");
    let head = String::from_utf8_lossy(&raw[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, raw[header_end + 4..].to_vec())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
}

#[test]
fn table_bytes_match_the_direct_runner_and_repeat_hits_cache() {
    let handle = boot(2, 16);
    let expected = format!("{}\n", runner::table(1, ExpConfig::quick()).unwrap());

    let (status, headers, body) = get(&handle, "/v1/table/1");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-memo-cache"), Some("miss"));
    assert_eq!(
        body,
        expected.as_bytes(),
        "HTTP body must be byte-identical to the table1 runner output"
    );

    let (status, headers, body) = get(&handle, "/v1/table/1");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-memo-cache"), Some("hit"), "repeat must be served from cache");
    assert_eq!(body, expected.as_bytes());

    // The hit is visible in the metrics counters, not just the header.
    let hits = handle.state().metrics.cache_hits.load(std::sync::atomic::Ordering::Relaxed);
    assert!(hits >= 1, "cache hit counter must have incremented, got {hits}");

    let (status, _, metrics_body) = get(&handle, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(metrics_body).unwrap();
    assert!(
        text.contains("memo_serve_cache_hits_total 1"),
        "metrics must report the cache hit:\n{text}"
    );
    assert!(text.contains("memo_serve_requests_total{endpoint=\"table\"} 2"));

    handle.shutdown();
    handle.wait();
}

#[test]
fn sweep_bytes_match_the_direct_runner() {
    let handle = boot(2, 16);
    let q = runner::SweepQuery::parse(Some("8,16"), Some("2")).unwrap();
    let expected = format!("{}\n", runner::sweep(ExpConfig::quick(), &q).unwrap());

    let (status, headers, body) = get(&handle, "/v1/sweep?entries=8,16&ways=2");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-memo-cache"), Some("miss"));
    assert_eq!(body, expected.as_bytes(), "sweep bytes must match the sweep runner");

    // Same query spelled through the other axis default still hits the
    // canonicalized cache key.
    let (status, headers, body) = get(&handle, "/v1/sweep?ways=2&entries=8,16");
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-memo-cache"), Some("hit"));
    assert_eq!(body, expected.as_bytes());

    handle.shutdown();
    handle.wait();
}

#[test]
fn figure_bytes_match_and_errors_map_to_http_statuses() {
    let handle = boot(2, 16);
    let expected = format!("{}\n", runner::figure(4, ExpConfig::quick()).unwrap());
    let (status, _, body) = get(&handle, "/v1/figure/4");
    assert_eq!(status, 200);
    assert_eq!(body, expected.as_bytes());

    let (status, _, _) = get(&handle, "/v1/table/99");
    assert_eq!(status, 404, "unknown table number");
    let (status, _, _) = get(&handle, "/v1/figure/1");
    assert_eq!(status, 404, "figure 1 is not reproduced");
    let (status, _, _) = get(&handle, "/v1/sweep?entries=8,16&ways=2,4");
    assert_eq!(status, 400, "two multi-value axes");
    let (status, _, _) = get(&handle, "/no/such/route");
    assert_eq!(status, 404);

    handle.shutdown();
    handle.wait();
}

#[test]
fn pipelined_requests_on_one_connection_all_answer() {
    let handle = boot(2, 16);
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    // Two pipelined requests, then close.
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n\
              GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
        )
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    assert_eq!(raw.matches("HTTP/1.1 200 OK").count(), 2, "both pipelined requests answered:\n{raw}");
    assert_eq!(raw.matches("ok\n").count(), 2);

    handle.shutdown();
    handle.wait();
}

#[test]
fn pipelined_requests_split_across_tcp_segments_still_parse() {
    // The same two pipelined requests, but dribbled onto the wire in
    // fragments that land mid-request-line, mid-header, and — the
    // nasty one — straddling the boundary between request one and
    // request two. The server's buffer must reassemble exactly two
    // messages no matter where the segment edges fall.
    let handle = boot(2, 16);
    let wire: &[u8] = b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n\
                        GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n";
    // Split points chosen to break inside the first request line (7),
    // inside its header block (29), after the first request plus a few
    // bytes of the second (40), and inside the second's headers (60).
    for splits in [vec![7usize, 29, 34, 40, 60], (1..wire.len()).step_by(11).collect::<Vec<_>>()] {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        let mut sent = 0;
        for cut in splits.into_iter().chain([wire.len()]) {
            stream.write_all(&wire[sent..cut]).expect("send fragment");
            stream.flush().expect("flush fragment");
            sent = cut;
            // A real network would also delay between segments; give
            // the server a chance to read each fragment in isolation.
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        assert_eq!(
            raw.matches("HTTP/1.1 200 OK").count(),
            2,
            "both requests answered despite segmentation:\n{raw}"
        );
        assert_eq!(raw.matches("ok\n").count(), 2);
    }

    handle.shutdown();
    handle.wait();
}

#[test]
fn saturated_queue_sheds_with_503_and_retry_after() {
    // One worker, one queue slot: park the worker on a slow request,
    // fill the slot, and every further connection must be shed.
    let handle = boot(1, 1);

    // Park the worker: open a connection and complete a request slowly
    // enough that follow-up connections pile into the queue. Easiest
    // reliable way: issue a request but never finish it — the worker
    // blocks in read until the 2 s timeout.
    let mut parked = TcpStream::connect(handle.addr()).expect("connect");
    parked.write_all(b"GET /healthz HTTP/1.1\r\n").expect("send partial");
    std::thread::sleep(Duration::from_millis(100)); // let a worker claim it

    // Occupy the single queue slot with another idle connection.
    let mut queued = TcpStream::connect(handle.addr()).expect("connect");
    queued.write_all(b"GET /healthz HTTP/1").expect("send partial");
    std::thread::sleep(Duration::from_millis(100));

    // Now the queue is full: this connection must get a 503 + Retry-After.
    let mut shed = false;
    for _ in 0..10 {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
            .expect("send");
        let mut raw = String::new();
        let _ = stream.read_to_string(&mut raw);
        if raw.starts_with("HTTP/1.1 503") {
            assert!(
                raw.to_ascii_lowercase().contains("retry-after: 1"),
                "503 must carry Retry-After:\n{raw}"
            );
            shed = true;
            break;
        }
    }
    assert!(shed, "a saturated queue must shed at least one connection with 503");
    let rejections = handle
        .state()
        .metrics
        .queue_rejections
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(rejections >= 1, "rejection counter must count the shed connection");

    drop(parked);
    drop(queued);
    handle.shutdown();
    handle.wait();
}

#[test]
fn head_requests_get_headers_without_body() {
    let handle = boot(2, 16);
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .write_all(b"HEAD /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
    assert!(raw.contains("content-length: 3\r\n"), "HEAD keeps the true length:\n{raw}");
    assert!(raw.ends_with("\r\n\r\n"), "HEAD must not carry a body:\n{raw}");

    handle.shutdown();
    handle.wait();
}

//! Warm restart: a server backed by `--store-dir` must, after a full
//! drain and reboot on the same directory, serve byte-identical artifact
//! responses from the persistent tier (`x-memo-cache: disk`) without
//! recomputing them.
//!
//! This lives in its own integration-test binary (not `e2e.rs`) because
//! attaching a store also installs it process-globally for the trace
//! cache; keeping it in a separate process keeps the store-less e2e
//! tests honest.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use memo_experiments::{runner, store, ExpConfig};
use memo_serve::server::{self, ServerConfig, ServerHandle};

fn boot(store_dir: PathBuf) -> ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 64,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        cfg: ExpConfig::quick(),
        store_dir: Some(store_dir),
        ..ServerConfig::default()
    };
    server::start(&config).expect("bind ephemeral port")
}

fn get(handle: &ServerHandle, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes())
        .expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let header_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("complete header block");
    let head = String::from_utf8_lossy(&raw[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, raw[header_end + 4..].to_vec())
}

fn cache_header(headers: &[(String, String)]) -> Option<&str> {
    headers.iter().find(|(k, _)| k == "x-memo-cache").map(|(_, v)| v.as_str())
}

#[test]
fn restarted_server_serves_byte_identical_renders_from_disk() {
    let dir = std::env::temp_dir().join(format!("memo-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Round 1: cold boot. The first fetch computes and writes through;
    // the repeat is an in-memory hit.
    let handle = boot(dir.clone());
    let expected = format!("{}\n", runner::table(1, ExpConfig::quick()).unwrap());
    let (status, headers, body) = get(&handle, "/v1/table/1");
    assert_eq!(status, 200);
    assert_eq!(cache_header(&headers), Some("miss"));
    assert_eq!(body, expected.as_bytes());
    let (_, headers, _) = get(&handle, "/v1/table/1");
    assert_eq!(cache_header(&headers), Some("hit"));

    // Errors must not be persisted — round 2 asserts this stays a miss.
    let (status, _, _) = get(&handle, "/v1/table/99");
    assert_eq!(status, 404);

    handle.shutdown();
    handle.wait(); // drains and flushes the store

    // Between rounds, wipe the process-wide experiment result cache so a
    // compute in round 2 could not be satisfied by this process's memory
    // — only the `disk` header below proves no compute ran at all.
    memo_experiments::results::clear();

    // Round 2: reboot on the same directory. The serve cache is empty,
    // so the first fetch must come from the persistent tier, bit-exact.
    let handle = boot(dir.clone());
    let (status, headers, body) = get(&handle, "/v1/table/1");
    assert_eq!(status, 200);
    assert_eq!(cache_header(&headers), Some("disk"), "warm restart must answer from the store");
    assert_eq!(body, expected.as_bytes(), "persisted render must be byte-identical");
    // Once loaded it is resident: the repeat is a memory hit again.
    let (_, headers, _) = get(&handle, "/v1/table/1");
    assert_eq!(cache_header(&headers), Some("hit"));

    // The 404 was never persisted, so it recomputes.
    let (status, headers, _) = get(&handle, "/v1/table/99");
    assert_eq!(status, 404);
    assert_eq!(cache_header(&headers), Some("miss"));

    // The disk hit and the attached store are visible in /metrics.
    let (_, _, metrics) = get(&handle, "/metrics");
    let text = String::from_utf8(metrics).unwrap();
    assert!(text.contains("memo_serve_cache_disk_hits_total 1"), "{text}");
    assert!(text.contains("memo_store_attached 1"));
    assert!(text.contains("memo_serve_cache_bytes"));

    handle.shutdown();
    handle.wait();
    store::uninstall();
    let _ = std::fs::remove_dir_all(&dir);
}

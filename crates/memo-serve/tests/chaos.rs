//! Chaos end-to-end: serve real HTTP while the persistent tier's
//! filesystem misbehaves underneath it, and hold the server to the
//! degraded-mode contract:
//!
//! * **no injected disk fault ever surfaces as a 5xx** — every artifact
//!   response is 200 with bytes identical to a fault-free run;
//! * a sustained outage trips the disk-tier circuit breaker (visible in
//!   `/metrics` and as `degraded:disk-breaker-open` on `/healthz`), and
//!   the server keeps serving memory → compute;
//! * once the disk heals, the half-open probe closes the breaker and
//!   `/healthz` returns to `ok`.
//!
//! The fault stream is deterministic: `MEMO_CHAOS_SEED` (default 1998)
//! seeds the injector, so a CI failure replays exactly. A summary of the
//! run is written to `CHAOS_report.json` for the CI artifact.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use memo_experiments::{runner, ExpConfig};
use memo_serve::server::{self, ServerConfig, ServerHandle};
use memo_store::{FaultConfig, FaultVfs, ResultBlob, Store, StoreConfig};

fn chaos_seed() -> u64 {
    std::env::var("MEMO_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(1998)
}

/// One full HTTP exchange on a fresh connection.
fn get(handle: &ServerHandle, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").as_bytes())
        .expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let header_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("complete header block");
    let head = String::from_utf8_lossy(&raw[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, raw[header_end + 4..].to_vec())
}

/// Pull one `name value` sample out of a Prometheus text exposition.
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.trim().parse().ok()))
        .unwrap_or_else(|| panic!("metric {name} not found in:\n{text}"))
}

fn fetch_metrics(handle: &ServerHandle) -> String {
    let (status, _, body) = get(handle, "/metrics");
    assert_eq!(status, 200);
    String::from_utf8(body).expect("metrics are text")
}

/// The `(table, sci_n)` pairs each phase requests. All distinct, so
/// every request exercises the full tier ladder instead of the
/// in-memory cache.
const PHASE1: &[(usize, usize)] = &[(1, 8), (1, 10), (2, 8), (2, 10), (3, 8), (3, 10)];
const PHASE2: &[(usize, usize)] = &[(1, 30), (1, 32), (2, 30), (2, 32), (3, 30), (3, 32)];
const PHASE3: &[(usize, usize)] = &[(1, 36), (2, 36), (3, 36)];

fn store_key(table: usize, sci_n: usize) -> String {
    format!("results/table/{table}@scale=16;sci_n={sci_n}")
}

fn request_path(table: usize, sci_n: usize) -> String {
    format!("/v1/table/{table}?sci_n={sci_n}")
}

#[test]
fn serving_survives_disk_chaos_byte_identically_and_recovers() {
    let seed = chaos_seed();
    let dir = std::env::temp_dir()
        .join(format!("memo-serve-chaos-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Fault-free baselines, computed before any server exists: the
    // responses under chaos must match these byte for byte.
    let mut baseline: BTreeMap<(usize, usize), String> = BTreeMap::new();
    for &(table, sci_n) in PHASE1.iter().chain(PHASE2).chain(PHASE3) {
        let mut cfg = ExpConfig::quick();
        cfg.sci_n = sci_n;
        let rendered = runner::table(table, cfg).expect("baseline render");
        baseline.insert((table, sci_n), format!("{rendered}\n"));
    }

    // The store opens quiet, gets every baseline pre-seeded and flushed
    // into a segment (so lookups really read the disk), and only then
    // does the injector arm.
    let vfs = Arc::new(FaultVfs::new(FaultConfig::quiet(seed)));
    let store = Arc::new(
        Store::open_with_vfs(&dir, StoreConfig::default(), vfs.clone() as Arc<dyn memo_store::Vfs>)
            .expect("open store"),
    );
    for (&(table, sci_n), body) in &baseline {
        let blob = ResultBlob { status: 200, body: body.clone().into_bytes() };
        store.put(store_key(table, sci_n).as_bytes(), &blob.to_bytes()).expect("seed");
    }
    store.flush().expect("flush seeds to a segment");

    let breaker_cooldown = Duration::from_millis(250);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 32,
        cache_capacity: 256,
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        cfg: ExpConfig::quick(),
        store_dir: None,
        store: Some(Arc::clone(&store)),
        breaker_threshold: 3,
        breaker_cooldown,
        request_deadline: Duration::from_secs(30),
        node_id: None,
    };
    let handle = server::start(&config).expect("bind ephemeral port");
    let mut non_degraded_errors = 0u64;

    // ---- Phase 1: moderate faults. Reads, writes, and fsyncs fail at
    // ~8% each, some write faults manifest as ENOSPC or short writes,
    // and a sprinkle of latency. Retries absorb most of it; anything
    // they don't, the tier ladder does.
    vfs.set_config(FaultConfig {
        read_error_permille: 80,
        write_error_permille: 80,
        fsync_error_permille: 80,
        enospc_permille: 300,
        short_write_permille: 300,
        latency_permille: 100,
        latency: Duration::from_millis(1),
        ..FaultConfig::quiet(seed)
    });
    for &(table, sci_n) in PHASE1 {
        let (status, _, body) = get(&handle, &request_path(table, sci_n));
        if status >= 500 {
            non_degraded_errors += 1;
        }
        assert_eq!(status, 200, "phase 1: injected faults must not surface");
        assert_eq!(
            body,
            baseline[&(table, sci_n)].as_bytes(),
            "phase 1: table {table} sci_n {sci_n} diverged from the fault-free bytes"
        );
    }

    // ---- Phase 2: total outage. Every read, write, and fsync fails.
    // Fresh keys force the server through the broken disk; the breaker
    // trips and serving degrades to memory → compute, still correct.
    vfs.set_config(FaultConfig {
        read_error_permille: 1000,
        write_error_permille: 1000,
        fsync_error_permille: 1000,
        ..FaultConfig::quiet(seed)
    });
    for &(table, sci_n) in PHASE2 {
        let (status, _, body) = get(&handle, &request_path(table, sci_n));
        if status >= 500 {
            non_degraded_errors += 1;
        }
        assert_eq!(status, 200, "phase 2: a dead disk must degrade, not fail");
        assert_eq!(
            body,
            baseline[&(table, sci_n)].as_bytes(),
            "phase 2: table {table} sci_n {sci_n} diverged during the outage"
        );
    }
    let (status, _, body) = get(&handle, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, b"degraded:disk-breaker-open\n", "healthz must surface the open breaker");
    let outage = fetch_metrics(&handle);
    assert_eq!(metric(&outage, "memo_tier_breaker_state"), 2, "breaker should be open");
    assert!(metric(&outage, "memo_tier_breaker_trips_total") >= 1);
    assert!(metric(&outage, "memo_store_io_errors_total") > 0);
    assert!(metric(&outage, "memo_store_retries_total") > 0);
    let trips_after_outage = metric(&outage, "memo_tier_breaker_trips_total");

    // ---- Phase 3: the disk heals. After the cooldown, the next lookup
    // is admitted as a half-open probe, succeeds, and closes the breaker.
    vfs.quiesce();
    std::thread::sleep(breaker_cooldown + Duration::from_millis(100));
    for &(table, sci_n) in PHASE3 {
        let (status, _, body) = get(&handle, &request_path(table, sci_n));
        if status >= 500 {
            non_degraded_errors += 1;
        }
        assert_eq!(status, 200);
        assert_eq!(
            body,
            baseline[&(table, sci_n)].as_bytes(),
            "phase 3: table {table} sci_n {sci_n} diverged after recovery"
        );
    }
    let (status, _, body) = get(&handle, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body, b"ok\n", "healthz must recover once the probe closes the breaker");
    let healed = fetch_metrics(&handle);
    assert_eq!(metric(&healed, "memo_tier_breaker_state"), 0, "breaker should have closed");
    assert!(metric(&healed, "memo_tier_breaker_probes_total") >= 1);

    assert_eq!(non_degraded_errors, 0, "chaos must never surface a 5xx");

    // ---- Report for the CI artifact.
    let stats = vfs.stats();
    let report = format!(
        "{{\n  \"bench\": \"memo_serve_chaos\",\n  \"seed\": {seed},\n  \
         \"requests\": {},\n  \"non_degraded_errors\": {non_degraded_errors},\n  \
         \"fault_ops\": {:?},\n  \"faults_injected\": {:?},\n  \
         \"short_writes\": {},\n  \"enospc\": {},\n  \"delays\": {},\n  \
         \"store_io_errors\": {},\n  \"store_retries\": {},\n  \
         \"breaker_trips\": {},\n  \"breaker_probes\": {},\n  \
         \"recovered\": true\n}}\n",
        PHASE1.len() + PHASE2.len() + PHASE3.len(),
        stats.ops,
        stats.injected,
        stats.short_writes,
        stats.enospc,
        stats.delays,
        metric(&healed, "memo_store_io_errors_total"),
        metric(&healed, "memo_store_retries_total"),
        trips_after_outage,
        metric(&healed, "memo_tier_breaker_probes_total"),
    );
    if let Err(err) = std::fs::write("CHAOS_report.json", &report) {
        eprintln!("chaos: could not write CHAOS_report.json: {err}");
    }

    handle.shutdown();
    handle.wait();
    memo_experiments::store::uninstall();
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Print the deterministic target sequence one load lane issues —
//! handy when a smoke run wedges on request N and you need to know
//! what N actually was.
use memo_table::rng::SplitMix64;

fn pick(rng: &mut SplitMix64) -> String {
    match rng.next_below(100) {
        0..=34 => format!("/v1/table/{}", 1 + rng.next_below(13)),
        35..=44 => "/v1/table/1".to_string(),
        45..=59 => format!("/v1/figure/{}", 2 + rng.next_below(3)),
        60..=79 => match rng.next_below(3) {
            0 => "/v1/sweep?entries=8,16,32".to_string(),
            1 => "/v1/sweep?ways=1,2,4".to_string(),
            _ => "/v1/sweep".to_string(),
        },
        80..=89 => "/healthz".to_string(),
        _ => "/metrics".to_string(),
    }
}

fn main() {
    let root = SplitMix64::new(1998);
    let mut rng = root.split("conn-0");
    let mut miss_seq = 0u64;
    for i in 0..30 {
        let target = if rng.next_below(1000) < 300 {
            let idx = miss_seq;
            miss_seq += 1;
            let table = [1u64, 2, 3][usize::try_from(idx % 3).unwrap()];
            let mut scale = 1 + (idx / 3) % 63;
            if scale >= 16 {
                scale += 1;
            }
            format!("/v1/table/{table}?scale={scale} [miss]")
        } else {
            pick(&mut rng)
        };
        println!("{i:2} {target}");
    }
}

//! A deterministic load generator for the memo-serve endpoint space.
//!
//! N connection threads replay a weighted request mix drawn from a
//! [`SplitMix64`] stream (seeded, split per connection — two runs with
//! the same seed issue the same requests), in closed-loop (next request
//! after the previous response) or open-loop (fixed per-connection
//! request rate) mode. Latencies land in cold/warm/disk histograms keyed
//! off the server's `x-memo-cache` header (`miss`, `hit`, `disk`), and
//! the summary is written as `BENCH_serve.json` next to the bench
//! artifacts the repo already produces.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use memo_table::rng::SplitMix64;

use crate::hist::Histogram;
use crate::http;

/// Open vs closed loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Issue the next request as soon as the previous response lands.
    Closed,
    /// Issue requests at a fixed per-connection rate (per second),
    /// sleeping between sends; measures latency under a set demand.
    Open {
        /// Requests per second per connection.
        rate: u32,
    },
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7070`.
    pub addr: String,
    /// Concurrent connections (threads).
    pub connections: usize,
    /// How long to run.
    pub duration: Duration,
    /// Open or closed loop.
    pub mode: Mode,
    /// PRNG seed; same seed → same request sequence.
    pub seed: u64,
    /// Per-mille of requests redirected to deterministic never-cached
    /// artifact keys (cheap trace-free tables at off-default `scale`
    /// values the warm mix never requests). `0` disables; `300` makes
    /// ~30% of the mix guaranteed store misses, exercising the
    /// bloom-filter path.
    pub store_miss_permille: u32,
    /// Cluster mode: the target is a memo-router, not a single node.
    /// Responses are attributed per backend node via `x-memo-node`,
    /// routing-table swaps are counted via `x-memo-ring-gen`, and the
    /// router's failover/read-repair totals are scraped into the report
    /// after the run.
    pub cluster: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7070".to_string(),
            connections: 32,
            duration: Duration::from_secs(15),
            mode: Mode::Closed,
            seed: 1998, // the paper's year
            store_miss_permille: 0,
            cluster: false,
        }
    }
}

/// The weighted request mix. Tables dominate (they are the paper's
/// artifacts), a hot table gives the cache an easy win, sweeps exercise
/// the fused replay path, and healthz/metrics model probes.
fn pick_target(rng: &mut SplitMix64) -> String {
    let roll = rng.next_below(100);
    match roll {
        // 35%: a uniformly random table.
        0..=34 => format!("/v1/table/{}", 1 + rng.next_below(13)),
        // 10%: the hot table — repeated key, guaranteed cache traffic.
        35..=44 => "/v1/table/1".to_string(),
        // 15%: a figure.
        45..=59 => format!("/v1/figure/{}", 2 + rng.next_below(3)),
        // 20%: one of a few canned sweeps.
        60..=79 => match rng.next_below(3) {
            0 => "/v1/sweep?entries=8,16,32".to_string(),
            1 => "/v1/sweep?ways=1,2,4".to_string(),
            _ => "/v1/sweep".to_string(),
        },
        // 10%: health probe.
        80..=89 => "/healthz".to_string(),
        // 10%: metrics scrape.
        _ => "/metrics".to_string(),
    }
}

/// Tables whose render cost is flat (sub-100 ms) across the whole
/// `scale` range, measured table-first on a fresh process so no other
/// request could have pre-warmed shared state. The walk must stay on
/// these: every other table touches per-scale kernel state whose first
/// computation explodes somewhere in the range — re-recorded traces
/// cost tens of seconds of CPU and up to a gigabyte of archive pushed
/// through the store per key (table 7), and the small-`scale` end
/// takes minutes outright (tables 12 and 13 at `scale≤2`). Either
/// failure pins a worker past the client timeout and stalls everyone
/// else behind the flush queue. A load knob that is meant to probe the
/// store's negative path must not *write* the store into the ground.
const MISS_TABLES: [u64; 3] = [1, 2, 3];

/// The `idx`-th never-cached artifact target: a counter walk through the
/// `(table, scale)` space in mixed-radix order, so consecutive indices
/// never collide until the whole space (3 flat-cost tables × 63 scales
/// = 189 keys) wraps. `scale` skips 16 — the CI boot default, whose
/// keys the background mix already caches — and `sci_n` stays at the
/// server default so no scientific-kernel trace is ever recorded. Each
/// caller lane strides by the connection count, keeping indices
/// globally unique across threads.
fn miss_target(idx: u64) -> String {
    let table = MISS_TABLES[usize::try_from(idx % 3).expect("mod 3 fits usize")];
    // Query values match the server's clamp range (1..=64), so every
    // combination is a distinct canonical cache/store key.
    let mut scale = 1 + (idx / 3) % 63;
    if scale >= 16 {
        scale += 1;
    }
    format!("/v1/table/{table}?scale={scale}")
}

/// How the server's `x-memo-cache` header classified one response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheClass {
    /// `x-memo-cache: hit` — served from the in-memory result cache.
    Memory,
    /// `x-memo-cache: disk` — loaded from the persistent store.
    Disk,
    /// Any other `x-memo-cache` value — computed fresh.
    Miss,
    /// No header: the endpoint is not cacheable (healthz, metrics, …).
    Uncached,
}

impl CacheClass {
    fn from_header(value: &str) -> CacheClass {
        match value {
            "hit" => CacheClass::Memory,
            "disk" => CacheClass::Disk,
            _ => CacheClass::Miss,
        }
    }
}

/// Everything the load loop needs from one response, distilled from the
/// shared [`http::read_response`] parser.
struct Observed {
    status: u16,
    cache: CacheClass,
    /// `x-memo-node`: which fleet member answered (cluster mode).
    node: Option<String>,
    /// `x-memo-ring-gen`: the router's routing-table generation; a
    /// change between responses on one lane is a rebalance event.
    ring_gen: Option<u64>,
    /// `Retry-After` seconds, present on shed 503s.
    retry_after: Option<u64>,
    keep_alive: bool,
}

/// Read exactly one response off `stream` and distill it.
fn observe_response(stream: &mut TcpStream, scratch: &mut Vec<u8>) -> io::Result<Observed> {
    let resp = http::read_response(stream, scratch)?;
    Ok(Observed {
        status: resp.status,
        cache: resp
            .header("x-memo-cache")
            .map_or(CacheClass::Uncached, CacheClass::from_header),
        node: resp.header("x-memo-node").map(str::to_string),
        ring_gen: resp.header("x-memo-ring-gen").and_then(|v| v.parse().ok()),
        retry_after: resp.header("retry-after").and_then(|v| v.trim().parse().ok()),
        keep_alive: resp.keep_alive(),
    })
}

/// Per-backend-node tallies, keyed by the `x-memo-node` header value.
struct NodeTally {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

impl NodeTally {
    fn new() -> Self {
        NodeTally { requests: AtomicU64::new(0), errors: AtomicU64::new(0), latency: Histogram::new() }
    }
}

/// Get-or-insert a node's tally; each lane caches the `Arc` locally so
/// the registry lock is taken only the first time a lane sees a node.
fn node_tally(
    local: &mut HashMap<String, Arc<NodeTally>>,
    registry: &Mutex<HashMap<String, Arc<NodeTally>>>,
    node: &str,
) -> Arc<NodeTally> {
    if let Some(t) = local.get(node) {
        return Arc::clone(t);
    }
    let t = {
        let mut reg = registry.lock().expect("node registry");
        Arc::clone(reg.entry(node.to_string()).or_insert_with(|| Arc::new(NodeTally::new())))
    };
    local.insert(node.to_string(), Arc::clone(&t));
    t
}

/// Shared tallies across connection threads.
#[derive(Default)]
struct Tally {
    requests: AtomicU64,
    /// Transport/protocol failures plus 5xx other than backpressure.
    errors: AtomicU64,
    /// Connection-level failures only: write errors, EOF mid-response,
    /// protocol garbage. Disjoint from `other_5xx`.
    transport_errors: AtomicU64,
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    backpressure_503: AtomicU64,
    other_5xx: AtomicU64,
    cache_hits: AtomicU64,
    cache_disk_hits: AtomicU64,
    cache_misses: AtomicU64,
    reconnects: AtomicU64,
    /// Closed-loop lanes that slept out a shed 503's `Retry-After`
    /// instead of immediately re-dialing.
    retry_after_waits: AtomicU64,
    /// Routing-table generation changes observed mid-run (`x-memo-ring-gen`).
    rebalance_events: AtomicU64,
}

/// The final report, serialized into `BENCH_serve.json`.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests completed (a response was read).
    pub requests: u64,
    /// Transport/protocol failures plus non-backpressure 5xx.
    pub errors: u64,
    /// Transport/protocol failures alone (no HTTP response landed):
    /// write errors, EOF mid-response, unparseable bytes. The server
    /// shedding load with 503 is deliberately NOT in this bucket — see
    /// [`backpressure_503`](Self::backpressure_503).
    pub transport_errors: u64,
    /// 2xx responses.
    pub status_2xx: u64,
    /// 4xx responses.
    pub status_4xx: u64,
    /// 503s (shed load — expected under pressure, not an error).
    pub backpressure_503: u64,
    /// Other 5xx responses (these count as errors).
    pub other_5xx: u64,
    /// Responses tagged `x-memo-cache: hit` (in-memory warm).
    pub cache_hits: u64,
    /// Responses tagged `x-memo-cache: disk` (persistent-store warm).
    pub cache_disk_hits: u64,
    /// Responses tagged `x-memo-cache: miss`.
    pub cache_misses: u64,
    /// Connection re-establishments after transport errors.
    pub reconnects: u64,
    /// Shed 503s whose `Retry-After` a closed-loop lane slept out.
    pub retry_after_waits: u64,
    /// Cluster-mode extras; `None` outside `--cluster` runs.
    pub cluster: Option<ClusterReport>,
    /// Wall-clock seconds the run took.
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Latency of cache-miss (cold) artifact requests, microseconds.
    pub cold: LatencySummary,
    /// Latency of in-memory cache-hit (warm) artifact requests,
    /// microseconds.
    pub cached: LatencySummary,
    /// Latency of persistent-store hits (warm after a restart),
    /// microseconds.
    pub disk: LatencySummary,
    /// Latency of everything else (healthz/metrics/errors).
    pub uncached: LatencySummary,
}

/// One backend node's slice of a cluster-mode run, attributed via the
/// `x-memo-node` response header.
#[derive(Debug)]
pub struct NodeReport {
    /// The node's identity (`--node-id`).
    pub node: String,
    /// Responses this node answered.
    pub requests: u64,
    /// Non-backpressure 5xx among them.
    pub errors: u64,
    /// Latency of this node's responses, microseconds.
    pub latency: LatencySummary,
}

/// Cluster-mode extras: per-node attribution plus the router-side
/// totals the run provoked.
#[derive(Debug)]
pub struct ClusterReport {
    /// Per-node tallies, sorted by node name for stable output.
    pub per_node: Vec<NodeReport>,
    /// Routing-table generation changes observed mid-run.
    pub rebalance_events: u64,
    /// `memo_router_failovers_total` scraped from the router after the run.
    pub failovers: u64,
    /// `memo_router_read_repairs_total` scraped from the router after the run.
    pub read_repairs: u64,
}

/// Quantiles pulled from one histogram.
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Samples.
    pub count: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Largest sample, microseconds.
    pub max_us: u64,
    /// Mean, microseconds.
    pub mean_us: f64,
}

impl LatencySummary {
    fn from(h: &Histogram) -> Self {
        LatencySummary {
            count: h.count(),
            p50_us: h.quantile(0.50),
            p90_us: h.quantile(0.90),
            p99_us: h.quantile(0.99),
            max_us: h.max(),
            mean_us: h.mean(),
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"count\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"mean_us\": {:.1}}}",
            self.count, self.p50_us, self.p90_us, self.p99_us, self.max_us, self.mean_us
        )
    }
}

impl LoadReport {
    /// Render as JSON in the style of the repo's other BENCH artifacts.
    #[must_use]
    pub fn to_json(&self, config: &LoadConfig) -> String {
        let mode = match config.mode {
            Mode::Closed => "\"closed\"".to_string(),
            Mode::Open { rate } => format!("{{\"open_rate_per_conn\": {rate}}}"),
        };
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"memo_serve_load\",");
        let _ = writeln!(out, "  \"addr\": \"{}\",", config.addr);
        let _ = writeln!(out, "  \"connections\": {},", config.connections);
        let _ = writeln!(out, "  \"duration_s\": {:.1},", config.duration.as_secs_f64());
        let _ = writeln!(out, "  \"mode\": {mode},");
        let _ = writeln!(out, "  \"seed\": {},", config.seed);
        let _ = writeln!(out, "  \"store_miss_permille\": {},", config.store_miss_permille);
        let _ = writeln!(out, "  \"requests\": {},", self.requests);
        let _ = writeln!(out, "  \"errors\": {},", self.errors);
        let _ = writeln!(out, "  \"transport_errors\": {},", self.transport_errors);
        let _ = writeln!(out, "  \"status_2xx\": {},", self.status_2xx);
        let _ = writeln!(out, "  \"status_4xx\": {},", self.status_4xx);
        let _ = writeln!(out, "  \"backpressure_503\": {},", self.backpressure_503);
        let _ = writeln!(out, "  \"other_5xx\": {},", self.other_5xx);
        let _ = writeln!(out, "  \"cache_hits\": {},", self.cache_hits);
        let _ = writeln!(out, "  \"cache_disk_hits\": {},", self.cache_disk_hits);
        let _ = writeln!(out, "  \"cache_misses\": {},", self.cache_misses);
        let _ = writeln!(out, "  \"reconnects\": {},", self.reconnects);
        let _ = writeln!(out, "  \"retry_after_waits\": {},", self.retry_after_waits);
        let _ = writeln!(out, "  \"elapsed_secs\": {:.2},", self.elapsed_secs);
        let _ = writeln!(out, "  \"throughput_rps\": {:.1},", self.throughput_rps);
        if let Some(cluster) = &self.cluster {
            let _ = writeln!(out, "  \"cluster\": {{");
            let _ = writeln!(out, "    \"rebalance_events\": {},", cluster.rebalance_events);
            let _ = writeln!(out, "    \"failovers\": {},", cluster.failovers);
            let _ = writeln!(out, "    \"read_repairs\": {},", cluster.read_repairs);
            let _ = writeln!(out, "    \"per_node\": {{");
            for (i, n) in cluster.per_node.iter().enumerate() {
                let comma = if i + 1 < cluster.per_node.len() { "," } else { "" };
                let _ = writeln!(
                    out,
                    "      \"{}\": {{\"requests\": {}, \"errors\": {}, \"latency_us\": {}}}{comma}",
                    n.node,
                    n.requests,
                    n.errors,
                    n.latency.to_json()
                );
            }
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "  }},");
        }
        let _ = writeln!(out, "  \"latency_us\": {{");
        let _ = writeln!(out, "    \"cold\": {},", self.cold.to_json());
        let _ = writeln!(out, "    \"cached\": {},", self.cached.to_json());
        let _ = writeln!(out, "    \"disk\": {},", self.disk.to_json());
        let _ = writeln!(out, "    \"uncached\": {}", self.uncached.to_json());
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }

    /// One-paragraph human summary for stdout.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} requests in {:.1}s ({:.0} rps), {} errors ({} transport); \
             2xx={} 4xx={} shed-503={} other-5xx={}; \
             cache hits={} disk={} misses={}; \
             cold p50/p99 = {}/{} us, cached p50/p99 = {}/{} us, disk p50/p99 = {}/{} us",
            self.requests,
            self.elapsed_secs,
            self.throughput_rps,
            self.errors,
            self.transport_errors,
            self.status_2xx,
            self.status_4xx,
            self.backpressure_503,
            self.other_5xx,
            self.cache_hits,
            self.cache_disk_hits,
            self.cache_misses,
            self.cold.p50_us,
            self.cold.p99_us,
            self.cached.p50_us,
            self.cached.p99_us,
            self.disk.p50_us,
            self.disk.p99_us,
        );
        if let Some(cluster) = &self.cluster {
            let nodes = cluster
                .per_node
                .iter()
                .map(|n| format!("{}={}", n.node, n.requests))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = write!(
                line,
                "; cluster: nodes [{nodes}], rebalances={}, failovers={}, read-repairs={}",
                cluster.rebalance_events, cluster.failovers, cluster.read_repairs,
            );
        }
        line
    }
}

fn connect(addr: &str) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    Ok(stream)
}

/// Scrape the router's failover and read-repair totals off its
/// `/metrics` endpoint after a cluster-mode run.
fn scrape_router_counters(addr: &str) -> (u64, u64) {
    let grab = |text: &str, name: &str| {
        text.lines()
            .find_map(|l| l.strip_prefix(name)?.trim().parse::<u64>().ok())
            .unwrap_or(0)
    };
    let Ok(mut stream) = connect(addr) else { return (0, 0) };
    let req = b"GET /metrics HTTP/1.1\r\nhost: memo-load\r\nconnection: close\r\n\r\n";
    if stream.write_all(req).is_err() {
        return (0, 0);
    }
    let mut scratch = Vec::with_capacity(8192);
    let Ok(resp) = http::read_response(&mut stream, &mut scratch) else { return (0, 0) };
    let text = String::from_utf8_lossy(&resp.body);
    (
        grab(&text, "memo_router_failovers_total "),
        grab(&text, "memo_router_read_repairs_total "),
    )
}

/// Run the load according to `config` and collect the report.
#[must_use]
pub fn run(config: &LoadConfig) -> LoadReport {
    let tally = Arc::new(Tally::default());
    let cold = Arc::new(Histogram::new());
    let cached = Arc::new(Histogram::new());
    let disk = Arc::new(Histogram::new());
    let uncached = Arc::new(Histogram::new());
    let nodes: Arc<Mutex<HashMap<String, Arc<NodeTally>>>> = Arc::new(Mutex::new(HashMap::new()));
    let started = Instant::now();
    let deadline = started + config.duration;

    let root = SplitMix64::new(config.seed);
    let lanes = config.connections.max(1) as u64;
    let miss_permille = u64::from(config.store_miss_permille.min(1000));
    let handles: Vec<_> = (0..config.connections.max(1))
        .map(|conn_id| {
            let addr = config.addr.clone();
            let mode = config.mode;
            let lane = conn_id as u64;
            let mut rng = root.split(&format!("conn-{conn_id}"));
            let tally = Arc::clone(&tally);
            let cold = Arc::clone(&cold);
            let cached = Arc::clone(&cached);
            let disk = Arc::clone(&disk);
            let uncached = Arc::clone(&uncached);
            let nodes = Arc::clone(&nodes);
            thread::spawn(move || {
                let mut stream = None;
                let mut scratch = Vec::with_capacity(8192);
                let mut local_nodes: HashMap<String, Arc<NodeTally>> = HashMap::new();
                let mut last_ring_gen: Option<u64> = None;
                // Strided per-lane counter: lane, lane+lanes, lane+2·lanes, …
                // — globally unique miss indices without cross-thread state.
                let mut miss_seq = 0u64;
                let gap = match mode {
                    Mode::Closed => Duration::ZERO,
                    Mode::Open { rate } => Duration::from_secs(1) / rate.max(1),
                };
                let mut next_send = Instant::now();
                while Instant::now() < deadline {
                    if gap > Duration::ZERO {
                        let now = Instant::now();
                        if next_send > now {
                            thread::sleep((next_send - now).min(Duration::from_millis(50)));
                            continue;
                        }
                        next_send += gap;
                    }
                    let target = if miss_permille > 0 && rng.next_below(1000) < miss_permille {
                        let idx = miss_seq * lanes + lane;
                        miss_seq += 1;
                        miss_target(idx)
                    } else {
                        pick_target(&mut rng)
                    };
                    let s = match stream.take() {
                        Some(s) => s,
                        None => match connect(&addr) {
                            Ok(s) => s,
                            Err(_) => {
                                tally.reconnects.fetch_add(1, Ordering::Relaxed);
                                thread::sleep(Duration::from_millis(20));
                                continue;
                            }
                        },
                    };
                    let mut s = s;
                    let raw = format!("GET {target} HTTP/1.1\r\nhost: memo-serve\r\n\r\n");
                    let send = Instant::now();
                    if s.write_all(raw.as_bytes()).is_err() {
                        tally.errors.fetch_add(1, Ordering::Relaxed);
                        tally.transport_errors.fetch_add(1, Ordering::Relaxed);
                        tally.reconnects.fetch_add(1, Ordering::Relaxed);
                        continue; // stream dropped; reconnect next round
                    }
                    match observe_response(&mut s, &mut scratch) {
                        Ok(resp) => {
                            let micros =
                                u64::try_from(send.elapsed().as_micros()).unwrap_or(u64::MAX);
                            tally.requests.fetch_add(1, Ordering::Relaxed);
                            match resp.status {
                                200..=299 => tally.status_2xx.fetch_add(1, Ordering::Relaxed),
                                400..=499 => tally.status_4xx.fetch_add(1, Ordering::Relaxed),
                                503 => tally.backpressure_503.fetch_add(1, Ordering::Relaxed),
                                _ => {
                                    tally.other_5xx.fetch_add(1, Ordering::Relaxed);
                                    tally.errors.fetch_add(1, Ordering::Relaxed)
                                }
                            };
                            match resp.cache {
                                CacheClass::Memory => {
                                    tally.cache_hits.fetch_add(1, Ordering::Relaxed);
                                    cached.record(micros);
                                }
                                CacheClass::Disk => {
                                    tally.cache_disk_hits.fetch_add(1, Ordering::Relaxed);
                                    disk.record(micros);
                                }
                                CacheClass::Miss => {
                                    tally.cache_misses.fetch_add(1, Ordering::Relaxed);
                                    cold.record(micros);
                                }
                                CacheClass::Uncached => uncached.record(micros),
                            }
                            if let Some(node) = resp.node.as_deref() {
                                let nt = node_tally(&mut local_nodes, &nodes, node);
                                nt.requests.fetch_add(1, Ordering::Relaxed);
                                if resp.status >= 500 && resp.status != 503 {
                                    nt.errors.fetch_add(1, Ordering::Relaxed);
                                }
                                nt.latency.record(micros);
                            }
                            if let Some(gen) = resp.ring_gen {
                                if last_ring_gen.is_some_and(|last| last != gen) {
                                    tally.rebalance_events.fetch_add(1, Ordering::Relaxed);
                                }
                                last_ring_gen = Some(gen);
                            }
                            if resp.status == 503 {
                                // Shed: back off for as long as the server
                                // asked (closed loop), instead of turning
                                // a backpressure storm into a re-dial
                                // storm. Open loop keeps its fixed pacing;
                                // the shed socket is dropped either way.
                                let backoff = match (mode, resp.retry_after) {
                                    (Mode::Closed, Some(secs)) => {
                                        tally.retry_after_waits.fetch_add(1, Ordering::Relaxed);
                                        Duration::from_secs(secs).min(Duration::from_secs(2))
                                    }
                                    _ => Duration::from_millis(10),
                                };
                                let now = Instant::now();
                                if now < deadline {
                                    thread::sleep(backoff.min(deadline - now));
                                }
                            } else if resp.keep_alive {
                                stream = Some(s);
                            }
                        }
                        Err(_) => {
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                            tally.transport_errors.fetch_add(1, Ordering::Relaxed);
                            tally.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }

    let elapsed = started.elapsed().as_secs_f64();
    let requests = tally.requests.load(Ordering::Relaxed);
    #[allow(clippy::cast_precision_loss)]
    let throughput = if elapsed > 0.0 { requests as f64 / elapsed } else { 0.0 };
    let cluster = config.cluster.then(|| {
        let (failovers, read_repairs) = scrape_router_counters(&config.addr);
        let mut per_node: Vec<NodeReport> = nodes
            .lock()
            .expect("node registry")
            .iter()
            .map(|(node, t)| NodeReport {
                node: node.clone(),
                requests: t.requests.load(Ordering::Relaxed),
                errors: t.errors.load(Ordering::Relaxed),
                latency: LatencySummary::from(&t.latency),
            })
            .collect();
        per_node.sort_by(|a, b| a.node.cmp(&b.node));
        ClusterReport {
            per_node,
            rebalance_events: tally.rebalance_events.load(Ordering::Relaxed),
            failovers,
            read_repairs,
        }
    });
    LoadReport {
        requests,
        errors: tally.errors.load(Ordering::Relaxed),
        transport_errors: tally.transport_errors.load(Ordering::Relaxed),
        status_2xx: tally.status_2xx.load(Ordering::Relaxed),
        status_4xx: tally.status_4xx.load(Ordering::Relaxed),
        backpressure_503: tally.backpressure_503.load(Ordering::Relaxed),
        other_5xx: tally.other_5xx.load(Ordering::Relaxed),
        cache_hits: tally.cache_hits.load(Ordering::Relaxed),
        cache_disk_hits: tally.cache_disk_hits.load(Ordering::Relaxed),
        cache_misses: tally.cache_misses.load(Ordering::Relaxed),
        reconnects: tally.reconnects.load(Ordering::Relaxed),
        retry_after_waits: tally.retry_after_waits.load(Ordering::Relaxed),
        cluster,
        elapsed_secs: elapsed,
        throughput_rps: throughput,
        cold: LatencySummary::from(&cold),
        cached: LatencySummary::from(&cached),
        disk: LatencySummary::from(&disk),
        uncached: LatencySummary::from(&uncached),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_mix_is_deterministic_per_seed() {
        let a: Vec<String> = {
            let mut rng = SplitMix64::new(7).split("conn-0");
            (0..50).map(|_| pick_target(&mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = SplitMix64::new(7).split("conn-0");
            (0..50).map(|_| pick_target(&mut rng)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<String> = {
            let mut rng = SplitMix64::new(8).split("conn-0");
            (0..50).map(|_| pick_target(&mut rng)).collect()
        };
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn request_mix_targets_are_valid_routes() {
        let mut rng = SplitMix64::new(3).split("conn-1");
        for _ in 0..500 {
            let t = pick_target(&mut rng);
            assert!(
                t == "/healthz"
                    || t == "/metrics"
                    || t.starts_with("/v1/table/")
                    || t.starts_with("/v1/figure/")
                    || t.starts_with("/v1/sweep"),
                "unexpected target {t}"
            );
            if let Some(n) = t.strip_prefix("/v1/table/") {
                let n: usize = n.parse().unwrap();
                assert!((1..=13).contains(&n));
            }
            if let Some(n) = t.strip_prefix("/v1/figure/") {
                let n: usize = n.parse().unwrap();
                assert!((2..=4).contains(&n));
            }
        }
    }

    #[test]
    fn miss_targets_are_unique_and_valid_until_the_space_wraps() {
        let space = 3 * 63;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..space {
            let t = miss_target(idx);
            assert!(seen.insert(t.clone()), "duplicate miss target {t} at idx {idx}");
            let rest = t.strip_prefix("/v1/table/").expect("table route");
            let (table, query) = rest.split_once('?').expect("query string");
            let table: u64 = table.parse().unwrap();
            assert!(MISS_TABLES.contains(&table), "table {table} is not trace-free");
            let scale: u64 = query.strip_prefix("scale=").unwrap().parse().unwrap();
            // Inside the server's clamp range, so the key the server
            // canonicalizes is exactly the one we asked for — but never
            // the boot default 16, whose key the warm mix owns.
            assert!((1..=64).contains(&scale));
            assert_ne!(scale, 16, "boot-default scale would collide with the warm mix");
        }
        // The walk is a cycle: the next index revisits the first key.
        assert_eq!(miss_target(space), miss_target(0));
    }

    #[test]
    fn strided_lanes_never_collide_on_miss_indices() {
        let lanes = 4u64;
        let mut seen = std::collections::HashSet::new();
        for lane in 0..lanes {
            for seq in 0..100u64 {
                assert!(seen.insert(seq * lanes + lane));
            }
        }
    }

    #[test]
    fn report_json_is_structurally_sound() {
        let report = LoadReport {
            requests: 10,
            errors: 0,
            transport_errors: 0,
            status_2xx: 10,
            status_4xx: 0,
            backpressure_503: 0,
            other_5xx: 0,
            cache_hits: 3,
            cache_disk_hits: 1,
            cache_misses: 6,
            reconnects: 0,
            retry_after_waits: 2,
            cluster: None,
            elapsed_secs: 1.5,
            throughput_rps: 6.7,
            cold: LatencySummary { count: 6, p50_us: 100, p90_us: 200, p99_us: 300, max_us: 400, mean_us: 150.0 },
            cached: LatencySummary { count: 3, p50_us: 10, p90_us: 20, p99_us: 30, max_us: 40, mean_us: 15.0 },
            disk: LatencySummary { count: 1, p50_us: 55, p90_us: 55, p99_us: 55, max_us: 55, mean_us: 55.0 },
            uncached: LatencySummary { count: 0, p50_us: 0, p90_us: 0, p99_us: 0, max_us: 0, mean_us: 0.0 },
        };
        let json = report.to_json(&LoadConfig::default());
        assert!(json.contains("\"bench\": \"memo_serve_load\""));
        assert!(json.contains("\"store_miss_permille\": 0"));
        assert!(json.contains("\"transport_errors\": 0"));
        assert!(json.contains("\"retry_after_waits\": 2"));
        assert!(json.contains("\"cache_hits\": 3"));
        assert!(json.contains("\"cache_disk_hits\": 1"));
        assert!(json.contains("\"disk\": {\"count\": 1"));
        assert!(json.contains("\"p99_us\": 300"));
        assert!(!json.contains("\"cluster\""), "no cluster block outside cluster mode");
        // Balanced braces — cheap structural sanity without a parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(report.summary().contains("10 requests"));
        assert!(report.summary().contains("disk=1"));
    }

    #[test]
    fn cluster_report_renders_per_node_and_counters() {
        let mut report = LoadReport {
            requests: 4,
            errors: 0,
            transport_errors: 0,
            status_2xx: 4,
            status_4xx: 0,
            backpressure_503: 0,
            other_5xx: 0,
            cache_hits: 4,
            cache_disk_hits: 0,
            cache_misses: 0,
            reconnects: 0,
            retry_after_waits: 0,
            cluster: None,
            elapsed_secs: 1.0,
            throughput_rps: 4.0,
            cold: LatencySummary { count: 0, p50_us: 0, p90_us: 0, p99_us: 0, max_us: 0, mean_us: 0.0 },
            cached: LatencySummary { count: 4, p50_us: 10, p90_us: 20, p99_us: 30, max_us: 40, mean_us: 15.0 },
            disk: LatencySummary { count: 0, p50_us: 0, p90_us: 0, p99_us: 0, max_us: 0, mean_us: 0.0 },
            uncached: LatencySummary { count: 0, p50_us: 0, p90_us: 0, p99_us: 0, max_us: 0, mean_us: 0.0 },
        };
        report.cluster = Some(ClusterReport {
            per_node: vec![
                NodeReport {
                    node: "n1".to_string(),
                    requests: 3,
                    errors: 0,
                    latency: LatencySummary { count: 3, p50_us: 10, p90_us: 20, p99_us: 30, max_us: 40, mean_us: 15.0 },
                },
                NodeReport {
                    node: "n2".to_string(),
                    requests: 1,
                    errors: 0,
                    latency: LatencySummary { count: 1, p50_us: 9, p90_us: 9, p99_us: 9, max_us: 9, mean_us: 9.0 },
                },
            ],
            rebalance_events: 1,
            failovers: 2,
            read_repairs: 5,
        });
        let json = report.to_json(&LoadConfig { cluster: true, ..LoadConfig::default() });
        assert!(json.contains("\"rebalance_events\": 1"));
        assert!(json.contains("\"failovers\": 2"));
        assert!(json.contains("\"read_repairs\": 5"));
        assert!(json.contains("\"n1\": {\"requests\": 3"));
        assert!(json.contains("\"n2\": {\"requests\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let s = report.summary();
        assert!(s.contains("n1=3"), "{s}");
        assert!(s.contains("failovers=2"), "{s}");
    }

    #[test]
    fn cache_header_values_classify_three_ways() {
        assert_eq!(CacheClass::from_header("hit"), CacheClass::Memory);
        assert_eq!(CacheClass::from_header("disk"), CacheClass::Disk);
        assert_eq!(CacheClass::from_header("miss"), CacheClass::Miss);
        assert_eq!(CacheClass::from_header("anything-else"), CacheClass::Miss);
    }
}

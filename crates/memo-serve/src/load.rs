//! A deterministic load generator for the memo-serve endpoint space.
//!
//! N connection threads replay a weighted request mix drawn from a
//! [`SplitMix64`] stream (seeded, split per connection — two runs with
//! the same seed issue the same requests), in closed-loop (next request
//! after the previous response) or open-loop (fixed per-connection
//! request rate) mode. Latencies land in cold/warm/disk histograms keyed
//! off the server's `x-memo-cache` header (`miss`, `hit`, `disk`), and
//! the summary is written as `BENCH_serve.json` next to the bench
//! artifacts the repo already produces.

use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use memo_table::rng::SplitMix64;

use crate::hist::Histogram;

/// Open vs closed loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Issue the next request as soon as the previous response lands.
    Closed,
    /// Issue requests at a fixed per-connection rate (per second),
    /// sleeping between sends; measures latency under a set demand.
    Open {
        /// Requests per second per connection.
        rate: u32,
    },
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7070`.
    pub addr: String,
    /// Concurrent connections (threads).
    pub connections: usize,
    /// How long to run.
    pub duration: Duration,
    /// Open or closed loop.
    pub mode: Mode,
    /// PRNG seed; same seed → same request sequence.
    pub seed: u64,
    /// Per-mille of requests redirected to deterministic never-cached
    /// artifact keys (cheap trace-free tables at off-default `scale`
    /// values the warm mix never requests). `0` disables; `300` makes
    /// ~30% of the mix guaranteed store misses, exercising the
    /// bloom-filter path.
    pub store_miss_permille: u32,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7070".to_string(),
            connections: 32,
            duration: Duration::from_secs(15),
            mode: Mode::Closed,
            seed: 1998, // the paper's year
            store_miss_permille: 0,
        }
    }
}

/// The weighted request mix. Tables dominate (they are the paper's
/// artifacts), a hot table gives the cache an easy win, sweeps exercise
/// the fused replay path, and healthz/metrics model probes.
fn pick_target(rng: &mut SplitMix64) -> String {
    let roll = rng.next_below(100);
    match roll {
        // 35%: a uniformly random table.
        0..=34 => format!("/v1/table/{}", 1 + rng.next_below(13)),
        // 10%: the hot table — repeated key, guaranteed cache traffic.
        35..=44 => "/v1/table/1".to_string(),
        // 15%: a figure.
        45..=59 => format!("/v1/figure/{}", 2 + rng.next_below(3)),
        // 20%: one of a few canned sweeps.
        60..=79 => match rng.next_below(3) {
            0 => "/v1/sweep?entries=8,16,32".to_string(),
            1 => "/v1/sweep?ways=1,2,4".to_string(),
            _ => "/v1/sweep".to_string(),
        },
        // 10%: health probe.
        80..=89 => "/healthz".to_string(),
        // 10%: metrics scrape.
        _ => "/metrics".to_string(),
    }
}

/// Tables whose render cost is flat (sub-100 ms) across the whole
/// `scale` range, measured table-first on a fresh process so no other
/// request could have pre-warmed shared state. The walk must stay on
/// these: every other table touches per-scale kernel state whose first
/// computation explodes somewhere in the range — re-recorded traces
/// cost tens of seconds of CPU and up to a gigabyte of archive pushed
/// through the store per key (table 7), and the small-`scale` end
/// takes minutes outright (tables 12 and 13 at `scale≤2`). Either
/// failure pins a worker past the client timeout and stalls everyone
/// else behind the flush queue. A load knob that is meant to probe the
/// store's negative path must not *write* the store into the ground.
const MISS_TABLES: [u64; 3] = [1, 2, 3];

/// The `idx`-th never-cached artifact target: a counter walk through the
/// `(table, scale)` space in mixed-radix order, so consecutive indices
/// never collide until the whole space (3 flat-cost tables × 63 scales
/// = 189 keys) wraps. `scale` skips 16 — the CI boot default, whose
/// keys the background mix already caches — and `sci_n` stays at the
/// server default so no scientific-kernel trace is ever recorded. Each
/// caller lane strides by the connection count, keeping indices
/// globally unique across threads.
fn miss_target(idx: u64) -> String {
    let table = MISS_TABLES[usize::try_from(idx % 3).expect("mod 3 fits usize")];
    // Query values match the server's clamp range (1..=64), so every
    // combination is a distinct canonical cache/store key.
    let mut scale = 1 + (idx / 3) % 63;
    if scale >= 16 {
        scale += 1;
    }
    format!("/v1/table/{table}?scale={scale}")
}

/// How the server's `x-memo-cache` header classified one response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheClass {
    /// `x-memo-cache: hit` — served from the in-memory result cache.
    Memory,
    /// `x-memo-cache: disk` — loaded from the persistent store.
    Disk,
    /// Any other `x-memo-cache` value — computed fresh.
    Miss,
    /// No header: the endpoint is not cacheable (healthz, metrics, …).
    Uncached,
}

impl CacheClass {
    fn from_header(value: &str) -> CacheClass {
        match value {
            "hit" => CacheClass::Memory,
            "disk" => CacheClass::Disk,
            _ => CacheClass::Miss,
        }
    }
}

/// One parsed (enough) HTTP response.
struct MiniResponse {
    status: u16,
    cache: CacheClass,
}

/// Read exactly one response off `stream`: status line, headers,
/// `content-length` body. Returns `Err` on protocol surprises.
fn read_response(stream: &mut TcpStream, scratch: &mut Vec<u8>) -> io::Result<MiniResponse> {
    scratch.clear();
    let mut chunk = [0u8; 4096];
    // Read until the full header block is present.
    let header_end = loop {
        if let Some(pos) = scratch.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in headers"));
        }
        scratch.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&scratch[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    let mut cache = CacheClass::Uncached;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
            }
            "x-memo-cache" => cache = CacheClass::from_header(value),
            _ => {}
        }
    }
    // Drain the body.
    let mut remaining = (header_end + 4 + content_length).saturating_sub(scratch.len());
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        let n = stream.read(&mut chunk[..take])?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in body"));
        }
        remaining -= n;
    }
    Ok(MiniResponse { status, cache })
}

/// Shared tallies across connection threads.
#[derive(Default)]
struct Tally {
    requests: AtomicU64,
    /// Transport/protocol failures plus 5xx other than backpressure.
    errors: AtomicU64,
    /// Connection-level failures only: write errors, EOF mid-response,
    /// protocol garbage. Disjoint from `other_5xx`.
    transport_errors: AtomicU64,
    status_2xx: AtomicU64,
    status_4xx: AtomicU64,
    backpressure_503: AtomicU64,
    other_5xx: AtomicU64,
    cache_hits: AtomicU64,
    cache_disk_hits: AtomicU64,
    cache_misses: AtomicU64,
    reconnects: AtomicU64,
}

/// The final report, serialized into `BENCH_serve.json`.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests completed (a response was read).
    pub requests: u64,
    /// Transport/protocol failures plus non-backpressure 5xx.
    pub errors: u64,
    /// Transport/protocol failures alone (no HTTP response landed):
    /// write errors, EOF mid-response, unparseable bytes. The server
    /// shedding load with 503 is deliberately NOT in this bucket — see
    /// [`backpressure_503`](Self::backpressure_503).
    pub transport_errors: u64,
    /// 2xx responses.
    pub status_2xx: u64,
    /// 4xx responses.
    pub status_4xx: u64,
    /// 503s (shed load — expected under pressure, not an error).
    pub backpressure_503: u64,
    /// Other 5xx responses (these count as errors).
    pub other_5xx: u64,
    /// Responses tagged `x-memo-cache: hit` (in-memory warm).
    pub cache_hits: u64,
    /// Responses tagged `x-memo-cache: disk` (persistent-store warm).
    pub cache_disk_hits: u64,
    /// Responses tagged `x-memo-cache: miss`.
    pub cache_misses: u64,
    /// Connection re-establishments after transport errors.
    pub reconnects: u64,
    /// Wall-clock seconds the run took.
    pub elapsed_secs: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Latency of cache-miss (cold) artifact requests, microseconds.
    pub cold: LatencySummary,
    /// Latency of in-memory cache-hit (warm) artifact requests,
    /// microseconds.
    pub cached: LatencySummary,
    /// Latency of persistent-store hits (warm after a restart),
    /// microseconds.
    pub disk: LatencySummary,
    /// Latency of everything else (healthz/metrics/errors).
    pub uncached: LatencySummary,
}

/// Quantiles pulled from one histogram.
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Samples.
    pub count: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Largest sample, microseconds.
    pub max_us: u64,
    /// Mean, microseconds.
    pub mean_us: f64,
}

impl LatencySummary {
    fn from(h: &Histogram) -> Self {
        LatencySummary {
            count: h.count(),
            p50_us: h.quantile(0.50),
            p90_us: h.quantile(0.90),
            p99_us: h.quantile(0.99),
            max_us: h.max(),
            mean_us: h.mean(),
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"count\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"mean_us\": {:.1}}}",
            self.count, self.p50_us, self.p90_us, self.p99_us, self.max_us, self.mean_us
        )
    }
}

impl LoadReport {
    /// Render as JSON in the style of the repo's other BENCH artifacts.
    #[must_use]
    pub fn to_json(&self, config: &LoadConfig) -> String {
        let mode = match config.mode {
            Mode::Closed => "\"closed\"".to_string(),
            Mode::Open { rate } => format!("{{\"open_rate_per_conn\": {rate}}}"),
        };
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"memo_serve_load\",");
        let _ = writeln!(out, "  \"addr\": \"{}\",", config.addr);
        let _ = writeln!(out, "  \"connections\": {},", config.connections);
        let _ = writeln!(out, "  \"duration_s\": {:.1},", config.duration.as_secs_f64());
        let _ = writeln!(out, "  \"mode\": {mode},");
        let _ = writeln!(out, "  \"seed\": {},", config.seed);
        let _ = writeln!(out, "  \"store_miss_permille\": {},", config.store_miss_permille);
        let _ = writeln!(out, "  \"requests\": {},", self.requests);
        let _ = writeln!(out, "  \"errors\": {},", self.errors);
        let _ = writeln!(out, "  \"transport_errors\": {},", self.transport_errors);
        let _ = writeln!(out, "  \"status_2xx\": {},", self.status_2xx);
        let _ = writeln!(out, "  \"status_4xx\": {},", self.status_4xx);
        let _ = writeln!(out, "  \"backpressure_503\": {},", self.backpressure_503);
        let _ = writeln!(out, "  \"other_5xx\": {},", self.other_5xx);
        let _ = writeln!(out, "  \"cache_hits\": {},", self.cache_hits);
        let _ = writeln!(out, "  \"cache_disk_hits\": {},", self.cache_disk_hits);
        let _ = writeln!(out, "  \"cache_misses\": {},", self.cache_misses);
        let _ = writeln!(out, "  \"reconnects\": {},", self.reconnects);
        let _ = writeln!(out, "  \"elapsed_secs\": {:.2},", self.elapsed_secs);
        let _ = writeln!(out, "  \"throughput_rps\": {:.1},", self.throughput_rps);
        let _ = writeln!(out, "  \"latency_us\": {{");
        let _ = writeln!(out, "    \"cold\": {},", self.cold.to_json());
        let _ = writeln!(out, "    \"cached\": {},", self.cached.to_json());
        let _ = writeln!(out, "    \"disk\": {},", self.disk.to_json());
        let _ = writeln!(out, "    \"uncached\": {}", self.uncached.to_json());
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }

    /// One-paragraph human summary for stdout.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} requests in {:.1}s ({:.0} rps), {} errors ({} transport); \
             2xx={} 4xx={} shed-503={} other-5xx={}; \
             cache hits={} disk={} misses={}; \
             cold p50/p99 = {}/{} us, cached p50/p99 = {}/{} us, disk p50/p99 = {}/{} us",
            self.requests,
            self.elapsed_secs,
            self.throughput_rps,
            self.errors,
            self.transport_errors,
            self.status_2xx,
            self.status_4xx,
            self.backpressure_503,
            self.other_5xx,
            self.cache_hits,
            self.cache_disk_hits,
            self.cache_misses,
            self.cold.p50_us,
            self.cold.p99_us,
            self.cached.p50_us,
            self.cached.p99_us,
            self.disk.p50_us,
            self.disk.p99_us,
        )
    }
}

fn connect(addr: &str) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    Ok(stream)
}

/// Run the load according to `config` and collect the report.
#[must_use]
pub fn run(config: &LoadConfig) -> LoadReport {
    let tally = Arc::new(Tally::default());
    let cold = Arc::new(Histogram::new());
    let cached = Arc::new(Histogram::new());
    let disk = Arc::new(Histogram::new());
    let uncached = Arc::new(Histogram::new());
    let started = Instant::now();
    let deadline = started + config.duration;

    let root = SplitMix64::new(config.seed);
    let lanes = config.connections.max(1) as u64;
    let miss_permille = u64::from(config.store_miss_permille.min(1000));
    let handles: Vec<_> = (0..config.connections.max(1))
        .map(|conn_id| {
            let addr = config.addr.clone();
            let mode = config.mode;
            let lane = conn_id as u64;
            let mut rng = root.split(&format!("conn-{conn_id}"));
            let tally = Arc::clone(&tally);
            let cold = Arc::clone(&cold);
            let cached = Arc::clone(&cached);
            let disk = Arc::clone(&disk);
            let uncached = Arc::clone(&uncached);
            thread::spawn(move || {
                let mut stream = None;
                let mut scratch = Vec::with_capacity(8192);
                // Strided per-lane counter: lane, lane+lanes, lane+2·lanes, …
                // — globally unique miss indices without cross-thread state.
                let mut miss_seq = 0u64;
                let gap = match mode {
                    Mode::Closed => Duration::ZERO,
                    Mode::Open { rate } => Duration::from_secs(1) / rate.max(1),
                };
                let mut next_send = Instant::now();
                while Instant::now() < deadline {
                    if gap > Duration::ZERO {
                        let now = Instant::now();
                        if next_send > now {
                            thread::sleep((next_send - now).min(Duration::from_millis(50)));
                            continue;
                        }
                        next_send += gap;
                    }
                    let target = if miss_permille > 0 && rng.next_below(1000) < miss_permille {
                        let idx = miss_seq * lanes + lane;
                        miss_seq += 1;
                        miss_target(idx)
                    } else {
                        pick_target(&mut rng)
                    };
                    let s = match stream.take() {
                        Some(s) => s,
                        None => match connect(&addr) {
                            Ok(s) => s,
                            Err(_) => {
                                tally.reconnects.fetch_add(1, Ordering::Relaxed);
                                thread::sleep(Duration::from_millis(20));
                                continue;
                            }
                        },
                    };
                    let mut s = s;
                    let raw = format!("GET {target} HTTP/1.1\r\nhost: memo-serve\r\n\r\n");
                    let send = Instant::now();
                    if s.write_all(raw.as_bytes()).is_err() {
                        tally.errors.fetch_add(1, Ordering::Relaxed);
                        tally.transport_errors.fetch_add(1, Ordering::Relaxed);
                        tally.reconnects.fetch_add(1, Ordering::Relaxed);
                        continue; // stream dropped; reconnect next round
                    }
                    match read_response(&mut s, &mut scratch) {
                        Ok(resp) => {
                            let micros =
                                u64::try_from(send.elapsed().as_micros()).unwrap_or(u64::MAX);
                            tally.requests.fetch_add(1, Ordering::Relaxed);
                            match resp.status {
                                200..=299 => tally.status_2xx.fetch_add(1, Ordering::Relaxed),
                                400..=499 => tally.status_4xx.fetch_add(1, Ordering::Relaxed),
                                503 => tally.backpressure_503.fetch_add(1, Ordering::Relaxed),
                                _ => {
                                    tally.other_5xx.fetch_add(1, Ordering::Relaxed);
                                    tally.errors.fetch_add(1, Ordering::Relaxed)
                                }
                            };
                            match resp.cache {
                                CacheClass::Memory => {
                                    tally.cache_hits.fetch_add(1, Ordering::Relaxed);
                                    cached.record(micros);
                                }
                                CacheClass::Disk => {
                                    tally.cache_disk_hits.fetch_add(1, Ordering::Relaxed);
                                    disk.record(micros);
                                }
                                CacheClass::Miss => {
                                    tally.cache_misses.fetch_add(1, Ordering::Relaxed);
                                    cold.record(micros);
                                }
                                CacheClass::Uncached => uncached.record(micros),
                            }
                            if resp.status == 503 {
                                // Shed: the server closed this socket.
                                thread::sleep(Duration::from_millis(10));
                            } else {
                                stream = Some(s);
                            }
                        }
                        Err(_) => {
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                            tally.transport_errors.fetch_add(1, Ordering::Relaxed);
                            tally.reconnects.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }

    let elapsed = started.elapsed().as_secs_f64();
    let requests = tally.requests.load(Ordering::Relaxed);
    #[allow(clippy::cast_precision_loss)]
    let throughput = if elapsed > 0.0 { requests as f64 / elapsed } else { 0.0 };
    LoadReport {
        requests,
        errors: tally.errors.load(Ordering::Relaxed),
        transport_errors: tally.transport_errors.load(Ordering::Relaxed),
        status_2xx: tally.status_2xx.load(Ordering::Relaxed),
        status_4xx: tally.status_4xx.load(Ordering::Relaxed),
        backpressure_503: tally.backpressure_503.load(Ordering::Relaxed),
        other_5xx: tally.other_5xx.load(Ordering::Relaxed),
        cache_hits: tally.cache_hits.load(Ordering::Relaxed),
        cache_disk_hits: tally.cache_disk_hits.load(Ordering::Relaxed),
        cache_misses: tally.cache_misses.load(Ordering::Relaxed),
        reconnects: tally.reconnects.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        throughput_rps: throughput,
        cold: LatencySummary::from(&cold),
        cached: LatencySummary::from(&cached),
        disk: LatencySummary::from(&disk),
        uncached: LatencySummary::from(&uncached),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_mix_is_deterministic_per_seed() {
        let a: Vec<String> = {
            let mut rng = SplitMix64::new(7).split("conn-0");
            (0..50).map(|_| pick_target(&mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = SplitMix64::new(7).split("conn-0");
            (0..50).map(|_| pick_target(&mut rng)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<String> = {
            let mut rng = SplitMix64::new(8).split("conn-0");
            (0..50).map(|_| pick_target(&mut rng)).collect()
        };
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn request_mix_targets_are_valid_routes() {
        let mut rng = SplitMix64::new(3).split("conn-1");
        for _ in 0..500 {
            let t = pick_target(&mut rng);
            assert!(
                t == "/healthz"
                    || t == "/metrics"
                    || t.starts_with("/v1/table/")
                    || t.starts_with("/v1/figure/")
                    || t.starts_with("/v1/sweep"),
                "unexpected target {t}"
            );
            if let Some(n) = t.strip_prefix("/v1/table/") {
                let n: usize = n.parse().unwrap();
                assert!((1..=13).contains(&n));
            }
            if let Some(n) = t.strip_prefix("/v1/figure/") {
                let n: usize = n.parse().unwrap();
                assert!((2..=4).contains(&n));
            }
        }
    }

    #[test]
    fn miss_targets_are_unique_and_valid_until_the_space_wraps() {
        let space = 3 * 63;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..space {
            let t = miss_target(idx);
            assert!(seen.insert(t.clone()), "duplicate miss target {t} at idx {idx}");
            let rest = t.strip_prefix("/v1/table/").expect("table route");
            let (table, query) = rest.split_once('?').expect("query string");
            let table: u64 = table.parse().unwrap();
            assert!(MISS_TABLES.contains(&table), "table {table} is not trace-free");
            let scale: u64 = query.strip_prefix("scale=").unwrap().parse().unwrap();
            // Inside the server's clamp range, so the key the server
            // canonicalizes is exactly the one we asked for — but never
            // the boot default 16, whose key the warm mix owns.
            assert!((1..=64).contains(&scale));
            assert_ne!(scale, 16, "boot-default scale would collide with the warm mix");
        }
        // The walk is a cycle: the next index revisits the first key.
        assert_eq!(miss_target(space), miss_target(0));
    }

    #[test]
    fn strided_lanes_never_collide_on_miss_indices() {
        let lanes = 4u64;
        let mut seen = std::collections::HashSet::new();
        for lane in 0..lanes {
            for seq in 0..100u64 {
                assert!(seen.insert(seq * lanes + lane));
            }
        }
    }

    #[test]
    fn report_json_is_structurally_sound() {
        let report = LoadReport {
            requests: 10,
            errors: 0,
            transport_errors: 0,
            status_2xx: 10,
            status_4xx: 0,
            backpressure_503: 0,
            other_5xx: 0,
            cache_hits: 3,
            cache_disk_hits: 1,
            cache_misses: 6,
            reconnects: 0,
            elapsed_secs: 1.5,
            throughput_rps: 6.7,
            cold: LatencySummary { count: 6, p50_us: 100, p90_us: 200, p99_us: 300, max_us: 400, mean_us: 150.0 },
            cached: LatencySummary { count: 3, p50_us: 10, p90_us: 20, p99_us: 30, max_us: 40, mean_us: 15.0 },
            disk: LatencySummary { count: 1, p50_us: 55, p90_us: 55, p99_us: 55, max_us: 55, mean_us: 55.0 },
            uncached: LatencySummary { count: 0, p50_us: 0, p90_us: 0, p99_us: 0, max_us: 0, mean_us: 0.0 },
        };
        let json = report.to_json(&LoadConfig::default());
        assert!(json.contains("\"bench\": \"memo_serve_load\""));
        assert!(json.contains("\"store_miss_permille\": 0"));
        assert!(json.contains("\"transport_errors\": 0"));
        assert!(json.contains("\"cache_hits\": 3"));
        assert!(json.contains("\"cache_disk_hits\": 1"));
        assert!(json.contains("\"disk\": {\"count\": 1"));
        assert!(json.contains("\"p99_us\": 300"));
        // Balanced braces — cheap structural sanity without a parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(report.summary().contains("10 requests"));
        assert!(report.summary().contains("disk=1"));
    }

    #[test]
    fn cache_header_values_classify_three_ways() {
        assert_eq!(CacheClass::from_header("hit"), CacheClass::Memory);
        assert_eq!(CacheClass::from_header("disk"), CacheClass::Disk);
        assert_eq!(CacheClass::from_header("miss"), CacheClass::Miss);
        assert_eq!(CacheClass::from_header("anything-else"), CacheClass::Miss);
    }
}

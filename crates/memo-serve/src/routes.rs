//! Request routing and the server-side result cache.
//!
//! Every artifact endpoint resolves through the same
//! `memo_experiments::runner` entry points the CLI binaries use, so the
//! HTTP bytes are the CLI bytes plus a trailing newline (the binaries
//! `println!`). Results are cached in a [`ShardedLru`] keyed by the
//! canonical `(experiment, config)` string, with single-flight dedup so
//! a thundering herd on a cold table computes it exactly once. With a
//! persistent store attached (`--store-dir`), a memory miss consults the
//! store before computing, and successful renders are written through —
//! a restarted server answers from disk (`x-memo-cache: disk`) without
//! re-running any experiment.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use memo_experiments::cache::{BreakerState, ShardedLru, TierBreaker, TierOutcome};
use memo_experiments::{runner, ExpConfig, ExperimentError};
use memo_store::{ResultBlob, RetryPolicy, Store};

use crate::http::{Request, Response};
use crate::metrics::{CacheOutcome, Endpoint, Metrics};

/// Shared state behind every worker.
pub struct AppState {
    /// Base experiment config (query params may override per request).
    pub cfg: ExpConfig,
    /// Rendered-result cache: canonical key → (status, body).
    pub cache: ShardedLru<String, (u16, String)>,
    /// The persistent tier behind the result cache, when configured.
    pub store: Option<Arc<Store>>,
    /// Circuit breaker guarding the persistent tier: after enough
    /// consecutive store failures the disk is skipped entirely and the
    /// server degrades to memory → compute until a probe succeeds.
    /// Shared (`Arc`) so the store's background-flush observer can feed
    /// flush failures into the same streak as foreground loads.
    pub disk_breaker: Arc<TierBreaker>,
    /// Retry policy for transient store errors (both loads and
    /// write-through persists).
    pub store_retry: RetryPolicy,
    /// Per-request time budget. A request still waiting past this is
    /// shed with 503 instead of stalling a worker.
    pub deadline: Duration,
    /// Service counters.
    pub metrics: Metrics,
    /// Set by `/quitquitquit` (and the server's shutdown path); the
    /// accept loop exits when it observes this.
    pub draining: AtomicBool,
    /// Worker count, reported in `/metrics`.
    pub workers: usize,
    /// Cluster identity: when set, every response carries an
    /// `x-memo-node` header naming this node, so the router tier and the
    /// load generator can attribute responses to fleet members.
    pub node_id: Option<String>,
}

impl AppState {
    /// State with `cache_capacity` cached renders across 8 shards.
    #[must_use]
    pub fn new(cfg: ExpConfig, cache_capacity: usize, workers: usize) -> Self {
        AppState {
            cfg,
            // Status line + body is what a cached render keeps alive.
            cache: ShardedLru::new(8, cache_capacity.max(8))
                .with_weigher(|(_, body): &(u16, String)| body.len() + std::mem::size_of::<u16>()),
            store: None,
            disk_breaker: Arc::new(TierBreaker::new(5, Duration::from_secs(2))),
            store_retry: RetryPolicy::default(),
            deadline: Duration::from_secs(30),
            metrics: Metrics::new(),
            draining: AtomicBool::new(false),
            workers,
            node_id: None,
        }
    }

    /// True once a drain has been requested.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Request a graceful drain.
    pub fn start_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }
}

/// Per-request experiment config: the base config with optional
/// `scale` / `sci_n` query overrides, clamped to sane ranges.
fn effective_cfg(base: ExpConfig, req: &Request) -> ExpConfig {
    let mut cfg = base;
    if let Some(v) = req.query_param("scale").and_then(|v| v.parse::<usize>().ok()) {
        cfg.image_scale = v.clamp(1, 64);
    }
    if let Some(v) = req.query_param("sci_n").and_then(|v| v.parse::<usize>().ok()) {
        cfg.sci_n = v.clamp(8, 64);
    }
    cfg
}

fn cfg_suffix(cfg: ExpConfig) -> String {
    format!("@scale={};sci_n={}", cfg.image_scale, cfg.sci_n)
}

/// How one artifact family maps URLs to `memo_experiments::runner`
/// entry points.
enum FamilyKind {
    /// `/v1/{kind}/{n}` — a numbered artifact within the family.
    Numbered(fn(usize, ExpConfig) -> Result<String, ExperimentError>),
    /// `/v1/{kind}` — the family renders as one whole artifact.
    Whole(fn(ExpConfig) -> Result<String, ExperimentError>),
    /// `/v1/{kind}?entries=..&ways=..` — axes canonicalized into the key.
    Swept,
}

/// One artifact family the server knows how to route and cache.
struct Family {
    /// URL segment and cache-key prefix (`/v1/{kind}`, `{kind}/…`).
    kind: &'static str,
    /// Metrics class this family's requests roll up under.
    endpoint: Endpoint,
    /// How requests resolve to a runner call.
    run: FamilyKind,
}

/// The endpoint → experiment registry. `cache_key` and the route
/// dispatch both iterate this table, so adding a family is one row
/// here — the URL, the canonical key shape, the metrics label, and the
/// cluster router's ring placement (which reuses `cache_key`) all
/// follow.
const FAMILIES: [Family; 4] = [
    Family { kind: "table", endpoint: Endpoint::Table, run: FamilyKind::Numbered(runner::table) },
    Family { kind: "figure", endpoint: Endpoint::Figure, run: FamilyKind::Numbered(runner::figure) },
    Family { kind: "sweep", endpoint: Endpoint::Sweep, run: FamilyKind::Swept },
    Family { kind: "region", endpoint: Endpoint::Region, run: FamilyKind::Whole(runner::region) },
];

/// The canonical cache key for an artifact request, or `None` when the
/// request does not address a cacheable artifact (health, metrics,
/// unknown routes, unparseable sweep axes).
///
/// This is THE key: the node's in-memory cache, its store write-through,
/// the replica-warm endpoint, and the cluster router's consistent-hash
/// placement all use these exact bytes, so a key hashes to the same ring
/// position no matter which tier computes it.
#[must_use]
pub fn cache_key(base: ExpConfig, req: &Request) -> Option<String> {
    let cfg = effective_cfg(base, req);
    for fam in &FAMILIES {
        match fam.run {
            FamilyKind::Numbered(_) => {
                if let Some(raw_n) = req.path.strip_prefix(&format!("/v1/{}/", fam.kind)) {
                    let n: usize = raw_n.parse().ok()?;
                    return Some(format!("{}/{n}{}", fam.kind, cfg_suffix(cfg)));
                }
            }
            FamilyKind::Whole(_) => {
                if req.path == format!("/v1/{}", fam.kind) {
                    return Some(format!("{}{}", fam.kind, cfg_suffix(cfg)));
                }
            }
            FamilyKind::Swept => {
                if req.path == format!("/v1/{}", fam.kind) {
                    let q = runner::SweepQuery::parse(
                        req.query_param("entries"),
                        req.query_param("ways"),
                    )
                    .ok()?;
                    return Some(format!("{}/{}{}", fam.kind, q.canonical(), cfg_suffix(cfg)));
                }
            }
        }
    }
    None
}

fn error_response(err: &ExperimentError) -> (u16, String) {
    let status = match err {
        ExperimentError::UnknownArtifact { .. } => 404,
        ExperimentError::InvalidSweep(_) => 400,
        _ => 500,
    };
    (status, format!("{err}\n"))
}

/// Adapt a runner result into the `(status, body)` a cache entry holds.
/// Bodies get the trailing newline the CLI's `println!` adds, so HTTP
/// bytes == CLI stdout bytes.
fn rendered(result: Result<String, ExperimentError>) -> (u16, String) {
    match result {
        Ok(body) => (200, format!("{body}\n")),
        Err(err) => error_response(&err),
    }
}

/// The store key a rendered artifact persists under.
fn store_key(key: &str) -> String {
    format!("results/{key}")
}

/// Resolve a cacheable artifact through the tiered result cache,
/// reporting which tier served this request: memory, the persistent
/// store, or a fresh computation. Only successful renders are written
/// through to the store — errors stay in memory so a transient failure
/// never becomes a persisted one.
///
/// The store sits behind [`AppState::disk_breaker`]: transient I/O
/// errors are retried per [`AppState::store_retry`], a persistent
/// failure streak trips the breaker and the server degrades to
/// memory → compute. A request that has already burned its deadline
/// budget is shed with 503 before any rendering starts.
fn cached_artifact(
    state: &AppState,
    key: String,
    deadline: Instant,
    compute: impl FnOnce() -> (u16, String),
) -> (u16, String, CacheOutcome) {
    if let Some(entry) = state.cache.peek(&key) {
        let (status, body) = entry.as_ref().clone();
        return (status, body, CacheOutcome::Hit);
    }
    if Instant::now() >= deadline {
        state.metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        return (
            503,
            "deadline exceeded before rendering began; retry\n".to_string(),
            CacheOutcome::Uncached,
        );
    }
    let (entry, tier) = state.cache.get_or_compute_tiered_guarded(
        &key,
        &state.disk_breaker,
        || {
            let Some(store) = state.store.as_ref() else { return Ok(None) };
            // Out of budget: skip the disk probe rather than spend what
            // little time remains on I/O that may block.
            if Instant::now() >= deadline {
                return Ok(None);
            }
            let (result, retries) =
                state.store_retry.run(|| store.get(store_key(&key).as_bytes()));
            state.metrics.store_retries.fetch_add(u64::from(retries), Ordering::Relaxed);
            match result {
                // A blob that fails to decode is a clean miss, not a tier
                // failure: the disk answered, the payload was stale junk.
                Ok(Some(bytes)) => Ok(ResultBlob::from_bytes(&bytes).ok().and_then(|blob| {
                    Some((blob.status, String::from_utf8(blob.body).ok()?))
                })),
                Ok(None) => Ok(None),
                Err(_) => {
                    state.metrics.store_io_errors.fetch_add(1, Ordering::Relaxed);
                    Err(())
                }
            }
        },
        |(status, body)| {
            let Some(store) = state.store.as_ref() else { return Ok(()) };
            if *status != 200 {
                return Ok(());
            }
            let blob = ResultBlob { status: *status, body: body.clone().into_bytes() };
            let (result, retries) =
                state.store_retry.run(|| store.put(store_key(&key).as_bytes(), &blob.to_bytes()));
            state.metrics.store_retries.fetch_add(u64::from(retries), Ordering::Relaxed);
            match result {
                Ok(()) => Ok(()),
                Err(_) => {
                    state.metrics.store_io_errors.fetch_add(1, Ordering::Relaxed);
                    Err(())
                }
            }
        },
        compute,
    );
    let outcome = match tier {
        TierOutcome::Memory => CacheOutcome::Hit,
        TierOutcome::Disk => CacheOutcome::Disk,
        TierOutcome::Computed => CacheOutcome::Miss,
    };
    let (status, body) = entry.as_ref().clone();
    (status, body, outcome)
}

/// The routing result: what to send, plus labels for metrics.
pub struct Routed {
    /// The response to serialize.
    pub response: Response,
    /// Which endpoint class handled it.
    pub endpoint: Endpoint,
    /// Whether the result cache served it.
    pub cache: CacheOutcome,
}

fn routed(response: Response, endpoint: Endpoint, cache: CacheOutcome) -> Routed {
    Routed { response, endpoint, cache }
}

/// Dispatch one parsed request. `queue_depth` is the current request
/// queue length, surfaced through `/metrics`. When the node has a
/// cluster identity ([`AppState::node_id`]) every response carries it in
/// an `x-memo-node` header.
#[must_use]
pub fn handle(state: &AppState, req: &Request, queue_depth: usize) -> Routed {
    let mut r = route(state, req, queue_depth);
    if let Some(id) = &state.node_id {
        r.response.headers.push(("x-memo-node".to_string(), id.clone()));
    }
    r
}

fn route(state: &AppState, req: &Request, queue_depth: usize) -> Routed {
    // The rendering budget starts ticking here; queue time is policed
    // separately by the worker before it parses the request.
    let deadline = Instant::now() + state.deadline;
    // The replica-warm endpoint is the one non-GET route: the router's
    // read-repair path POSTs rendered bytes at replicas.
    if req.method == "POST" && req.path == "/v1/warm" {
        return warm(state, req, deadline);
    }
    if req.method != "GET" && req.method != "HEAD" {
        return routed(
            Response::text(405, "only GET and HEAD are supported\n").with_header("allow", "GET, HEAD"),
            Endpoint::Other,
            CacheOutcome::Uncached,
        );
    }

    match req.path.as_str() {
        "/healthz" => {
            let body = if state.draining() {
                "draining\n"
            } else if state.disk_breaker.state() != BreakerState::Closed {
                // Serving continues (memory → compute) but the disk tier
                // is out: surface it without failing the health check.
                "degraded:disk-breaker-open\n"
            } else {
                "ok\n"
            };
            routed(Response::text(200, body), Endpoint::Healthz, CacheOutcome::Uncached)
        }
        "/metrics" => {
            let store_stats = state.store.as_ref().map(|s| s.stats());
            let text = state.metrics.render(
                queue_depth,
                state.workers,
                state.draining(),
                &state.cache.stats(),
                store_stats.as_ref(),
                &state.disk_breaker.stats(),
            );
            routed(Response::text(200, text), Endpoint::Metrics, CacheOutcome::Uncached)
        }
        "/quitquitquit" => {
            state.start_drain();
            routed(Response::text(200, "draining\n"), Endpoint::Other, CacheOutcome::Uncached)
        }
        path => {
            for fam in &FAMILIES {
                match fam.run {
                    FamilyKind::Numbered(run) => {
                        if let Some(n) = path.strip_prefix(&format!("/v1/{}/", fam.kind)) {
                            return artifact(state, req, deadline, fam.endpoint, fam.kind, n, run);
                        }
                    }
                    FamilyKind::Whole(run) => {
                        if path == format!("/v1/{}", fam.kind) {
                            return whole_artifact(state, req, deadline, fam.endpoint, fam.kind, run);
                        }
                    }
                    FamilyKind::Swept => {
                        if path == format!("/v1/{}", fam.kind) {
                            return swept_artifact(state, req, deadline, fam.endpoint, fam.kind);
                        }
                    }
                }
            }
            routed(
                Response::text(404, format!("no route for {path}\n")),
                Endpoint::Other,
                CacheOutcome::Uncached,
            )
        }
    }
}

/// `POST /v1/warm?key=<cache key>`: install rendered bytes into this
/// node's cache tiers without recomputing them. The cluster router's
/// read-repair path calls this on replicas after a primary served a key
/// from disk or compute, so a later failover finds the replica already
/// warm. Installation runs through the same tiered path as a served
/// request — memory insert plus breaker-guarded store write-through —
/// and a key the node already holds is left untouched (the resident
/// bytes win; they were rendered or repaired earlier).
fn warm(state: &AppState, req: &Request, deadline: Instant) -> Routed {
    let Some(key) = req.query_param("key").map(str::to_string).filter(|k| !k.is_empty()) else {
        return routed(
            Response::text(400, "warm requires a non-empty ?key= parameter\n"),
            Endpoint::Other,
            CacheOutcome::Uncached,
        );
    };
    let Ok(body) = String::from_utf8(req.body.clone()) else {
        return routed(
            Response::text(400, "warm body must be UTF-8\n"),
            Endpoint::Other,
            CacheOutcome::Uncached,
        );
    };
    if body.is_empty() {
        return routed(
            Response::text(400, "warm requires a non-empty body\n"),
            Endpoint::Other,
            CacheOutcome::Uncached,
        );
    }
    if state.cache.peek(&key).is_some() {
        return routed(
            Response::text(200, "already-warm\n").with_header("x-memo-warm", "memory"),
            Endpoint::Other,
            CacheOutcome::Hit,
        );
    }
    let (status, served, outcome) = cached_artifact(state, key, deadline, move || (200, body));
    if status != 200 {
        // Deadline shed (or a store-resident error blob): report it, do
        // not count a warm that never landed.
        return routed(Response::text(status, served), Endpoint::Other, CacheOutcome::Uncached);
    }
    state.metrics.warms.fetch_add(1, Ordering::Relaxed);
    let tier = match outcome {
        CacheOutcome::Hit => "memory",
        CacheOutcome::Disk => "disk",
        _ => "installed",
    };
    routed(
        Response::text(200, "warmed\n").with_header("x-memo-warm", tier),
        Endpoint::Other,
        outcome,
    )
}

fn cache_label(outcome: CacheOutcome) -> &'static str {
    match outcome {
        CacheOutcome::Hit => "hit",
        CacheOutcome::Disk => "disk",
        _ => "miss",
    }
}

fn artifact(
    state: &AppState,
    req: &Request,
    deadline: Instant,
    endpoint: Endpoint,
    kind: &'static str,
    raw_n: &str,
    run: fn(usize, ExpConfig) -> Result<String, ExperimentError>,
) -> Routed {
    let Ok(n) = raw_n.parse::<usize>() else {
        return routed(
            Response::text(404, format!("{kind} number must be an integer, got {raw_n:?}\n")),
            endpoint,
            CacheOutcome::Uncached,
        );
    };
    let cfg = effective_cfg(state.cfg, req);
    let key = format!("{kind}/{n}{}", cfg_suffix(cfg));
    let (status, body, outcome) = cached_artifact(state, key, deadline, || rendered(run(n, cfg)));
    routed(
        Response::text(status, body).with_header("x-memo-cache", cache_label(outcome)),
        endpoint,
        outcome,
    )
}

/// A whole-family artifact (`FamilyKind::Whole`): one render per
/// config, keyed `{kind}@scale=..;sci_n=..`.
fn whole_artifact(
    state: &AppState,
    req: &Request,
    deadline: Instant,
    endpoint: Endpoint,
    kind: &'static str,
    run: fn(ExpConfig) -> Result<String, ExperimentError>,
) -> Routed {
    let cfg = effective_cfg(state.cfg, req);
    let key = format!("{kind}{}", cfg_suffix(cfg));
    let (status, body, outcome) = cached_artifact(state, key, deadline, || rendered(run(cfg)));
    routed(
        Response::text(status, body).with_header("x-memo-cache", cache_label(outcome)),
        endpoint,
        outcome,
    )
}

/// The swept family (`FamilyKind::Swept`): axes parse and canonicalize
/// into the key, so `entries=16,8` and `entries=8,16` share a render.
fn swept_artifact(
    state: &AppState,
    req: &Request,
    deadline: Instant,
    endpoint: Endpoint,
    kind: &'static str,
) -> Routed {
    let cfg = effective_cfg(state.cfg, req);
    match runner::SweepQuery::parse(req.query_param("entries"), req.query_param("ways")) {
        Err(err) => {
            let (status, body) = error_response(&err);
            routed(Response::text(status, body), endpoint, CacheOutcome::Uncached)
        }
        Ok(q) => {
            let key = format!("{kind}/{}{}", q.canonical(), cfg_suffix(cfg));
            let (status, body, outcome) =
                cached_artifact(state, key, deadline, || rendered(runner::sweep(cfg, &q)));
            routed(
                Response::text(status, body).with_header("x-memo-cache", cache_label(outcome)),
                endpoint,
                outcome,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::parse_request;

    fn get(path: &str) -> Request {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        parse_request(raw.as_bytes()).unwrap().unwrap().0
    }

    fn state() -> AppState {
        AppState::new(ExpConfig::quick(), 64, 2)
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let s = state();
        let r = handle(&s, &get("/healthz"), 0);
        assert_eq!(r.response.status, 200);
        assert_eq!(r.response.body, b"ok\n");
        assert_eq!(r.endpoint, Endpoint::Healthz);

        let r = handle(&s, &get("/nope"), 0);
        assert_eq!(r.response.status, 404);
    }

    #[test]
    fn non_get_rejected() {
        let s = state();
        let raw = b"PUT /healthz HTTP/1.1\r\n\r\n";
        let req = parse_request(raw).unwrap().unwrap().0;
        let r = handle(&s, &req, 0);
        assert_eq!(r.response.status, 405);
    }

    #[test]
    fn table_matches_runner_bytes_and_caches() {
        let s = state();
        let direct = runner::table(1, ExpConfig::quick()).unwrap();
        let r = handle(&s, &get("/v1/table/1"), 0);
        assert_eq!(r.response.status, 200);
        assert_eq!(r.response.body, format!("{direct}\n").into_bytes());
        assert_eq!(r.cache, CacheOutcome::Miss);

        let r2 = handle(&s, &get("/v1/table/1"), 0);
        assert_eq!(r2.cache, CacheOutcome::Hit);
        assert_eq!(r2.response.body, r.response.body);
        assert!(r2.response.headers.iter().any(|(k, v)| k == "x-memo-cache" && v == "hit"));
    }

    #[test]
    fn unknown_table_is_404_and_bad_sweep_is_400() {
        let s = state();
        assert_eq!(handle(&s, &get("/v1/table/99"), 0).response.status, 404);
        assert_eq!(handle(&s, &get("/v1/table/abc"), 0).response.status, 404);
        assert_eq!(handle(&s, &get("/v1/sweep?entries=nope"), 0).response.status, 400);
        assert_eq!(handle(&s, &get("/v1/sweep?entries=8,16&ways=2,4"), 0).response.status, 400);
    }

    #[test]
    fn scale_override_changes_the_cache_key() {
        let s = state();
        let a = handle(&s, &get("/v1/table/5"), 0);
        let b = handle(&s, &get("/v1/table/5?sci_n=24"), 0);
        // Different configs must not alias in the cache.
        assert_eq!(b.cache, CacheOutcome::Miss);
        let b2 = handle(&s, &get("/v1/table/5?sci_n=24"), 0);
        assert_eq!(b2.cache, CacheOutcome::Hit);
        let _ = a;
    }

    #[test]
    fn disk_tier_serves_persisted_renders_and_writes_through() {
        use memo_store::{Store, StoreConfig};
        let dir = std::env::temp_dir()
            .join(format!("memo-serve-routes-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir, StoreConfig::small_for_tests()).unwrap());

        // Pre-seed a recognizably fake render: if the request answers
        // with these bytes, it came from the store, not the runner.
        let fake = ResultBlob { status: 200, body: b"fake table from disk\n".to_vec() };
        store
            .put(b"results/table/1@scale=16;sci_n=16", &fake.to_bytes())
            .unwrap();

        let mut s = state();
        s.store = Some(Arc::clone(&store));
        let r = handle(&s, &get("/v1/table/1"), 0);
        assert_eq!(r.cache, CacheOutcome::Disk);
        assert_eq!(r.response.body, b"fake table from disk\n");
        assert!(r.response.headers.iter().any(|(k, v)| k == "x-memo-cache" && v == "disk"));
        // Now resident: the repeat is a plain memory hit.
        assert_eq!(handle(&s, &get("/v1/table/1"), 0).cache, CacheOutcome::Hit);

        // A key the store has never seen computes and writes through…
        let r = handle(&s, &get("/v1/table/2"), 0);
        assert_eq!(r.cache, CacheOutcome::Miss);
        let persisted = store.get(b"results/table/2@scale=16;sci_n=16").unwrap().unwrap();
        assert_eq!(ResultBlob::from_bytes(&persisted).unwrap().body, r.response.body);
        // …but error responses are never persisted.
        assert_eq!(handle(&s, &get("/v1/table/99"), 0).response.status, 404);
        assert_eq!(store.get(b"results/table/99@scale=16;sci_n=16").unwrap(), None);

        // The cache counted the disk hit, and /metrics shows the store.
        // (`memo_serve_cache_disk_hits_total` is incremented by the
        // connection handler's observe(), which unit tests bypass; the
        // restart e2e test covers it end to end.)
        assert_eq!(s.cache.stats().disk_hits, 1);
        let m = handle(&s, &get("/metrics"), 0);
        let text = String::from_utf8(m.response.body.clone()).unwrap();
        assert!(text.contains("memo_store_attached 1"), "{text}");
        assert!(text.contains("memo_store_segment_hits_total"));
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_bytes_gauge_tracks_resident_renders() {
        let s = state();
        assert_eq!(s.cache.stats().approx_bytes, 0);
        let r = handle(&s, &get("/v1/table/1"), 0);
        let expected = (r.response.body.len() + std::mem::size_of::<u16>()) as u64;
        assert_eq!(s.cache.stats().approx_bytes, expected);
    }

    #[test]
    fn zero_deadline_sheds_artifact_requests_with_503() {
        let mut s = state();
        s.deadline = Duration::ZERO;
        let r = handle(&s, &get("/v1/table/1"), 0);
        assert_eq!(r.response.status, 503);
        assert_eq!(r.cache, CacheOutcome::Uncached);
        assert_eq!(s.metrics.deadline_exceeded.load(Ordering::Relaxed), 1);
        // The shed response was never cached: with budget restored the
        // same request renders normally.
        s.deadline = Duration::from_secs(30);
        let r = handle(&s, &get("/v1/table/1"), 0);
        assert_eq!(r.response.status, 200);
        assert_eq!(r.cache, CacheOutcome::Miss);
    }

    #[test]
    fn broken_disk_degrades_to_compute_and_trips_the_breaker() {
        use memo_store::{FaultConfig, FaultVfs, Store, StoreConfig};
        let dir = std::env::temp_dir()
            .join(format!("memo-serve-routes-chaos-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let vfs = Arc::new(FaultVfs::new(FaultConfig::quiet(7)));
        let store = Arc::new(
            Store::open_with_vfs(&dir, StoreConfig::small_for_tests(), vfs.clone()).unwrap(),
        );

        // Seed the request keys into a segment so lookups really touch
        // the disk — a get that misses an empty store does no I/O and
        // would never observe a fault.
        let fake = ResultBlob { status: 200, body: b"seeded\n".to_vec() };
        for n in 1..=2 {
            store
                .put(format!("results/table/{n}@scale=16;sci_n=16").as_bytes(), &fake.to_bytes())
                .unwrap();
        }
        store.flush().unwrap();

        let mut s = state();
        s.store = Some(store);
        s.disk_breaker = Arc::new(TierBreaker::new(2, Duration::from_secs(60)));
        // From here on every read, write, and fsync the store issues fails.
        vfs.set_config(FaultConfig {
            read_error_permille: 1000,
            write_error_permille: 1000,
            fsync_error_permille: 1000,
            ..FaultConfig::quiet(7)
        });

        // The store fails on every touch, yet requests still render.
        for n in 1..=2 {
            let r = handle(&s, &get(&format!("/v1/table/{n}")), 0);
            assert_eq!(r.response.status, 200);
            assert_eq!(r.cache, CacheOutcome::Miss);
        }
        assert_eq!(s.disk_breaker.state(), BreakerState::Open);
        assert!(s.disk_breaker.stats().trips >= 1);
        assert!(s.metrics.store_io_errors.load(Ordering::Relaxed) >= 2);
        assert!(s.metrics.store_retries.load(Ordering::Relaxed) >= 2);

        // Health reports the degraded tier; serving continues, disk
        // untouched (breaker open means no further store calls).
        let h = handle(&s, &get("/healthz"), 0);
        assert_eq!(h.response.body, b"degraded:disk-breaker-open\n");
        let r = handle(&s, &get("/v1/table/3"), 0);
        assert_eq!(r.response.status, 200);
        assert_eq!(r.cache, CacheOutcome::Miss);

        let m = handle(&s, &get("/metrics"), 0);
        let text = String::from_utf8(m.response.body).unwrap();
        assert!(text.contains("memo_tier_breaker_state 2"), "{text}");
        assert!(text.contains("memo_store_io_errors_total"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_key_matches_the_keys_handlers_use() {
        let cfg = ExpConfig::quick();
        assert_eq!(
            cache_key(cfg, &get("/v1/table/5")).as_deref(),
            Some("table/5@scale=16;sci_n=16")
        );
        assert_eq!(
            cache_key(cfg, &get("/v1/figure/2?sci_n=24")).as_deref(),
            Some("figure/2@scale=16;sci_n=24")
        );
        // Sweeps canonicalize their axes exactly like the handler does.
        let via_key = cache_key(cfg, &get("/v1/sweep?entries=16,8&ways=2")).unwrap();
        let q = runner::SweepQuery::parse(Some("16,8"), Some("2")).unwrap();
        assert_eq!(via_key, format!("sweep/{}@scale=16;sci_n=16", q.canonical()));
        // Whole-family artifacts key on the config alone.
        assert_eq!(cache_key(cfg, &get("/v1/region")).as_deref(), Some("region@scale=16;sci_n=16"));
        assert_eq!(
            cache_key(cfg, &get("/v1/region?sci_n=24")).as_deref(),
            Some("region@scale=16;sci_n=24")
        );
        // Non-artifact routes and unparseable sweeps have no key.
        assert_eq!(cache_key(cfg, &get("/healthz")), None);
        assert_eq!(cache_key(cfg, &get("/v1/table/abc")), None);
        assert_eq!(cache_key(cfg, &get("/v1/sweep?entries=nope")), None);
        assert_eq!(cache_key(cfg, &get("/v1/region/1")), None);
    }

    #[test]
    fn region_matches_runner_bytes_and_caches() {
        let s = state();
        let direct = runner::region(ExpConfig::quick()).unwrap();
        let r = handle(&s, &get("/v1/region"), 0);
        assert_eq!(r.response.status, 200);
        assert_eq!(r.response.body, format!("{direct}\n").into_bytes());
        assert_eq!(r.endpoint, Endpoint::Region);
        assert_eq!(r.cache, CacheOutcome::Miss);

        let r2 = handle(&s, &get("/v1/region"), 0);
        assert_eq!(r2.cache, CacheOutcome::Hit);
        assert_eq!(r2.response.body, r.response.body);
        assert!(r2.response.headers.iter().any(|(k, v)| k == "x-memo-cache" && v == "hit"));
    }

    #[test]
    fn node_id_header_rides_every_response() {
        let mut s = state();
        s.node_id = Some("n1".to_string());
        for path in ["/healthz", "/v1/table/1", "/nope"] {
            let r = handle(&s, &get(path), 0);
            assert!(
                r.response.headers.iter().any(|(k, v)| k == "x-memo-node" && v == "n1"),
                "{path} missing x-memo-node"
            );
        }
    }

    #[test]
    fn warm_installs_into_memory_and_store_without_computing() {
        use memo_store::{Store, StoreConfig};
        let dir = std::env::temp_dir()
            .join(format!("memo-serve-routes-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir, StoreConfig::small_for_tests()).unwrap());
        let mut s = state();
        s.store = Some(Arc::clone(&store));

        let post = |target: &str, body: &str| {
            let raw = format!(
                "POST {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            );
            parse_request(raw.as_bytes()).unwrap().unwrap().0
        };

        // Warm a key this node never rendered: recognizable bytes prove
        // the later GET served the warmed copy, not a fresh render.
        let key = "table/1@scale=16;sci_n=16";
        let r = handle(&s, &post(&format!("/v1/warm?key={key}"), "warmed bytes\n"), 0);
        assert_eq!(r.response.status, 200);
        assert!(r.response.headers.iter().any(|(k, v)| k == "x-memo-warm" && v == "installed"));
        assert_eq!(s.metrics.warms.load(Ordering::Relaxed), 1);

        let served = handle(&s, &get("/v1/table/1"), 0);
        assert_eq!(served.cache, CacheOutcome::Hit);
        assert_eq!(served.response.body, b"warmed bytes\n");
        // …and it write-through persisted, so a restart finds it on disk.
        let blob = store.get(format!("results/{key}").as_bytes()).unwrap().unwrap();
        assert_eq!(ResultBlob::from_bytes(&blob).unwrap().body, b"warmed bytes\n");

        // Re-warming a resident key is a no-op: resident bytes win.
        let r = handle(&s, &post(&format!("/v1/warm?key={key}"), "other bytes\n"), 0);
        assert_eq!(r.response.body, b"already-warm\n");
        assert!(r.response.headers.iter().any(|(k, v)| k == "x-memo-warm" && v == "memory"));
        assert_eq!(s.metrics.warms.load(Ordering::Relaxed), 1, "no-op warms are not counted");
        assert_eq!(handle(&s, &get("/v1/table/1"), 0).response.body, b"warmed bytes\n");

        // Malformed warms are rejected without touching the cache.
        assert_eq!(handle(&s, &post("/v1/warm", "body\n"), 0).response.status, 400);
        assert_eq!(handle(&s, &post("/v1/warm?key=x", ""), 0).response.status, 400);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quitquitquit_flips_draining() {
        let s = state();
        assert!(!s.draining());
        let r = handle(&s, &get("/quitquitquit"), 0);
        assert_eq!(r.response.status, 200);
        assert!(s.draining());
        let h = handle(&s, &get("/healthz"), 0);
        assert_eq!(h.response.body, b"draining\n");
    }
}

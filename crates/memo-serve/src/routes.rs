//! Request routing and the server-side result cache.
//!
//! Every artifact endpoint resolves through the same
//! `memo_experiments::runner` entry points the CLI binaries use, so the
//! HTTP bytes are the CLI bytes plus a trailing newline (the binaries
//! `println!`). Results are cached in a [`ShardedLru`] keyed by the
//! canonical `(experiment, config)` string, with single-flight dedup so
//! a thundering herd on a cold table computes it exactly once.

use std::sync::atomic::{AtomicBool, Ordering};

use memo_experiments::cache::ShardedLru;
use memo_experiments::{runner, ExpConfig, ExperimentError};

use crate::http::{Request, Response};
use crate::metrics::{CacheOutcome, Endpoint, Metrics};

/// Shared state behind every worker.
pub struct AppState {
    /// Base experiment config (query params may override per request).
    pub cfg: ExpConfig,
    /// Rendered-result cache: canonical key → (status, body).
    pub cache: ShardedLru<String, (u16, String)>,
    /// Service counters.
    pub metrics: Metrics,
    /// Set by `/quitquitquit` (and the server's shutdown path); the
    /// accept loop exits when it observes this.
    pub draining: AtomicBool,
    /// Worker count, reported in `/metrics`.
    pub workers: usize,
}

impl AppState {
    /// State with `cache_capacity` cached renders across 8 shards.
    #[must_use]
    pub fn new(cfg: ExpConfig, cache_capacity: usize, workers: usize) -> Self {
        AppState {
            cfg,
            cache: ShardedLru::new(8, cache_capacity.max(8)),
            metrics: Metrics::new(),
            draining: AtomicBool::new(false),
            workers,
        }
    }

    /// True once a drain has been requested.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Request a graceful drain.
    pub fn start_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }
}

/// Per-request experiment config: the base config with optional
/// `scale` / `sci_n` query overrides, clamped to sane ranges.
fn effective_cfg(state: &AppState, req: &Request) -> ExpConfig {
    let mut cfg = state.cfg;
    if let Some(v) = req.query_param("scale").and_then(|v| v.parse::<usize>().ok()) {
        cfg.image_scale = v.clamp(1, 64);
    }
    if let Some(v) = req.query_param("sci_n").and_then(|v| v.parse::<usize>().ok()) {
        cfg.sci_n = v.clamp(8, 64);
    }
    cfg
}

fn cfg_suffix(cfg: ExpConfig) -> String {
    format!("@scale={};sci_n={}", cfg.image_scale, cfg.sci_n)
}

fn error_response(err: &ExperimentError) -> (u16, String) {
    let status = match err {
        ExperimentError::UnknownArtifact { .. } => 404,
        ExperimentError::InvalidSweep(_) => 400,
        _ => 500,
    };
    (status, format!("{err}\n"))
}

/// Resolve a cacheable artifact through the result cache, reporting
/// whether this request was served from cache.
fn cached_artifact(
    state: &AppState,
    key: String,
    compute: impl FnOnce() -> Result<String, ExperimentError>,
) -> (u16, String, CacheOutcome) {
    if let Some(entry) = state.cache.peek(&key) {
        let (status, body) = entry.as_ref().clone();
        return (status, body, CacheOutcome::Hit);
    }
    let entry = state.cache.get_or_compute(&key, || match compute() {
        // Bodies get the trailing newline the CLI's `println!` adds, so
        // HTTP bytes == CLI stdout bytes.
        Ok(rendered) => (200, format!("{rendered}\n")),
        Err(err) => error_response(&err),
    });
    let (status, body) = entry.as_ref().clone();
    (status, body, CacheOutcome::Miss)
}

/// The routing result: what to send, plus labels for metrics.
pub struct Routed {
    /// The response to serialize.
    pub response: Response,
    /// Which endpoint class handled it.
    pub endpoint: Endpoint,
    /// Whether the result cache served it.
    pub cache: CacheOutcome,
}

fn routed(response: Response, endpoint: Endpoint, cache: CacheOutcome) -> Routed {
    Routed { response, endpoint, cache }
}

/// Dispatch one parsed request. `queue_depth` is the current request
/// queue length, surfaced through `/metrics`.
#[must_use]
pub fn handle(state: &AppState, req: &Request, queue_depth: usize) -> Routed {
    if req.method != "GET" && req.method != "HEAD" {
        return routed(
            Response::text(405, "only GET and HEAD are supported\n").with_header("allow", "GET, HEAD"),
            Endpoint::Other,
            CacheOutcome::Uncached,
        );
    }

    match req.path.as_str() {
        "/healthz" => {
            let body = if state.draining() { "draining\n" } else { "ok\n" };
            routed(Response::text(200, body), Endpoint::Healthz, CacheOutcome::Uncached)
        }
        "/metrics" => {
            let text = state.metrics.render(queue_depth, state.workers, state.draining());
            routed(Response::text(200, text), Endpoint::Metrics, CacheOutcome::Uncached)
        }
        "/quitquitquit" => {
            state.start_drain();
            routed(Response::text(200, "draining\n"), Endpoint::Other, CacheOutcome::Uncached)
        }
        "/v1/sweep" => {
            let cfg = effective_cfg(state, req);
            match runner::SweepQuery::parse(req.query_param("entries"), req.query_param("ways")) {
                Err(err) => {
                    let (status, body) = error_response(&err);
                    routed(Response::text(status, body), Endpoint::Sweep, CacheOutcome::Uncached)
                }
                Ok(q) => {
                    let key = format!("sweep/{}{}", q.canonical(), cfg_suffix(cfg));
                    let (status, body, outcome) =
                        cached_artifact(state, key, || runner::sweep(cfg, &q));
                    routed(
                        Response::text(status, body).with_header("x-memo-cache", cache_label(outcome)),
                        Endpoint::Sweep,
                        outcome,
                    )
                }
            }
        }
        path => {
            if let Some(n) = path.strip_prefix("/v1/table/") {
                artifact(state, req, Endpoint::Table, "table", n, runner::table)
            } else if let Some(n) = path.strip_prefix("/v1/figure/") {
                artifact(state, req, Endpoint::Figure, "figure", n, runner::figure)
            } else {
                routed(
                    Response::text(404, format!("no route for {path}\n")),
                    Endpoint::Other,
                    CacheOutcome::Uncached,
                )
            }
        }
    }
}

fn cache_label(outcome: CacheOutcome) -> &'static str {
    match outcome {
        CacheOutcome::Hit => "hit",
        _ => "miss",
    }
}

fn artifact(
    state: &AppState,
    req: &Request,
    endpoint: Endpoint,
    kind: &'static str,
    raw_n: &str,
    run: fn(usize, ExpConfig) -> Result<String, ExperimentError>,
) -> Routed {
    let Ok(n) = raw_n.parse::<usize>() else {
        return routed(
            Response::text(404, format!("{kind} number must be an integer, got {raw_n:?}\n")),
            endpoint,
            CacheOutcome::Uncached,
        );
    };
    let cfg = effective_cfg(state, req);
    let key = format!("{kind}/{n}{}", cfg_suffix(cfg));
    let (status, body, outcome) = cached_artifact(state, key, || run(n, cfg));
    routed(
        Response::text(status, body).with_header("x-memo-cache", cache_label(outcome)),
        endpoint,
        outcome,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::parse_request;

    fn get(path: &str) -> Request {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        parse_request(raw.as_bytes()).unwrap().unwrap().0
    }

    fn state() -> AppState {
        AppState::new(ExpConfig::quick(), 64, 2)
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let s = state();
        let r = handle(&s, &get("/healthz"), 0);
        assert_eq!(r.response.status, 200);
        assert_eq!(r.response.body, b"ok\n");
        assert_eq!(r.endpoint, Endpoint::Healthz);

        let r = handle(&s, &get("/nope"), 0);
        assert_eq!(r.response.status, 404);
    }

    #[test]
    fn non_get_rejected() {
        let s = state();
        let raw = b"PUT /healthz HTTP/1.1\r\n\r\n";
        let req = parse_request(raw).unwrap().unwrap().0;
        let r = handle(&s, &req, 0);
        assert_eq!(r.response.status, 405);
    }

    #[test]
    fn table_matches_runner_bytes_and_caches() {
        let s = state();
        let direct = runner::table(1, ExpConfig::quick()).unwrap();
        let r = handle(&s, &get("/v1/table/1"), 0);
        assert_eq!(r.response.status, 200);
        assert_eq!(r.response.body, format!("{direct}\n").into_bytes());
        assert_eq!(r.cache, CacheOutcome::Miss);

        let r2 = handle(&s, &get("/v1/table/1"), 0);
        assert_eq!(r2.cache, CacheOutcome::Hit);
        assert_eq!(r2.response.body, r.response.body);
        assert!(r2.response.headers.iter().any(|(k, v)| k == "x-memo-cache" && v == "hit"));
    }

    #[test]
    fn unknown_table_is_404_and_bad_sweep_is_400() {
        let s = state();
        assert_eq!(handle(&s, &get("/v1/table/99"), 0).response.status, 404);
        assert_eq!(handle(&s, &get("/v1/table/abc"), 0).response.status, 404);
        assert_eq!(handle(&s, &get("/v1/sweep?entries=nope"), 0).response.status, 400);
        assert_eq!(handle(&s, &get("/v1/sweep?entries=8,16&ways=2,4"), 0).response.status, 400);
    }

    #[test]
    fn scale_override_changes_the_cache_key() {
        let s = state();
        let a = handle(&s, &get("/v1/table/5"), 0);
        let b = handle(&s, &get("/v1/table/5?sci_n=24"), 0);
        // Different configs must not alias in the cache.
        assert_eq!(b.cache, CacheOutcome::Miss);
        let b2 = handle(&s, &get("/v1/table/5?sci_n=24"), 0);
        assert_eq!(b2.cache, CacheOutcome::Hit);
        let _ = a;
    }

    #[test]
    fn quitquitquit_flips_draining() {
        let s = state();
        assert!(!s.draining());
        let r = handle(&s, &get("/quitquitquit"), 0);
        assert_eq!(r.response.status, 200);
        assert!(s.draining());
        let h = handle(&s, &get("/healthz"), 0);
        assert_eq!(h.response.body, b"draining\n");
    }
}

//! A fixed worker pool draining a [`Bounded`] queue.
//!
//! The pool mirrors the paper's hardware shape: a small number of
//! functional units (workers) in front of a shared reservation queue.
//! Workers run `job` for every item until the queue is closed and
//! drained, then exit; [`WorkerPool::join`] completes the shutdown.

use std::sync::Arc;
use std::thread::{self, JoinHandle};

use crate::queue::Bounded;

/// Handle over the spawned worker threads.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads that each loop `queue.pop()` → `job`.
    ///
    /// # Panics
    ///
    /// If `workers` is zero, or if the OS refuses to spawn a thread.
    #[must_use]
    pub fn spawn<T, F>(workers: usize, queue: Arc<Bounded<T>>, job: F) -> Self
    where
        T: Send + 'static,
        F: Fn(T) + Send + Sync + 'static,
    {
        assert!(workers > 0, "worker pool needs at least one worker");
        let job = Arc::new(job);
        let handles = (0..workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let job = Arc::clone(&job);
                thread::Builder::new()
                    .name(format!("memo-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(item) = queue.pop() {
                            job(item);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Wait for every worker to exit. Call after closing the queue;
    /// returns once all queued work has been processed.
    pub fn join(self) {
        for handle in self.handles {
            if handle.join().is_err() {
                // A worker panicked mid-job; the others still drain.
                eprintln!("[memo-serve] worker thread panicked");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn pool_processes_everything_then_joins() {
        let queue = Arc::new(Bounded::new(64));
        let sum = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&sum);
        let pool = WorkerPool::spawn(4, Arc::clone(&queue), move |v: u64| {
            seen.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(pool.workers(), 4);
        let mut expect = 0;
        for v in 1..=50u64 {
            while queue.try_push(v).is_err() {
                std::thread::yield_now();
            }
            expect += v;
        }
        queue.close();
        pool.join();
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn panicking_job_does_not_take_down_the_pool_join() {
        let queue = Arc::new(Bounded::new(8));
        let done = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&done);
        let pool = WorkerPool::spawn(2, Arc::clone(&queue), move |v: u64| {
            assert!(v != 3, "injected failure");
            counter.fetch_add(1, Ordering::Relaxed);
        });
        for v in 1..=5 {
            queue.try_push(v).unwrap();
        }
        queue.close();
        pool.join(); // must not hang or propagate the panic
        assert!(done.load(Ordering::Relaxed) >= 3);
    }
}

//! The TCP front end: accept loop → bounded queue → worker pool.
//!
//! The shape deliberately mirrors the paper's memo unit: a bounded
//! reservation queue in front of a fixed set of execution resources,
//! with explicit shedding (503 + `Retry-After`) instead of unbounded
//! buffering when demand exceeds capacity. Shutdown is a drain: the
//! accept loop stops, queued connections are still served, workers exit
//! when the queue runs dry.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use memo_experiments::cache::TierBreaker;
use memo_experiments::{env, store, ExpConfig};
use memo_store::Store;

use crate::http::{parse_request, Response, MAX_HEADER_BYTES, MAX_BODY};
use crate::metrics::{CacheOutcome, Endpoint};
use crate::pool::WorkerPool;
use crate::queue::{Bounded, PushError};
use crate::routes::{self, AppState};

/// Everything configurable about one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Worker threads (default: `MEMO_JOBS` or available parallelism).
    pub workers: usize,
    /// Connections queued before shedding with 503.
    pub queue_capacity: usize,
    /// Rendered results kept in the in-process cache.
    pub cache_capacity: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Base experiment configuration.
    pub cfg: ExpConfig,
    /// Directory of the persistent result/trace store. `None` (the
    /// default) serves memory-only, exactly as before the store existed.
    pub store_dir: Option<PathBuf>,
    /// A pre-opened store to serve from, taking precedence over
    /// [`store_dir`](Self::store_dir). This is how chaos tests hand the
    /// server a [`memo_store::FaultVfs`]-backed store.
    pub store: Option<Arc<Store>>,
    /// Consecutive store failures before the disk tier is bypassed
    /// (0 disables the breaker).
    pub breaker_threshold: u32,
    /// How long a tripped breaker waits before admitting a probe.
    pub breaker_cooldown: Duration,
    /// Per-request time budget, counted from accept. Requests that age
    /// past it in the queue (or mid-render) are shed with 503.
    pub request_deadline: Duration,
    /// Cluster identity (`--node-id`). When set, every response carries
    /// an `x-memo-node` header so the router tier and the load generator
    /// can attribute responses to fleet members.
    pub node_id: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7070".to_string(),
            workers: env::jobs(),
            queue_capacity: 128,
            cache_capacity: 256,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            cfg: ExpConfig::from_env(),
            store_dir: None,
            store: None,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(2),
            request_deadline: Duration::from_secs(30),
            node_id: None,
        }
    }
}

/// A running server. Dropping the handle does not stop it; call
/// [`shutdown`](ServerHandle::shutdown) then [`wait`](ServerHandle::wait).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<AppState>,
    queue: Arc<Bounded<(TcpStream, Instant)>>,
    accept_thread: JoinHandle<()>,
    pool: WorkerPool,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for inspection in tests.
    #[must_use]
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Connections currently queued for a worker.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Begin a graceful drain: stop accepting, serve what is queued.
    pub fn shutdown(&self) {
        self.state.start_drain();
    }

    /// Block until the accept loop and all workers have exited. Call
    /// after [`shutdown`](Self::shutdown) (or a `/quitquitquit` hit).
    /// Flushes the persistent store once the last worker is done, so a
    /// drained server leaves everything it rendered on disk.
    pub fn wait(self) {
        if self.accept_thread.join().is_err() {
            eprintln!("[memo-serve] accept thread panicked");
        }
        self.pool.join();
        if let Some(store) = &self.state.store {
            if let Err(err) = store.flush() {
                eprintln!("[memo-serve] store flush on drain failed: {err}");
            }
        }
    }
}

/// How often the accept loop re-checks the drain flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Bind and start serving.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn start(config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let workers = config.workers.max(1);
    let mut state = AppState::new(config.cfg, config.cache_capacity, workers);
    state.disk_breaker = Arc::new(TierBreaker::new(config.breaker_threshold, config.breaker_cooldown));
    state.deadline = config.request_deadline;
    state.node_id = config.node_id.clone();
    if let Some(opened) = &config.store {
        // A pre-opened store (chaos tests inject FaultVfs-backed ones
        // this way) takes precedence over store_dir.
        store::install(Arc::clone(opened));
        state.store = Some(Arc::clone(opened));
    } else if let Some(dir) = &config.store_dir {
        let opened = store::open_guarded(dir, env::store_config())
            .map_err(|e| io::Error::other(format!("open store at {}: {e}", dir.display())))?;
        // Install globally too, so the trace cache records once across
        // restarts, not just the rendered results.
        store::install(Arc::clone(&opened));
        state.store = Some(opened);
    }
    if let Some(opened) = &state.store {
        // A background flush that fails is the same disk going bad as a
        // foreground load failing: feed it into the breaker's streak.
        // Successes deliberately do NOT close the breaker — only a
        // foreground probe proves the read path is healthy again.
        let breaker = Arc::clone(&state.disk_breaker);
        opened.set_flush_observer(Box::new(move |ok| {
            if !ok {
                breaker.record_failure();
            }
        }));
    }
    let state = Arc::new(state);
    let queue = Arc::new(Bounded::new(config.queue_capacity));

    let worker_state = Arc::clone(&state);
    let worker_queue = Arc::clone(&queue);
    let (read_timeout, write_timeout) = (config.read_timeout, config.write_timeout);
    let pool =
        WorkerPool::spawn(workers, Arc::clone(&queue), move |(stream, accepted): (TcpStream, Instant)| {
            handle_connection(&worker_state, &worker_queue, stream, accepted, read_timeout);
        });

    let accept_state = Arc::clone(&state);
    let accept_queue = Arc::clone(&queue);
    let accept_thread = thread::Builder::new()
        .name("memo-serve-accept".to_string())
        .spawn(move || {
            accept_loop(&listener, &accept_state, &accept_queue, read_timeout, write_timeout);
            // No new connections past this point; let the workers drain.
            accept_queue.close();
        })
        .expect("spawn accept thread");

    Ok(ServerHandle { addr, state, queue, accept_thread, pool })
}

fn accept_loop(
    listener: &TcpListener,
    state: &AppState,
    queue: &Bounded<(TcpStream, Instant)>,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    while !state.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                state.metrics.connections_accepted.fetch_add(1, Ordering::Relaxed);
                // The listener is nonblocking; the accepted stream must
                // not be, or reads would spin instead of blocking with a
                // timeout.
                let configured = stream.set_nonblocking(false).is_ok()
                    && stream.set_read_timeout(Some(read_timeout)).is_ok()
                    && stream.set_write_timeout(Some(write_timeout)).is_ok();
                if !configured {
                    continue; // peer is gone; nothing to shed
                }
                if let Err(err) = queue.try_push((stream, Instant::now())) {
                    let (PushError::Full((mut stream, _)) | PushError::Closed((mut stream, _))) =
                        err;
                    state.metrics.queue_rejections.fetch_add(1, Ordering::Relaxed);
                    state.metrics.observe(Endpoint::Other, 503, CacheOutcome::Uncached, 0);
                    let _ = Response::text(503, "request queue full, retry shortly\n")
                        .with_header("retry-after", "1")
                        .write_to(&mut stream, false, false);
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Serve one connection until close, drain, timeout, or protocol error.
///
/// `accepted` is when the accept loop queued the connection: one that
/// sat in the queue past the request deadline is shed with 503 before
/// any bytes are read — a stalled disk must not turn the queue into an
/// unbounded latency amplifier.
fn handle_connection(
    state: &AppState,
    queue: &Bounded<(TcpStream, Instant)>,
    mut stream: TcpStream,
    accepted: Instant,
    read_timeout: Duration,
) {
    if accepted.elapsed() > state.deadline {
        state.metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        state.metrics.observe(Endpoint::Other, 503, CacheOutcome::Uncached, 0);
        let _ = Response::text(503, "spent too long queued; retry shortly\n")
            .with_header("retry-after", "1")
            .write_to(&mut stream, false, false);
        return;
    }
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // An idle keep-alive connection may not outlive the read timeout by
    // much even across multiple short reads.
    let idle_deadline = Instant::now() + read_timeout.max(Duration::from_millis(1)) * 2;

    loop {
        // Serve every complete pipelined request already buffered.
        loop {
            match parse_request(&buf) {
                Ok(Some((req, consumed))) => {
                    buf.drain(..consumed);
                    let start = Instant::now();
                    let routed = routes::handle(state, &req, queue.len());
                    let keep_alive = req.keep_alive && !state.draining();
                    let head_only = req.method == "HEAD";
                    let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
                    state.metrics.observe(routed.endpoint, routed.response.status, routed.cache, micros);
                    if routed.response.write_to(&mut stream, keep_alive, head_only).is_err() {
                        return;
                    }
                    if !keep_alive {
                        return;
                    }
                }
                Ok(None) => break, // need more bytes
                Err(err) => {
                    let resp = Response::from_parse_error(&err);
                    state.metrics.observe(Endpoint::Other, resp.status, CacheOutcome::Uncached, 0);
                    let _ = resp.write_to(&mut stream, false, false);
                    return;
                }
            }
        }

        if state.draining() && buf.is_empty() {
            return; // no partial request in flight; drop the idle conn
        }
        if buf.len() > MAX_HEADER_BYTES + MAX_BODY {
            return; // defensive: parser should have rejected long ago
        }

        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(ref e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                state.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                if !buf.is_empty() {
                    // Mid-request stall: tell the peer before hanging up.
                    let resp = Response::text(408, "timed out waiting for the full request\n");
                    let _ = resp.write_to(&mut stream, false, false);
                }
                return;
            }
            Err(_) => return,
        }
        if Instant::now() > idle_deadline && buf.is_empty() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn test_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 4,
            cache_capacity: 32,
            read_timeout: Duration::from_millis(300),
            write_timeout: Duration::from_millis(300),
            cfg: ExpConfig::quick(),
            store_dir: None,
            ..ServerConfig::default()
        }
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_healthz_then_drains_cleanly() {
        let handle = start(&test_config()).unwrap();
        let addr = handle.addr();
        let resp = roundtrip(addr, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.ends_with("ok\n"), "{resp}");

        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn malformed_request_gets_400_class() {
        let handle = start(&test_config()).unwrap();
        let resp = roundtrip(handle.addr(), "BOGUS\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn slow_partial_request_times_out_with_408() {
        let handle = start(&test_config()).unwrap();
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"GET /healthz HTTP/1.1\r\nHost:").unwrap(); // never finish
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408"), "{out}");
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn zero_deadline_sheds_connections_before_reading() {
        let mut cfg = test_config();
        cfg.request_deadline = Duration::ZERO;
        let handle = start(&cfg).unwrap();
        // Send nothing: the shed happens before the request is read, and
        // an unread request would RST the connection on the server's
        // close instead of delivering the 503.
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        assert!(resp.contains("retry-after: 1"), "{resp}");
        assert!(handle.state().metrics.deadline_exceeded.load(Ordering::Relaxed) >= 1);
        handle.shutdown();
        handle.wait();
    }

    #[test]
    fn quitquitquit_drains_the_server() {
        let handle = start(&test_config()).unwrap();
        let resp = roundtrip(handle.addr(), "GET /quitquitquit HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        handle.wait(); // returns because the drain flag stops the accept loop
    }
}

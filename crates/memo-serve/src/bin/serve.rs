//! `memo-serve`: serve the reproduction's tables, figures, and sweeps
//! over HTTP, with a bounded queue, a worker pool, and a result cache.

use std::time::Duration;

use memo_experiments::cli;
use memo_serve::server::{self, ServerConfig};

const FLAGS: [(&str, &str); 8] = [
    ("--addr=", "bind address (default 127.0.0.1:7070; port 0 = ephemeral)"),
    ("--workers=", "worker threads (default: MEMO_JOBS or all cores)"),
    ("--queue-cap=", "queued connections before shedding 503 (default 128)"),
    ("--cache-cap=", "rendered results kept in cache (default 256)"),
    ("--read-timeout-ms=", "per-connection read timeout (default 10000)"),
    ("--write-timeout-ms=", "per-connection write timeout (default 10000)"),
    ("--store-dir=", "persist results and traces here; serve them across restarts"),
    ("--node-id=", "cluster identity stamped on responses as x-memo-node"),
];

fn value_of(prefix: &str) -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix(prefix).map(str::to_string))
}

fn usize_flag(prefix: &str) -> Option<usize> {
    value_of(prefix).and_then(|v| v.parse().ok())
}

fn main() {
    cli::enforce(
        "memo-serve",
        "Serves tables, figures, and custom sweeps over HTTP with a memoizing result cache.",
        &FLAGS,
    );
    let mut config = ServerConfig::default();
    if let Some(addr) = value_of("--addr=") {
        config.addr = addr;
    }
    if let Some(v) = usize_flag("--workers=") {
        config.workers = v.max(1);
    }
    if let Some(v) = usize_flag("--queue-cap=") {
        config.queue_capacity = v.max(1);
    }
    if let Some(v) = usize_flag("--cache-cap=") {
        config.cache_capacity = v.max(8);
    }
    if let Some(ms) = usize_flag("--read-timeout-ms=") {
        config.read_timeout = Duration::from_millis(ms.max(1) as u64);
    }
    if let Some(ms) = usize_flag("--write-timeout-ms=") {
        config.write_timeout = Duration::from_millis(ms.max(1) as u64);
    }
    if let Some(dir) = value_of("--store-dir=") {
        config.store_dir = Some(dir.into());
    }
    if let Some(id) = value_of("--node-id=").filter(|id| !id.is_empty()) {
        config.node_id = Some(id);
    }

    match server::start(&config) {
        Ok(handle) => {
            println!(
                "memo-serve listening on http://{} ({} workers, queue {}, cache {}{})",
                handle.addr(),
                config.workers.max(1),
                config.queue_capacity,
                config.cache_capacity,
                config.store_dir.as_ref().map_or(String::new(), |d| format!(
                    ", store {}",
                    d.display()
                ))
            );
            println!("endpoints: /healthz /metrics /v1/table/{{1..13}} /v1/figure/{{2..4}} /v1/sweep /v1/region /quitquitquit");
            handle.wait();
            println!("memo-serve drained; bye");
        }
        Err(err) => {
            eprintln!("memo-serve: failed to bind {}: {err}", config.addr);
            std::process::exit(1);
        }
    }
}

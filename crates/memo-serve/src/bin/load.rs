//! `memo-load`: deterministic load generator for a running memo-serve.
//!
//! Exits nonzero when any request failed, with the failure class in the
//! code so CI can tell a sick server from a sick network: 1 for 5xx
//! responses other than the server's deliberate 503 shedding (or for no
//! request completing at all), 3 for transport failures (connection
//! reset, EOF mid-response, protocol garbage). Shed 503s alone exit 0 —
//! backpressure is the server working as designed. Writes
//! `BENCH_serve.json` with throughput, an error breakdown, and cold vs
//! cached latency quantiles.

use std::time::Duration;

use memo_experiments::cli;
use memo_serve::load::{self, LoadConfig, Mode};

const FLAGS: [(&str, &str); 10] = [
    ("--addr=", "server address (default 127.0.0.1:7070)"),
    ("--cluster", "target is a memo-router: per-node stats, rebalance/failover/read-repair counters"),
    ("--connections=", "concurrent connections (default 32)"),
    ("--duration-s=", "run length in seconds (default 15)"),
    ("--mode=", "closed (default) or open"),
    ("--rate=", "per-connection requests/sec in open mode (default 50)"),
    ("--seed=", "request-mix seed (default 1998)"),
    ("--store-miss-rate=", "fraction of requests aimed at never-cached keys (default 0)"),
    ("--out=", "report path (default BENCH_serve.json)"),
    ("--expect-warm", "fail unless some responses came from cache (memory or disk)"),
];

fn value_of(prefix: &str) -> Option<String> {
    std::env::args().find_map(|a| a.strip_prefix(prefix).map(str::to_string))
}

fn main() {
    cli::enforce(
        "memo-load",
        "Generates deterministic load against a running memo-serve and reports latency.",
        &FLAGS,
    );
    let mut config = LoadConfig::default();
    if let Some(addr) = value_of("--addr=") {
        config.addr = addr;
    }
    config.cluster = std::env::args().any(|a| a == "--cluster");
    if let Some(v) = value_of("--connections=").and_then(|v| v.parse::<usize>().ok()) {
        config.connections = v.max(1);
    }
    if let Some(v) = value_of("--duration-s=").and_then(|v| v.parse::<u64>().ok()) {
        config.duration = Duration::from_secs(v.max(1));
    }
    if let Some(v) = value_of("--seed=").and_then(|v| v.parse::<u64>().ok()) {
        config.seed = v;
    }
    if let Some(raw) = value_of("--store-miss-rate=") {
        match raw.parse::<f64>() {
            Ok(f) if (0.0..=1.0).contains(&f) => {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                {
                    config.store_miss_permille = (f * 1000.0).round() as u32;
                }
            }
            _ => {
                eprintln!("memo-load: --store-miss-rate must be a fraction in [0, 1], got {raw:?}");
                std::process::exit(2);
            }
        }
    }
    let rate = value_of("--rate=").and_then(|v| v.parse::<u32>().ok()).unwrap_or(50);
    match value_of("--mode=").as_deref() {
        None | Some("closed") => config.mode = Mode::Closed,
        Some("open") => config.mode = Mode::Open { rate },
        Some(other) => {
            eprintln!("memo-load: --mode must be 'closed' or 'open', got {other:?}");
            std::process::exit(2);
        }
    }
    let out_path = value_of("--out=").unwrap_or_else(|| "BENCH_serve.json".to_string());

    println!(
        "memo-load: {} connections against {} for {:?} ({} mode, seed {})",
        config.connections,
        config.addr,
        config.duration,
        match config.mode {
            Mode::Closed => "closed".to_string(),
            Mode::Open { rate } => format!("open@{rate}rps"),
        },
        config.seed
    );
    let report = load::run(&config);
    println!("{}", report.summary());

    let json = report.to_json(&config);
    if let Err(err) = std::fs::write(&out_path, &json) {
        eprintln!("memo-load: could not write {out_path}: {err}");
        std::process::exit(1);
    }
    println!("report written to {out_path}");

    if report.requests == 0 {
        eprintln!("memo-load: no request completed — is the server up at {}?", config.addr);
        std::process::exit(1);
    }
    // Server-side failures (unexpected 5xx) outrank transport ones:
    // exit 1 points at the server, exit 3 at the path to it.
    if report.other_5xx > 0 {
        eprintln!(
            "memo-load: {} request(s) got a non-backpressure 5xx response",
            report.other_5xx
        );
        std::process::exit(1);
    }
    if report.transport_errors > 0 {
        eprintln!(
            "memo-load: {} request(s) failed in transport (no HTTP response)",
            report.transport_errors
        );
        std::process::exit(3);
    }
    let expect_warm = std::env::args().any(|a| a == "--expect-warm");
    if expect_warm && report.cache_hits + report.cache_disk_hits == 0 {
        eprintln!(
            "memo-load: --expect-warm, but every artifact response was computed fresh \
             (memory hits = 0, disk hits = 0) — is the cache or store wired up?"
        );
        std::process::exit(1);
    }
}

//! Memoization-as-a-service: an HTTP front end over the reproduction.
//!
//! The paper puts a memo table in front of a multiply/divide unit so
//! repeated operands skip the computation. This crate does the same one
//! level up: a dependency-free HTTP/1.1 service (std `TcpListener` only)
//! puts a sharded, single-flight result cache in front of the experiment
//! suite, so repeated requests for a table, figure, or sweep skip the
//! replay entirely. The moving parts mirror the hardware shape:
//!
//! - [`queue`]: a bounded reservation queue with explicit shedding
//!   (503 + `Retry-After`) instead of unbounded buffering;
//! - [`pool`]: a fixed set of workers — the functional units;
//! - [`routes`]: the lookup table — canonical `(experiment, config)`
//!   keys into a sharded LRU with single-flight dedup;
//! - [`http`]: a strict, bounded HTTP/1.1 parser/serializer;
//! - [`metrics`] + [`hist`]: counters and lock-free latency histograms
//!   behind `/metrics`;
//! - [`server`]: accept loop, timeouts, graceful drain;
//! - [`load`]: a deterministic load generator (`memo-load`) writing
//!   `BENCH_serve.json`.
//!
//! Endpoints: `GET /healthz`, `GET /metrics`, `GET /v1/table/{1..13}`,
//! `GET /v1/figure/{2..4}`, `GET /v1/sweep?entries=..&ways=..`,
//! `GET /v1/region` (the region-memoization family), and
//! `GET /quitquitquit` (graceful drain). Artifact bodies are the CLI
//! binaries' stdout bytes — same renderer, plus the trailing newline.
//! The artifact families live in one registry (`routes::FAMILIES`), so
//! adding an endpoint is one table row, not a parser edit.

pub mod hist;
pub mod http;
pub mod load;
pub mod metrics;
pub mod pool;
pub mod queue;
pub mod routes;
pub mod server;

//! Lock-free log-linear latency histogram (HDR-histogram style).
//!
//! Values are microseconds. The first 32 buckets are exact; above that,
//! each power-of-two range is split into 32 linear sub-buckets, giving a
//! worst-case relative error of ~3% across the full `u64` range with a
//! fixed ~2 KB of atomic counters. Recording is a single relaxed
//! `fetch_add`, so worker threads never contend on a lock.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2(sub-buckets per power of two).
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS; // 32
/// Enough buckets to cover every u64 value.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Concurrent latency histogram over `u64` microsecond samples.
pub struct Histogram {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS here
    let base = (u64::from(msb) - u64::from(SUB_BITS) + 1) * SUB;
    let offset = (v >> (msb - SUB_BITS)) & (SUB - 1);
    (base + offset) as usize
}

/// Representative (upper-edge) value for a bucket.
fn bucket_value(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let tier = index / SUB; // >= 1
    let offset = index % SUB;
    // Bucket holds values v with msb == SUB_BITS + tier - 1 and the top
    // SUB_BITS bits after the msb equal to offset.
    #[allow(clippy::cast_possible_truncation)]
    let msb = SUB_BITS + (tier - 1) as u32;
    (1u64 << msb) + (offset << (msb - SUB_BITS))
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample (microseconds).
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all samples (microseconds).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample value, 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum() as f64 / n as f64
            }
        }
    }

    /// Value at quantile `q` in `[0, 1]` — the upper edge of the bucket
    /// containing the q-th sample. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_value(i).min(self.max());
            }
        }
        self.max()
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter().zip(&other.counts) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn buckets_are_monotone_and_bounded_error() {
        let mut last = 0;
        for v in [1u64, 31, 32, 33, 63, 64, 100, 1000, 10_000, 1 << 20, u64::MAX / 2] {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index must not decrease (v={v})");
            last = idx;
            let rep = bucket_value(idx);
            // Representative within ~1/32 relative error of the sample.
            let err = rep.abs_diff(v) as f64 / v.max(1) as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "v={v} rep={rep} err={err}");
        }
    }

    #[test]
    fn quantiles_split_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((480..=530).contains(&p50), "p50={p50}");
        assert!((960..=1000).contains(&p99), "p99={p99}");
        assert!((h.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn merge_combines_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(20);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.sum(), 1_000_030);
    }
}

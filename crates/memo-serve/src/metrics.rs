//! Service-wide counters and the `/metrics` text exposition.
//!
//! Everything is atomics and [`Histogram`]s — recording never takes a
//! lock on the request path. The exposition follows the Prometheus text
//! format (`# TYPE` lines plus `name{label="…"} value`), rendered with
//! deterministic label ordering so tests can assert on substrings.

use std::sync::atomic::{AtomicU64, Ordering};

use memo_experiments::cache::{BreakerState, TierBreakerStats};
use memo_experiments::results;

use crate::hist::Histogram;

/// Route classes tracked independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `/healthz`
    Healthz,
    /// `/metrics`
    Metrics,
    /// `/v1/table/{n}`
    Table,
    /// `/v1/figure/{n}`
    Figure,
    /// `/v1/sweep`
    Sweep,
    /// `/v1/region`
    Region,
    /// Anything else (404s, bad methods, …).
    Other,
}

impl Endpoint {
    /// All endpoint classes, in exposition order.
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Table,
        Endpoint::Figure,
        Endpoint::Sweep,
        Endpoint::Region,
        Endpoint::Other,
    ];

    /// Stable label value for the exposition.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Table => "table",
            Endpoint::Figure => "figure",
            Endpoint::Sweep => "sweep",
            Endpoint::Region => "region",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Healthz => 0,
            Endpoint::Metrics => 1,
            Endpoint::Table => 2,
            Endpoint::Figure => 3,
            Endpoint::Sweep => 4,
            Endpoint::Region => 5,
            Endpoint::Other => 6,
        }
    }
}

/// How the result cache treated a request (label `cache`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-memory sharded result cache.
    Hit,
    /// Loaded from the persistent store — no computation ran.
    Disk,
    /// Computed fresh (includes coalesced waiters).
    Miss,
    /// The endpoint has no cacheable result (healthz, metrics, errors).
    Uncached,
}

impl CacheOutcome {
    fn index(self) -> usize {
        match self {
            CacheOutcome::Hit => 0,
            CacheOutcome::Disk => 1,
            CacheOutcome::Miss | CacheOutcome::Uncached => 2,
        }
    }
}

struct EndpointStats {
    requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    // [0] = memory hits, [1] = disk hits, [2] = misses/uncached.
    latency: [Histogram; 3],
}

impl EndpointStats {
    fn new() -> Self {
        EndpointStats {
            requests: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            latency: [Histogram::new(), Histogram::new(), Histogram::new()],
        }
    }
}

/// All counters for one server instance.
pub struct Metrics {
    endpoints: Vec<EndpointStats>,
    /// Connections rejected with 503 because the request queue was full.
    pub queue_rejections: AtomicU64,
    /// Connections accepted off the listener.
    pub connections_accepted: AtomicU64,
    /// Requests that hit the server-side result cache in memory.
    pub cache_hits: AtomicU64,
    /// Requests served by loading a persisted result from the store.
    pub cache_disk_hits: AtomicU64,
    /// Requests that computed (or waited on) a fresh result.
    pub cache_misses: AtomicU64,
    /// Requests closed early by a read/write timeout.
    pub timeouts: AtomicU64,
    /// Store operations (load or persist) that ultimately failed after
    /// retries — each one also charged the disk-tier breaker.
    pub store_io_errors: AtomicU64,
    /// Retries spent on transient store errors (attempts beyond the
    /// first, summed over all store operations).
    pub store_retries: AtomicU64,
    /// Requests answered 503 because their deadline budget ran out
    /// (in the queue or before rendering) instead of stalling a worker.
    pub deadline_exceeded: AtomicU64,
    /// Artifacts installed through `POST /v1/warm` (the cluster
    /// router's read-repair path re-warming this replica).
    pub warms: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            endpoints: Endpoint::ALL.iter().map(|_| EndpointStats::new()).collect(),
            queue_rejections: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_disk_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            store_io_errors: AtomicU64::new(0),
            store_retries: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            warms: AtomicU64::new(0),
        }
    }

    /// Record one finished request: status class, cache outcome, and
    /// handling latency in microseconds.
    pub fn observe(&self, endpoint: Endpoint, status: u16, cache: CacheOutcome, micros: u64) {
        let stats = &self.endpoints[endpoint.index()];
        stats.requests.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => stats.responses_2xx.fetch_add(1, Ordering::Relaxed),
            400..=499 => stats.responses_4xx.fetch_add(1, Ordering::Relaxed),
            _ => stats.responses_5xx.fetch_add(1, Ordering::Relaxed),
        };
        stats.latency[cache.index()].record(micros);
        match cache {
            CacheOutcome::Hit => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            CacheOutcome::Disk => {
                self.cache_disk_hits.fetch_add(1, Ordering::Relaxed);
            }
            CacheOutcome::Miss => {
                self.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
            CacheOutcome::Uncached => {}
        }
    }

    /// Total requests across all endpoints.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.endpoints.iter().map(|e| e.requests.load(Ordering::Relaxed)).sum()
    }

    /// Render the Prometheus-style text exposition.
    ///
    /// `queue_depth` and `draining` are point-in-time server state the
    /// metrics struct does not own; `serve_cache` is a snapshot of the
    /// rendered-result cache, `store` of the persistent tier when one is
    /// attached, and `breaker` of the disk-tier circuit breaker guarding
    /// that tier.
    #[must_use]
    pub fn render(
        &self,
        queue_depth: usize,
        workers: usize,
        draining: bool,
        serve_cache: &memo_experiments::cache::CacheStats,
        store: Option<&memo_store::StoreStats>,
        breaker: &TierBreakerStats,
    ) -> String {
        let mut out = String::with_capacity(4096);
        let g = |v: u64| v.to_string();

        out.push_str("# TYPE memo_serve_requests_total counter\n");
        for ep in Endpoint::ALL {
            let s = &self.endpoints[ep.index()];
            out.push_str(&format!(
                "memo_serve_requests_total{{endpoint=\"{}\"}} {}\n",
                ep.label(),
                s.requests.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE memo_serve_responses_total counter\n");
        for ep in Endpoint::ALL {
            let s = &self.endpoints[ep.index()];
            for (class, count) in [
                ("2xx", &s.responses_2xx),
                ("4xx", &s.responses_4xx),
                ("5xx", &s.responses_5xx),
            ] {
                out.push_str(&format!(
                    "memo_serve_responses_total{{endpoint=\"{}\",class=\"{class}\"}} {}\n",
                    ep.label(),
                    count.load(Ordering::Relaxed)
                ));
            }
        }

        out.push_str("# TYPE memo_serve_latency_seconds summary\n");
        for ep in Endpoint::ALL {
            let s = &self.endpoints[ep.index()];
            for (cache, hist) in
                [("hit", &s.latency[0]), ("disk", &s.latency[1]), ("miss", &s.latency[2])]
            {
                if hist.count() == 0 {
                    continue;
                }
                for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                    #[allow(clippy::cast_precision_loss)]
                    let secs = hist.quantile(q) as f64 / 1e6;
                    out.push_str(&format!(
                        "memo_serve_latency_seconds{{endpoint=\"{}\",cache=\"{cache}\",quantile=\"{qs}\"}} {secs:.6}\n",
                        ep.label(),
                    ));
                }
                out.push_str(&format!(
                    "memo_serve_latency_seconds_count{{endpoint=\"{}\",cache=\"{cache}\"}} {}\n",
                    ep.label(),
                    hist.count()
                ));
            }
        }

        out.push_str("# TYPE memo_serve_queue_depth gauge\n");
        out.push_str(&format!("memo_serve_queue_depth {queue_depth}\n"));
        out.push_str("# TYPE memo_serve_workers gauge\n");
        out.push_str(&format!("memo_serve_workers {workers}\n"));
        out.push_str("# TYPE memo_serve_draining gauge\n");
        out.push_str(&format!("memo_serve_draining {}\n", u8::from(draining)));
        out.push_str("# TYPE memo_serve_queue_rejections_total counter\n");
        out.push_str(&format!(
            "memo_serve_queue_rejections_total {}\n",
            g(self.queue_rejections.load(Ordering::Relaxed))
        ));
        out.push_str("# TYPE memo_serve_connections_accepted_total counter\n");
        out.push_str(&format!(
            "memo_serve_connections_accepted_total {}\n",
            g(self.connections_accepted.load(Ordering::Relaxed))
        ));
        out.push_str("# TYPE memo_serve_timeouts_total counter\n");
        out.push_str(&format!("memo_serve_timeouts_total {}\n", g(self.timeouts.load(Ordering::Relaxed))));
        out.push_str("# TYPE memo_serve_deadline_exceeded_total counter\n");
        out.push_str(&format!(
            "memo_serve_deadline_exceeded_total {}\n",
            g(self.deadline_exceeded.load(Ordering::Relaxed))
        ));
        out.push_str("# TYPE memo_serve_warms_total counter\n");
        out.push_str(&format!("memo_serve_warms_total {}\n", g(self.warms.load(Ordering::Relaxed))));
        out.push_str("# TYPE memo_store_io_errors_total counter\n");
        out.push_str(&format!(
            "memo_store_io_errors_total {}\n",
            g(self.store_io_errors.load(Ordering::Relaxed))
        ));
        out.push_str("# TYPE memo_store_retries_total counter\n");
        out.push_str(&format!(
            "memo_store_retries_total {}\n",
            g(self.store_retries.load(Ordering::Relaxed))
        ));

        // The disk-tier circuit breaker: 0 = closed (healthy), 1 =
        // half-open (probing), 2 = open (tier skipped).
        let breaker_state = match breaker.state {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        };
        out.push_str("# TYPE memo_tier_breaker_state gauge\n");
        out.push_str(&format!("memo_tier_breaker_state {breaker_state}\n"));
        out.push_str("# TYPE memo_tier_breaker_trips_total counter\n");
        out.push_str(&format!("memo_tier_breaker_trips_total {}\n", breaker.trips));
        out.push_str("# TYPE memo_tier_breaker_failures_total counter\n");
        out.push_str(&format!("memo_tier_breaker_failures_total {}\n", breaker.failures));
        out.push_str("# TYPE memo_tier_breaker_probes_total counter\n");
        out.push_str(&format!("memo_tier_breaker_probes_total {}\n", breaker.probes));
        out.push_str("# TYPE memo_serve_cache_hits_total counter\n");
        out.push_str(&format!("memo_serve_cache_hits_total {}\n", g(self.cache_hits.load(Ordering::Relaxed))));
        out.push_str("# TYPE memo_serve_cache_disk_hits_total counter\n");
        out.push_str(&format!(
            "memo_serve_cache_disk_hits_total {}\n",
            g(self.cache_disk_hits.load(Ordering::Relaxed))
        ));
        out.push_str("# TYPE memo_serve_cache_misses_total counter\n");
        out.push_str(&format!(
            "memo_serve_cache_misses_total {}\n",
            g(self.cache_misses.load(Ordering::Relaxed))
        ));
        out.push_str("# TYPE memo_serve_cache_entries gauge\n");
        out.push_str(&format!("memo_serve_cache_entries {}\n", serve_cache.len));
        out.push_str("# TYPE memo_serve_cache_bytes gauge\n");
        out.push_str(&format!("memo_serve_cache_bytes {}\n", serve_cache.approx_bytes));

        // The process-wide experiment result cache (memo-experiments).
        let exp = results::stats();
        out.push_str("# TYPE memo_experiments_cache_hits_total counter\n");
        out.push_str(&format!("memo_experiments_cache_hits_total {}\n", exp.hits));
        out.push_str("# TYPE memo_experiments_cache_misses_total counter\n");
        out.push_str(&format!("memo_experiments_cache_misses_total {}\n", exp.misses));
        out.push_str("# TYPE memo_experiments_cache_coalesced_total counter\n");
        out.push_str(&format!("memo_experiments_cache_coalesced_total {}\n", exp.coalesced));
        out.push_str("# TYPE memo_experiments_cache_entries gauge\n");
        out.push_str(&format!("memo_experiments_cache_entries {}\n", exp.len));

        // The persistent store, when one backs this server.
        out.push_str("# TYPE memo_store_attached gauge\n");
        out.push_str(&format!("memo_store_attached {}\n", u8::from(store.is_some())));
        if let Some(st) = store {
            for (name, value) in [
                ("memo_store_memtable_hits_total", st.memtable_hits),
                ("memo_store_segment_hits_total", st.segment_hits),
                ("memo_store_misses_total", st.misses),
                ("memo_store_writes_total", st.writes),
                ("memo_store_flushes_total", st.flushes),
                ("memo_store_compactions_total", st.compactions),
                ("memo_store_bytes_read_total", st.bytes_read),
                ("memo_store_bytes_written_total", st.bytes_written),
                ("memo_store_recovered_ops_total", st.recovered_ops),
                ("memo_store_flush_failures_total", st.flush_failures),
                ("memo_store_bloom_negatives_total", st.bloom_negatives),
                ("memo_store_bloom_false_positives_total", st.bloom_false_positives),
                ("memo_store_block_cache_hits_total", st.block_cache_hits),
                ("memo_store_block_cache_misses_total", st.block_cache_misses),
            ] {
                out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
            }
            for (name, value) in [
                ("memo_store_segments", st.segments),
                ("memo_store_segment_bytes", st.segment_bytes),
                ("memo_store_memtable_entries", st.memtable_entries),
                ("memo_store_memtable_bytes", st.memtable_bytes),
                ("memo_store_flush_queue_depth", st.flush_queue_depth),
                ("memo_store_flush_queue_peak", st.flush_queue_peak),
            ] {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
            }
            // Derived effectiveness ratios, precomputed so dashboards and
            // smoke tests need no PromQL. FP rate = false positives over
            // all absent-key filter verdicts (negatives blocked + false
            // positives let through): the share of screenable probes the
            // filter failed to block.
            #[allow(clippy::cast_precision_loss)]
            let fp_rate = {
                let screened = st.bloom_false_positives + st.bloom_negatives;
                if screened == 0 { 0.0 } else { st.bloom_false_positives as f64 / screened as f64 }
            };
            out.push_str("# TYPE memo_store_bloom_false_positive_rate gauge\n");
            out.push_str(&format!("memo_store_bloom_false_positive_rate {fp_rate:.6}\n"));
            #[allow(clippy::cast_precision_loss)]
            let hit_ratio = {
                let probes = st.block_cache_hits + st.block_cache_misses;
                if probes == 0 { 0.0 } else { st.block_cache_hits as f64 / probes as f64 }
            };
            out.push_str("# TYPE memo_store_block_cache_hit_ratio gauge\n");
            out.push_str(&format!("memo_store_block_cache_hit_ratio {hit_ratio:.6}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_experiments::cache::CacheStats;

    fn closed_breaker() -> TierBreakerStats {
        TierBreakerStats { state: BreakerState::Closed, trips: 0, failures: 0, probes: 0 }
    }

    fn render(m: &Metrics, queue_depth: usize, workers: usize, draining: bool) -> String {
        m.render(queue_depth, workers, draining, &CacheStats::default(), None, &closed_breaker())
    }

    #[test]
    fn observe_rolls_up_by_endpoint_and_class() {
        let m = Metrics::new();
        m.observe(Endpoint::Table, 200, CacheOutcome::Miss, 1500);
        m.observe(Endpoint::Table, 200, CacheOutcome::Hit, 30);
        m.observe(Endpoint::Figure, 200, CacheOutcome::Disk, 200);
        m.observe(Endpoint::Sweep, 400, CacheOutcome::Uncached, 90);
        m.observe(Endpoint::Other, 503, CacheOutcome::Uncached, 10);
        assert_eq!(m.total_requests(), 5);
        assert_eq!(m.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(m.cache_disk_hits.load(Ordering::Relaxed), 1);
        assert_eq!(m.cache_misses.load(Ordering::Relaxed), 1);

        let text = render(&m, 3, 4, false);
        assert!(text.contains("memo_serve_requests_total{endpoint=\"table\"} 2"));
        assert!(text.contains("memo_serve_responses_total{endpoint=\"sweep\",class=\"4xx\"} 1"));
        assert!(text.contains("memo_serve_responses_total{endpoint=\"other\",class=\"5xx\"} 1"));
        assert!(text.contains("memo_serve_queue_depth 3"));
        assert!(text.contains("memo_serve_workers 4"));
        assert!(text.contains("memo_serve_cache_hits_total 1"));
        assert!(text.contains("memo_serve_cache_disk_hits_total 1"));
        assert!(text.contains("memo_serve_latency_seconds{endpoint=\"table\",cache=\"hit\",quantile=\"0.5\"}"));
        assert!(text.contains("memo_serve_latency_seconds{endpoint=\"figure\",cache=\"disk\",quantile=\"0.5\"}"));
    }

    #[test]
    fn render_reports_draining_flag() {
        let m = Metrics::new();
        assert!(render(&m, 0, 1, true).contains("memo_serve_draining 1"));
        assert!(render(&m, 0, 1, false).contains("memo_serve_draining 0"));
    }

    #[test]
    fn render_exposes_cache_gauges_and_store_stats_when_attached() {
        let m = Metrics::new();
        let cache = CacheStats { len: 3, approx_bytes: 512, ..CacheStats::default() };
        let without = m.render(0, 1, false, &cache, None, &closed_breaker());
        assert!(without.contains("memo_serve_cache_entries 3"));
        assert!(without.contains("memo_serve_cache_bytes 512"));
        assert!(without.contains("memo_store_attached 0"));
        assert!(!without.contains("memo_store_segments"));

        let store =
            memo_store::StoreStats { segment_hits: 7, segments: 2, ..Default::default() };
        let with = m.render(0, 1, false, &cache, Some(&store), &closed_breaker());
        assert!(with.contains("memo_store_attached 1"));
        assert!(with.contains("memo_store_segment_hits_total 7"));
        assert!(with.contains("memo_store_segments 2"));
    }

    #[test]
    fn render_exposes_async_flush_bloom_and_block_cache_metrics() {
        let m = Metrics::new();
        let store = memo_store::StoreStats {
            flush_queue_depth: 2,
            flush_queue_peak: 3,
            flush_failures: 1,
            bloom_negatives: 30,
            bloom_false_positives: 10,
            block_cache_hits: 3,
            block_cache_misses: 1,
            ..Default::default()
        };
        let text = m.render(0, 1, false, &CacheStats::default(), Some(&store), &closed_breaker());
        assert!(text.contains("memo_store_flush_queue_depth 2"));
        assert!(text.contains("memo_store_flush_queue_peak 3"));
        assert!(text.contains("memo_store_flush_failures_total 1"));
        assert!(text.contains("memo_store_bloom_negatives_total 30"));
        assert!(text.contains("memo_store_bloom_false_positives_total 10"));
        assert!(text.contains("memo_store_block_cache_hits_total 3"));
        assert!(text.contains("memo_store_block_cache_misses_total 1"));
        assert!(text.contains("memo_store_bloom_false_positive_rate 0.250000"));
        assert!(text.contains("memo_store_block_cache_hit_ratio 0.750000"));

        // Zero activity must render 0, not NaN.
        let idle = memo_store::StoreStats::default();
        let text = m.render(0, 1, false, &CacheStats::default(), Some(&idle), &closed_breaker());
        assert!(text.contains("memo_store_bloom_false_positive_rate 0.000000"));
        assert!(text.contains("memo_store_block_cache_hit_ratio 0.000000"));
    }

    #[test]
    fn render_exposes_breaker_and_resilience_counters() {
        let m = Metrics::new();
        m.store_io_errors.fetch_add(4, Ordering::Relaxed);
        m.store_retries.fetch_add(9, Ordering::Relaxed);
        m.deadline_exceeded.fetch_add(2, Ordering::Relaxed);
        let tripped =
            TierBreakerStats { state: BreakerState::Open, trips: 1, failures: 5, probes: 0 };
        let text = m.render(0, 1, false, &CacheStats::default(), None, &tripped);
        assert!(text.contains("memo_store_io_errors_total 4"));
        assert!(text.contains("memo_store_retries_total 9"));
        assert!(text.contains("memo_serve_deadline_exceeded_total 2"));
        assert!(text.contains("memo_tier_breaker_state 2"));
        assert!(text.contains("memo_tier_breaker_trips_total 1"));
        assert!(text.contains("memo_tier_breaker_failures_total 5"));

        let half =
            TierBreakerStats { state: BreakerState::HalfOpen, trips: 1, failures: 5, probes: 1 };
        let text = m.render(0, 1, false, &CacheStats::default(), None, &half);
        assert!(text.contains("memo_tier_breaker_state 1"));
        assert!(text.contains("memo_tier_breaker_probes_total 1"));
    }
}

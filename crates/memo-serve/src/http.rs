//! A minimal, strict HTTP/1.1 message layer over `std` only.
//!
//! Only what the service needs: request parsing with hard limits
//! (request-line length, header count/bytes, body size), percent-decoded
//! paths and query parameters, pipelining (parse one message, report how
//! many bytes it consumed, leave the rest), and response serialization
//! with explicit `Content-Length` and `Connection` headers.
//!
//! The parser is a pure function over a byte buffer — no sockets — so the
//! unit tests cover malformed inputs without a server in the loop.

use std::fmt;
use std::io::{self, Write};

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Largest accepted header block (request line + all header lines).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Most headers accepted in one request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body.
pub const MAX_BODY: usize = 64 * 1024;

/// Why a request could not be parsed. Every variant maps to a 4xx.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line is not `METHOD TARGET VERSION`.
    BadRequestLine(String),
    /// The version is not HTTP/1.0 or HTTP/1.1.
    UnsupportedVersion(String),
    /// The request line exceeds [`MAX_REQUEST_LINE`].
    RequestLineTooLong,
    /// The header block exceeds [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// More than [`MAX_HEADERS`] header lines.
    TooManyHeaders,
    /// A header line has no `:` separator or an empty name.
    BadHeader(String),
    /// `Content-Length` is present but not a valid integer.
    BadContentLength(String),
    /// The declared body exceeds [`MAX_BODY`].
    BodyTooLarge(usize),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequestLine(l) => write!(f, "malformed request line {l:?}"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            HttpError::RequestLineTooLong => {
                write!(f, "request line exceeds {MAX_REQUEST_LINE} bytes")
            }
            HttpError::HeadersTooLarge => write!(f, "header block exceeds {MAX_HEADER_BYTES} bytes"),
            HttpError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
            HttpError::BadHeader(l) => write!(f, "malformed header line {l:?}"),
            HttpError::BadContentLength(v) => write!(f, "bad content-length {v:?}"),
            HttpError::BodyTooLarge(n) => write!(f, "declared body of {n} bytes exceeds {MAX_BODY}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `HEAD`, …).
    pub method: String,
    /// The request target exactly as the client sent it (undecoded path
    /// plus query). The router tier forwards this verbatim so a proxied
    /// request reaches the backend byte-for-byte.
    pub raw_target: String,
    /// Percent-decoded path (`/v1/table/5`).
    pub path: String,
    /// Decoded query parameters in request order.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in request order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection persists after this exchange.
    pub keep_alive: bool,
}

impl Request {
    /// First header value for lowercase `name`.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First query parameter named `name`.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Decode `%XX` escapes; when `plus_is_space`, also `+` → space (query
/// components). Invalid escapes pass through literally.
fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k, true), percent_decode(v, true))
        })
        .collect()
}

/// Try to parse one request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a complete message is
/// present (`consumed` bytes belong to it — pipelined followers remain),
/// `Ok(None)` when more bytes are needed (incomplete headers or a
/// truncated body), and `Err` when the prefix can never become a valid
/// request.
///
/// # Errors
///
/// Any [`HttpError`]; the caller should answer 400/431/413 and close.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    // Locate the end of the header block.
    let Some(header_end) = find(buf, b"\r\n\r\n") else {
        if buf.len() > MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        // While incomplete, still bound the request line early so a
        // garbage firehose is rejected before it fills the buffer.
        if find(buf, b"\r\n").is_none() && buf.len() > MAX_REQUEST_LINE {
            return Err(HttpError::RequestLineTooLong);
        }
        return Ok(None);
    };
    if header_end + 4 > MAX_HEADER_BYTES {
        return Err(HttpError::HeadersTooLarge);
    }
    let head =
        std::str::from_utf8(&buf[..header_end]).map_err(|_| HttpError::BadHeader(String::new()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_REQUEST_LINE {
        return Err(HttpError::RequestLineTooLong);
    }

    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequestLine(request_line.to_string()));
    };
    if method.is_empty() || target.is_empty() {
        return Err(HttpError::BadRequestLine(request_line.to_string()));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.to_string()));
    }

    let mut headers = Vec::new();
    for line in lines {
        if headers.len() == MAX_HEADERS {
            return Err(HttpError::TooManyHeaders);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadHeader(line.to_string()));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader(line.to_string()));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v.parse::<usize>().map_err(|_| HttpError::BadContentLength(v.clone()))?,
    };
    if content_length > MAX_BODY {
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let body_start = header_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None); // truncated body: wait for the rest (or time out)
    }
    let body = buf[body_start..body_start + content_length].to_vec();

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match (version, connection.as_deref()) {
        (_, Some("close")) => false,
        ("HTTP/1.0", other) => other == Some("keep-alive"),
        _ => true,
    };

    Ok(Some((
        Request {
            method: method.to_string(),
            raw_target: target.to_string(),
            path: percent_decode(raw_path, false),
            query: parse_query(raw_query),
            headers,
            body,
            keep_alive,
        },
        body_start + content_length,
    )))
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// A response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Length`/`Connection`/`Content-Type`.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` (default `text/plain; charset=utf-8`).
    pub content_type: &'static str,
}

impl Response {
    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// Append a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Standard reason phrase for this status.
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }

    /// Serialize onto `w`. `head_only` omits the body (HEAD requests)
    /// while keeping the true `Content-Length`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool, head_only: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        if !head_only {
            w.write_all(&self.body)?;
        }
        w.flush()
    }

    /// The response a parse failure earns: 4xx, connection closed.
    #[must_use]
    pub fn from_parse_error(err: &HttpError) -> Self {
        let status = match err {
            HttpError::RequestLineTooLong | HttpError::HeadersTooLarge | HttpError::TooManyHeaders => 431,
            HttpError::BodyTooLarge(_) => 413,
            _ => 400,
        };
        Response::text(status, format!("{err}\n"))
    }
}

/// One response read off the wire by a client (the load generator, the
/// router's backend proxy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with lowercased names, in response order.
    pub headers: Vec<(String, String)>,
    /// The full body (`content-length` bytes).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header value for lowercase `name`.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the server will keep the connection open after this
    /// exchange (HTTP/1.1 semantics: persistent unless `close`).
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Read exactly one HTTP response off `stream`: status line, headers,
/// then a `content-length`-delimited body. `scratch` is a reusable
/// buffer; its contents are clobbered. Both the load generator and the
/// cluster router's backend proxy read responses through here, so they
/// agree on header handling (names lowercased, values trimmed — header
/// *name* case on the wire never matters).
///
/// # Errors
///
/// I/O errors from the stream, `UnexpectedEof` when the peer closes
/// mid-message, `InvalidData` on an unparsable status line or
/// `content-length`.
pub fn read_response(stream: &mut impl io::Read, scratch: &mut Vec<u8>) -> io::Result<ClientResponse> {
    scratch.clear();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find(scratch, b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in headers"));
        }
        scratch.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&scratch[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        }
        headers.push((name, value));
    }
    let body_start = header_end + 4;
    let mut body = scratch[body_start.min(scratch.len())..].to_vec();
    while body.len() < content_length {
        let take = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..take])?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(ClientResponse { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(raw: &str) -> (Request, usize) {
        parse_request(raw.as_bytes()).expect("parses").expect("complete")
    }

    #[test]
    fn parses_simple_get() {
        let (req, used) = parse_ok("GET /v1/table/5 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/table/5");
        assert!(req.query.is_empty());
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive);
        assert_eq!(used, "GET /v1/table/5 HTTP/1.1\r\nHost: x\r\n\r\n".len());
    }

    #[test]
    fn decodes_query_and_path() {
        let (req, _) =
            parse_ok("GET /v1%2Fsweep?entries=8%2C16&label=a+b HTTP/1.1\r\n\r\n");
        assert_eq!(req.path, "/v1/sweep");
        assert_eq!(req.query_param("entries"), Some("8,16"));
        assert_eq!(req.query_param("label"), Some("a b"));
    }

    #[test]
    fn incomplete_returns_none() {
        assert_eq!(parse_request(b"GET / HTTP/1.1\r\nHost:"), Ok(None));
        assert_eq!(parse_request(b""), Ok(None));
    }

    #[test]
    fn malformed_request_line_rejected() {
        assert!(matches!(
            parse_request(b"GET/HTTP1.1\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse_request(b"GET /x HTTP/2.0\r\n\r\n"),
            Err(HttpError::UnsupportedVersion(_))
        ));
        assert!(matches!(
            parse_request(b"GET /x HTTP/1.1 extra\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
    }

    #[test]
    fn oversized_headers_rejected_even_when_incomplete() {
        // No terminator in sight and already past the cap: reject now.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 1));
        assert_eq!(parse_request(&raw), Err(HttpError::HeadersTooLarge));

        let raw = vec![b'x'; MAX_REQUEST_LINE + 2];
        assert_eq!(parse_request(&raw), Err(HttpError::RequestLineTooLong));
    }

    #[test]
    fn too_many_headers_rejected() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            raw.push_str(&format!("h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(parse_request(raw.as_bytes()), Err(HttpError::TooManyHeaders));
    }

    #[test]
    fn header_without_colon_rejected() {
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (first, used) = parse_request(raw).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        let (second, used2) = parse_request(&raw[used..]).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(used + used2, raw.len());
    }

    #[test]
    fn body_parsing_and_truncation() {
        let full = b"POST /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
        let (req, used) = parse_request(full).unwrap().unwrap();
        assert_eq!(req.body, b"hello");
        assert_eq!(used, full.len());

        // Truncated body: not an error, just incomplete.
        assert_eq!(parse_request(&full[..full.len() - 2]), Ok(None));

        assert!(matches!(
            parse_request(b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n"),
            Err(HttpError::BadContentLength(_))
        ));
        let huge = format!("POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse_request(huge.as_bytes()), Err(HttpError::BodyTooLarge(_))));
    }

    #[test]
    fn keep_alive_rules() {
        let (req, _) = parse_ok("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive);
        let (req, _) = parse_ok("GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive);
        let (req, _) = parse_ok("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_header_is_case_insensitive_in_name_and_value() {
        // RFC 9110: header field names are case-insensitive, and the
        // Connection header's tokens are too. Any casing must close.
        for raw in [
            "GET / HTTP/1.1\r\nCONNECTION: CLOSE\r\n\r\n",
            "GET / HTTP/1.1\r\ncOnNeCtIoN: Close\r\n\r\n",
            "GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n",
        ] {
            let (req, _) = parse_ok(raw);
            if raw.contains("1.0") {
                assert!(req.keep_alive, "mixed-case keep-alive must persist: {raw:?}");
            } else {
                assert!(!req.keep_alive, "mixed-case close must close: {raw:?}");
            }
        }
    }

    #[test]
    fn request_line_at_exactly_the_431_boundary_is_accepted() {
        // A request line of exactly MAX_REQUEST_LINE bytes parses; one
        // byte more earns the 431 mapping. The boundary must not be
        // off-by-one in either direction.
        let overhead = "GET / HTTP/1.1".len();
        let pad = MAX_REQUEST_LINE - overhead; // line length is overhead + pad
        let at_limit = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(pad));
        let (req, _) = parse_ok(&at_limit);
        assert_eq!(req.path.len(), pad + 1, "path carries the padding");

        let over = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(pad + 1));
        assert_eq!(parse_request(over.as_bytes()), Err(HttpError::RequestLineTooLong));
        assert_eq!(
            Response::from_parse_error(&HttpError::RequestLineTooLong).status,
            431,
            "an oversized request line maps to 431"
        );

        // The incomplete-prefix guard has the same boundary: a buffer of
        // exactly MAX_REQUEST_LINE bytes with no CRLF yet is still
        // "waiting for more", one more byte is a rejection.
        let exact = vec![b'x'; MAX_REQUEST_LINE];
        assert_eq!(parse_request(&exact), Ok(None));
        let over = vec![b'x'; MAX_REQUEST_LINE + 1];
        assert_eq!(parse_request(&over), Err(HttpError::RequestLineTooLong));
    }

    #[test]
    fn raw_target_preserves_the_undecoded_wire_form() {
        let (req, _) = parse_ok("GET /v1%2Ftable/5?scale=2 HTTP/1.1\r\n\r\n");
        assert_eq!(req.raw_target, "/v1%2Ftable/5?scale=2", "undecoded, query attached");
        assert_eq!(req.path, "/v1/table/5", "decoded path unchanged");
    }

    #[test]
    fn read_response_parses_status_headers_and_body() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nX-Memo-Cache: hit\r\ncontent-length: 5\r\n\r\nhello";
        let mut scratch = Vec::new();
        let resp = read_response(&mut &wire[..], &mut scratch).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hello");
        // Mixed-case names on the wire land lowercased.
        assert_eq!(resp.header("x-memo-cache"), Some("hit"));
        assert_eq!(resp.header("content-type"), Some("text/plain"));
        assert!(resp.keep_alive());

        let wire = b"HTTP/1.1 503 Service Unavailable\r\nRETRY-AFTER: 2\r\nConnection: CLOSE\r\ncontent-length: 0\r\n\r\n";
        let resp = read_response(&mut &wire[..], &mut scratch).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("2"), "Retry-After readable regardless of case");
        assert!(!resp.keep_alive(), "Connection: CLOSE closes regardless of case");
    }

    #[test]
    fn read_response_fails_cleanly_on_truncation_and_garbage() {
        let mut scratch = Vec::new();
        let torn = b"HTTP/1.1 200 OK\r\ncontent-length: 10\r\n\r\nhal";
        let err = read_response(&mut &torn[..], &mut scratch).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let garbage = b"NOT HTTP AT ALL\r\n\r\n";
        let err = read_response(&mut &garbage[..], &mut scratch).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn response_serializes_with_length_and_connection() {
        let mut out = Vec::new();
        Response::text(200, "hi\n")
            .with_header("x-memo-cache", "hit")
            .write_to(&mut out, true, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 3\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-memo-cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\nhi\n"));

        let mut head = Vec::new();
        Response::text(200, "hi\n").write_to(&mut head, false, true).unwrap();
        let text = String::from_utf8(head).unwrap();
        assert!(text.contains("content-length: 3\r\n"), "HEAD keeps true length");
        assert!(text.ends_with("\r\n\r\n"), "HEAD omits the body");
        assert!(text.contains("connection: close\r\n"));
    }
}

//! A bounded multi-producer/multi-consumer queue with drain semantics.
//!
//! `try_push` never blocks: when the queue is at capacity the item comes
//! straight back so the caller can shed load (the server answers 503).
//! `pop` blocks until an item arrives or the queue is closed *and*
//! drained — closing stops new work but lets workers finish what was
//! already accepted, which is exactly the graceful-shutdown contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Bounded::try_push`] returned the item instead of queueing it.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; shed load.
    Full(T),
    /// The queue has been closed; no new work is accepted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded FIFO shared between the accept loop and the worker pool.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero — a zero-slot queue rejects everything.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        Bounded {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close) — both hand the item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while the queue is open and empty. Returns
    /// `None` only once the queue is closed *and* fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Stop accepting new items; wake all blocked consumers. Items
    /// already queued are still handed out by [`pop`](Self::pop).
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        // Already-accepted work still comes out, in order.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Bounded::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(7).unwrap();
        q.close();
        let mut got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(Bounded::new(8));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut sent = 0u64;
                    for i in 0..100u64 {
                        let v = p * 1000 + i;
                        let mut item = v;
                        // Spin on Full: the consumers are draining.
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    item = back;
                                    thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                        sent += v;
                    }
                    sent
                })
            })
            .collect();
        let sent: u64 = producers.into_iter().map(|h| h.join().unwrap()).sum();
        q.close();
        let got: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(sent, got);
    }
}

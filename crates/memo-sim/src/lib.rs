//! # memo-sim
//!
//! Cycle-accounting simulation substrate for the ASPLOS'98 memoing
//! reproduction — the stand-in for the paper's Shade-based measurement
//! stack (§3.1, §3.3).
//!
//! The paper computes speedups by counting **total cycles executed by all
//! instructions**: the instruction-level simulator was "enhanced to
//! incorporate a memory hierarchy of two caches and take into account
//! annulled instructions"; multiple issue and pipelining are deliberately
//! *not* modelled. This crate reproduces exactly that measurement model:
//!
//! * [`CpuModel`] — per-unit instruction latencies, including the six
//!   processors of Table 1 and the two synthetic "fast"/"slow" FP profiles
//!   used by Tables 11–13;
//! * [`Cache`] / [`MemoryHierarchy`] — a two-level data-cache model
//!   charging hit/miss cycles per access;
//! * [`Event`] / [`EventSink`] — the dynamic instruction stream emitted by
//!   instrumented workloads (crate `memo-workloads`) and by the `memo-isa`
//!   interpreter;
//! * [`MemoBank`] — one memo table per multi-cycle operation kind,
//!   attached to the execution stage;
//! * [`CycleAccountant`] — consumes an event stream once and produces
//!   *both* the baseline (no MEMO-TABLE) and memoized cycle totals, plus
//!   per-unit breakdowns for Amdahl's-law analysis;
//! * [`amdahl`] — the FE / SE / speedup arithmetic of §3.3.
//!
//! ## Example: measuring a tiny kernel
//!
//! ```
//! use memo_sim::{CpuModel, CycleAccountant, EventSink, MemoBank};
//!
//! let mut acc = CycleAccountant::new(
//!     CpuModel::paper_slow(),        // 5-cycle fmul, 39-cycle fdiv
//!     memo_sim::MemoryHierarchy::typical_1997(),
//!     MemoBank::paper_default(),     // 32-entry 4-way tables
//! );
//!
//! // A loop dividing the same pixel values over and over.
//! for i in 0..100u64 {
//!     acc.load(8 * (i % 16));                        // low-entropy data
//!     let _ = acc.fdiv(f64::from(i as u32 % 16), 3.0);
//!     acc.branch();
//! }
//!
//! let report = acc.report();
//! assert!(report.speedup_measured() > 1.5, "memoing pays off on repeated divisions");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod amdahl;
mod accountant;
mod pipeline;
mod issue;
mod bank;
mod cache;
mod cpu;
mod event;
mod memoized;
mod sweep;
mod trace;

pub use accountant::{CycleAccountant, CycleBreakdown, CycleReport};
pub use bank::MemoBank;
pub use cache::{Cache, CacheConfig, CacheStats, MemoryHierarchy};
pub use cpu::CpuModel;
pub use issue::{compare_divider_farms, DividerFarm, FarmComparison, FarmResult};
pub use memoized::MemoizedSink;
pub use pipeline::{PipelineModel, PipelineReport};
pub use sweep::sweep_kind;
pub use event::{CountingSink, Event, EventSink, InstrMix, NullSink, TraceBuffer};
pub use memo_table::{batch_width, BatchOutcome, OpBatch};
pub use trace::{EventTrace, OpIter, OpTrace, TraceDecodeError, TraceRecorderSink, OP_TRACE_VERSION};

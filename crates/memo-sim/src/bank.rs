//! A bank of memo tables, one per multi-cycle operation kind.
//!
//! §3.1: "The simulated system consists of MEMO-TABLES adjacent to the
//! integer multiplier, fp multiplier and fp divider." [`MemoBank`] is that
//! collection, with an optional fourth table for square root (the paper's
//! first named future extension).

use memo_table::{
    BatchOutcome, Executed, InfiniteMemoTable, MemoConfig, MemoStats, MemoTable, Memoizer, Op,
    OpBatch, OpKind, Outcome,
};

/// One memo table per operation kind (any kind may be left un-memoized).
///
/// With [`MemoBank::with_circuit_breaker`], each table is additionally
/// watched for detected soft errors: once a table's protection logic has
/// flagged the configured number of faults, the bank stops consulting it
/// (degraded mode — every operation of that kind runs at full latency),
/// modelling a safety controller that refuses to trust a failing SRAM.
pub struct MemoBank {
    tables: [Option<Box<dyn Memoizer>>; 4],
    /// Detected-fault count at which a table is taken offline (0 = never).
    breaker_threshold: u64,
    /// `true` once the breaker has tripped for the slot.
    tripped: [bool; 4],
}

impl std::fmt::Debug for MemoBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kinds: Vec<&str> = OpKind::ALL
            .iter()
            .filter(|k| self.tables[Self::slot(**k)].is_some())
            .map(|k| k.label())
            .collect();
        write!(f, "MemoBank({})", kinds.join(", "))
    }
}

impl MemoBank {
    fn slot(kind: OpKind) -> usize {
        match kind {
            OpKind::IntMul => 0,
            OpKind::FpMul => 1,
            OpKind::FpDiv => 2,
            OpKind::FpSqrt => 3,
        }
    }

    /// No tables at all — the baseline machine.
    #[must_use]
    pub fn none() -> Self {
        MemoBank {
            tables: [None, None, None, None],
            breaker_threshold: 0,
            tripped: [false; 4],
        }
    }

    /// The paper's simulated system: 32-entry 4-way tables on the integer
    /// multiplier, fp multiplier, and fp divider.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::uniform(
            MemoConfig::paper_default(),
            &[OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv],
        )
    }

    /// Identical finite tables on each of `kinds`.
    #[must_use]
    pub fn uniform(cfg: MemoConfig, kinds: &[OpKind]) -> Self {
        let mut bank = Self::none();
        for &kind in kinds {
            bank.tables[Self::slot(kind)] = Some(Box::new(MemoTable::new(cfg)));
        }
        bank
    }

    /// "Infinitely large, fully associative" tables on each of `kinds`.
    #[must_use]
    pub fn infinite(kinds: &[OpKind]) -> Self {
        let mut bank = Self::none();
        for &kind in kinds {
            bank.tables[Self::slot(kind)] = Some(Box::new(InfiniteMemoTable::new()));
        }
        bank
    }

    /// Attach a custom memoizer to one kind (replacing any existing one).
    #[must_use]
    pub fn with_table(mut self, kind: OpKind, memoizer: impl Memoizer + 'static) -> Self {
        self.tables[Self::slot(kind)] = Some(Box::new(memoizer));
        self.tripped[Self::slot(kind)] = false;
        self
    }

    /// Trip a table offline once its protection logic has detected
    /// `threshold` faults (0 disables the breaker, the default).
    #[must_use]
    pub fn with_circuit_breaker(mut self, threshold: u64) -> Self {
        self.breaker_threshold = threshold;
        self
    }

    /// `true` if `kind` has a table attached.
    #[must_use]
    pub fn memoizes(&self, kind: OpKind) -> bool {
        self.tables[Self::slot(kind)].is_some()
    }

    /// `true` once the circuit breaker has taken `kind`'s table offline.
    #[must_use]
    pub fn breaker_tripped(&self, kind: OpKind) -> bool {
        self.tripped[Self::slot(kind)]
    }

    /// Extra cycles charged per served hit by `kind`'s table (its
    /// protection policy's verify/correct latency; 0 without a table).
    #[must_use]
    pub fn hit_penalty(&self, kind: OpKind) -> u32 {
        self.tables[Self::slot(kind)].as_ref().map_or(0, |t| t.hit_penalty())
    }

    /// Execute `op` through its table if one is attached and not tripped,
    /// natively otherwise (reported as a miss-like full-latency execution).
    pub fn execute(&mut self, op: Op) -> Executed {
        let slot = Self::slot(op.kind());
        if self.tripped[slot] {
            return Executed { value: op.compute(), outcome: memo_table::Outcome::Miss };
        }
        match &mut self.tables[slot] {
            Some(table) => {
                let executed = table.execute(op);
                if self.breaker_threshold > 0
                    && table.stats().faults_detected >= self.breaker_threshold
                {
                    self.tripped[slot] = true;
                }
                executed
            }
            None => Executed { value: op.compute(), outcome: memo_table::Outcome::Miss },
        }
    }

    /// Execute a same-kind operand tile through its table, returning the
    /// hit/trivial tally — the bulk path used by trace replay and cycle
    /// accounting (the per-op values are recomputable and discarded).
    ///
    /// Observably identical to [`execute`](Self::execute) per lane: an
    /// untabled or tripped kind contributes nothing to the tally, and an
    /// armed circuit breaker is checked op-by-op so a mid-batch trip stops
    /// consulting the table on exactly the lane the scalar loop would.
    pub fn execute_batch(&mut self, batch: &OpBatch<'_>) -> BatchOutcome {
        let slot = Self::slot(batch.kind());
        if self.tripped[slot] {
            return BatchOutcome::default();
        }
        let Some(table) = &mut self.tables[slot] else {
            return BatchOutcome::default();
        };
        if self.breaker_threshold == 0 {
            return table.execute_batch(batch);
        }
        let mut out = BatchOutcome::default();
        let mut tripped = false;
        for i in 0..batch.len() {
            match table.execute(batch.op(i)).outcome {
                Outcome::Hit => out.hits += 1,
                Outcome::Trivial => out.trivials += 1,
                Outcome::Filtered | Outcome::Miss => {}
            }
            if table.stats().faults_detected >= self.breaker_threshold {
                tripped = true;
                break;
            }
        }
        if tripped {
            self.tripped[slot] = true;
        }
        out
    }

    /// Statistics of the table attached to `kind`.
    #[must_use]
    pub fn stats(&self, kind: OpKind) -> Option<MemoStats> {
        self.tables[Self::slot(kind)].as_ref().map(|t| t.stats())
    }

    /// Lookup hit ratio of `kind`'s table (over the operations that probed
    /// the table, i.e. the paper's "non-trivial" ratio under the default
    /// policy).
    #[must_use]
    pub fn hit_ratio(&self, kind: OpKind) -> Option<f64> {
        self.stats(kind).map(|s| s.lookup_hit_ratio())
    }

    /// Clear all tables, their statistics, and any tripped breakers.
    pub fn reset(&mut self) {
        for table in self.tables.iter_mut().flatten() {
            table.reset();
        }
        self.tripped = [false; 4];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_table::Outcome;

    #[test]
    fn paper_default_covers_three_units() {
        let bank = MemoBank::paper_default();
        assert!(bank.memoizes(OpKind::IntMul));
        assert!(bank.memoizes(OpKind::FpMul));
        assert!(bank.memoizes(OpKind::FpDiv));
        assert!(!bank.memoizes(OpKind::FpSqrt));
    }

    #[test]
    fn unmemoized_kinds_always_miss() {
        let mut bank = MemoBank::none();
        for _ in 0..3 {
            let e = bank.execute(Op::FpDiv(9.0, 3.0));
            assert_eq!(e.outcome, Outcome::Miss);
            assert_eq!(e.value.as_f64(), 3.0);
        }
        assert_eq!(bank.stats(OpKind::FpDiv), None);
    }

    #[test]
    fn memoized_kinds_hit_on_reuse() {
        let mut bank = MemoBank::paper_default();
        assert_eq!(bank.execute(Op::FpDiv(9.0, 4.0)).outcome, Outcome::Miss);
        assert_eq!(bank.execute(Op::FpDiv(9.0, 4.0)).outcome, Outcome::Hit);
        assert_eq!(bank.hit_ratio(OpKind::FpDiv), Some(0.5));
    }

    #[test]
    fn tables_are_independent_per_kind() {
        let mut bank = MemoBank::paper_default();
        bank.execute(Op::FpMul(3.0, 3.0));
        // The divider's table must not see the multiplier's entry.
        assert_eq!(bank.execute(Op::FpDiv(3.0, 3.0)).outcome, Outcome::Miss);
        assert_eq!(bank.stats(OpKind::FpMul).unwrap().insertions, 1);
        assert_eq!(bank.stats(OpKind::FpDiv).unwrap().insertions, 1);
    }

    #[test]
    fn infinite_bank_retains_everything() {
        let mut bank = MemoBank::infinite(&[OpKind::FpDiv]);
        for i in 0..1000 {
            bank.execute(Op::FpDiv(f64::from(i) + 2.0, 3.0));
        }
        assert_eq!(bank.execute(Op::FpDiv(2.0, 3.0)).outcome, Outcome::Hit);
    }

    #[test]
    fn with_table_attaches_sqrt() {
        let mut bank = MemoBank::paper_default()
            .with_table(OpKind::FpSqrt, MemoTable::new(MemoConfig::paper_default()));
        assert!(bank.memoizes(OpKind::FpSqrt));
        bank.execute(Op::FpSqrt(2.0));
        assert_eq!(bank.execute(Op::FpSqrt(2.0)).outcome, Outcome::Hit);
    }

    #[test]
    fn reset_clears_all() {
        let mut bank = MemoBank::paper_default();
        bank.execute(Op::FpDiv(9.0, 4.0));
        bank.reset();
        assert_eq!(bank.stats(OpKind::FpDiv).unwrap(), MemoStats::new());
        assert_eq!(bank.execute(Op::FpDiv(9.0, 4.0)).outcome, Outcome::Miss);
    }

    #[test]
    fn debug_lists_kinds() {
        let bank = MemoBank::paper_default();
        let s = format!("{bank:?}");
        assert!(s.contains("imul") && s.contains("fdiv"));
    }

    #[test]
    fn hit_penalty_reflects_table_protection() {
        use memo_table::Protection;
        let bank = MemoBank::paper_default().with_table(
            OpKind::FpDiv,
            MemoTable::new(
                MemoConfig::builder(32)
                    .protection(Protection::VerifyOnHit { verify_cycles: 4 })
                    .build()
                    .unwrap(),
            ),
        );
        assert_eq!(bank.hit_penalty(OpKind::FpDiv), 4);
        assert_eq!(bank.hit_penalty(OpKind::FpMul), 0);
        assert_eq!(bank.hit_penalty(OpKind::FpSqrt), 0, "no table, no penalty");
    }

    #[test]
    fn circuit_breaker_takes_a_faulty_table_offline() {
        use memo_table::{FaultConfig, FaultInjector, Protection};
        let cfg = MemoConfig::builder(32).protection(Protection::ParityDetect).build().unwrap();
        let table = MemoTable::new(cfg)
            .with_fault_injector(FaultInjector::new(FaultConfig::single_bit(7, 0.8)));
        let mut bank =
            MemoBank::none().with_table(OpKind::FpDiv, table).with_circuit_breaker(3);
        for i in 0..500 {
            bank.execute(Op::FpDiv(f64::from(i % 8) + 2.0, 3.0));
        }
        assert!(bank.breaker_tripped(OpKind::FpDiv));
        let detected_at_trip = bank.stats(OpKind::FpDiv).unwrap().faults_detected;
        assert!(detected_at_trip >= 3);
        // Degraded mode: the table is no longer consulted.
        bank.execute(Op::FpDiv(2.0, 3.0));
        bank.execute(Op::FpDiv(2.0, 3.0));
        assert_eq!(bank.stats(OpKind::FpDiv).unwrap().faults_detected, detected_at_trip);
        // Reset re-arms the breaker.
        bank.reset();
        assert!(!bank.breaker_tripped(OpKind::FpDiv));
    }

    #[test]
    fn breaker_never_trips_without_faults() {
        let mut bank = MemoBank::paper_default().with_circuit_breaker(1);
        for i in 0..1000 {
            bank.execute(Op::FpDiv(f64::from(i % 8) + 2.0, 3.0));
        }
        assert!(!bank.breaker_tripped(OpKind::FpDiv));
    }
}

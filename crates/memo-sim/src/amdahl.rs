//! Amdahl's-law arithmetic (§3.3).
//!
//! The paper computes application speedup from two factors:
//!
//! * **FE** (*Fraction Enhanced*) — the fraction of baseline cycles spent
//!   in the enhanced unit(s);
//! * **SE** (*Speedup Enhanced*) — how much faster the enhanced unit is
//!   when used: for a unit of latency `dc` with memo hit ratio `hr`,
//!   `SE = dc / ((1 − hr)·dc + hr)`.
//!
//! Then `T_new = T_old · ((1 − FE) + FE / SE)`.

/// Speedup from one enhancement: `1 / ((1 − fe) + fe / se)`.
///
/// # Panics
///
/// Panics if `fe` is outside `[0, 1]` or `se` is not positive.
#[must_use]
pub fn speedup(fe: f64, se: f64) -> f64 {
    assert!((0.0..=1.0).contains(&fe), "FE must be a fraction, got {fe}");
    assert!(se > 0.0, "SE must be positive, got {se}");
    1.0 / ((1.0 - fe) + fe / se)
}

/// Speedup from several independent enhancements `(fe, se)` applied at
/// once (generalized Amdahl): `1 / ((1 − Σfe_i) + Σ(fe_i / se_i))`.
///
/// # Panics
///
/// Panics if the fractions sum past 1 or any part is invalid.
#[must_use]
pub fn speedup_multi(parts: &[(f64, f64)]) -> f64 {
    let mut fe_total = 0.0;
    let mut scaled = 0.0;
    for &(fe, se) in parts {
        assert!((0.0..=1.0).contains(&fe), "FE must be a fraction, got {fe}");
        assert!(se > 0.0, "SE must be positive, got {se}");
        fe_total += fe;
        scaled += fe / se;
    }
    assert!(fe_total <= 1.0 + 1e-9, "enhanced fractions sum to {fe_total} > 1");
    1.0 / ((1.0 - fe_total) + scaled)
}

/// *Speedup Enhanced* of a memoized unit: `dc / ((1 − hr)·dc + hr)` where
/// `dc` is the unit's conventional latency and `hr` the hit ratio.
///
/// # Panics
///
/// Panics if `dc < 1` or `hr` is outside `[0, 1]`.
#[must_use]
pub fn speedup_enhanced(dc: f64, hr: f64) -> f64 {
    assert!(dc >= 1.0, "latency must be at least one cycle, got {dc}");
    assert!((0.0..=1.0).contains(&hr), "hit ratio must be a fraction, got {hr}");
    dc / ((1.0 - hr) * dc + hr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn se_matches_paper_table11_rows() {
        // Table 11 (13-cycle division): venhance hr=.12 → SE 1.12;
        // vspatial hr=.94 → SE 7.55; vgauss hr=.79 → SE 3.69.
        assert!((speedup_enhanced(13.0, 0.12) - 1.12).abs() < 0.005);
        assert!((speedup_enhanced(13.0, 0.94) - 7.55).abs() < 0.02);
        assert!((speedup_enhanced(13.0, 0.79) - 3.69).abs() < 0.02);
        // 39-cycle rows: vspatial → 11.89, vgauss → 4.34.
        assert!((speedup_enhanced(39.0, 0.94) - 11.89).abs() < 0.05);
        assert!((speedup_enhanced(39.0, 0.79) - 4.34).abs() < 0.02);
    }

    #[test]
    fn total_speedup_matches_paper_rows() {
        // Table 11: vgpwl FE=.208, SE=2.15 → speedup 1.13.
        assert!((speedup(0.208, 2.15) - 1.125).abs() < 0.01);
        // Table 11 @39 cycles: vspatial FE=.252, SE=11.89 → 1.30.
        assert!((speedup(0.252, 11.89) - 1.30).abs() < 0.01);
    }

    #[test]
    fn no_enhancement_means_no_speedup() {
        assert_eq!(speedup(0.0, 5.0), 1.0);
        assert_eq!(speedup_enhanced(13.0, 0.0), 1.0);
        assert_eq!(speedup_multi(&[]), 1.0);
    }

    #[test]
    fn perfect_hit_ratio_gives_full_unit_speedup() {
        assert!((speedup_enhanced(39.0, 1.0) - 39.0).abs() < 1e-12);
    }

    #[test]
    fn multi_reduces_to_single() {
        let single = speedup(0.2, 3.0);
        let multi = speedup_multi(&[(0.2, 3.0)]);
        assert!((single - multi).abs() < 1e-12);
    }

    #[test]
    fn multi_matches_paper_table13_rows() {
        // Table 13 reports pooled (FE, SE): fast CPU vgauss (.275, 2.70) →
        // 1.21; slow CPU vgpwl (.523, 2.19) → 1.39.
        assert!((speedup(0.275, 2.70) - 1.21).abs() < 0.01);
        assert!((speedup(0.523, 2.19) - 1.39).abs() < 0.01);
    }

    #[test]
    fn multi_is_bounded_by_its_parts() {
        // Composing two enhancements beats either alone but stays below
        // the sum of their individual gains.
        let parts = [(0.15, speedup_enhanced(13.0, 0.79)), (0.125, speedup_enhanced(3.0, 0.5))];
        let both = speedup_multi(&parts);
        let div_only = speedup(parts[0].0, parts[0].1);
        let mul_only = speedup(parts[1].0, parts[1].1);
        assert!(both > div_only.max(mul_only));
        // …and is bounded by the Amdahl limit of the combined fraction.
        assert!(both < 1.0 / (1.0 - (parts[0].0 + parts[1].0)));
    }

    #[test]
    #[should_panic(expected = "FE must be a fraction")]
    fn rejects_bad_fraction() {
        let _ = speedup(1.5, 2.0);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn rejects_oversubscribed_fractions() {
        let _ = speedup_multi(&[(0.7, 2.0), (0.6, 2.0)]);
    }
}

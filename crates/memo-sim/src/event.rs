//! The dynamic instruction event stream.
//!
//! Workloads (crate `memo-workloads`) and the `memo-isa` interpreter do
//! not produce SPARC binaries; they produce the same *information* Shade
//! gave the paper's authors — the dynamic stream of instruction events
//! with operand values for the multi-cycle operations. Anything that
//! consumes this stream implements [`EventSink`].

use memo_table::{Op, OpBatch, OpKind};

/// One dynamic instruction event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A single-cycle integer ALU operation (add, shift, compare, …).
    IntAlu,
    /// A floating-point add/subtract (pipelined, short latency).
    FpAdd,
    /// A branch (no misprediction modelling, per §3.3).
    Branch,
    /// An annulled (squashed delay-slot) instruction — still costs a slot.
    Annulled,
    /// A data load from `addr`.
    Load(u64),
    /// A data store to `addr`.
    Store(u64),
    /// A multi-cycle arithmetic operation with its operands — the traffic
    /// MEMO-TABLEs see.
    Arith(Op),
}

/// A consumer of instruction events.
///
/// The provided methods are the instrumentation API the workloads call:
/// they forward the event *and* perform the real computation, so a kernel
/// written against `EventSink` produces its genuine output while being
/// measured. (Results are returned from the native computation — memo
/// tables are bit-transparent, so simulators may serve them from a table
/// without changing any observable value.)
pub trait EventSink {
    /// Consume one event.
    fn record(&mut self, event: Event);

    /// Consume `n` identical events.
    ///
    /// Trace replay calls this for whole runs of payload-free events (ALU
    /// ops, branches, FP adds, annulled slots). The default forwards each
    /// event to [`record`](Self::record); sinks whose handling of an event
    /// is state-independent (the cycle accountant, mix counters) override
    /// it to charge the run in O(1).
    fn record_repeated(&mut self, event: Event, n: u64) {
        for _ in 0..n {
            self.record(event);
        }
    }

    /// Consume a same-kind tile of arithmetic events in lane (recorded)
    /// order.
    ///
    /// Must be observably identical to calling [`record`](Self::record)
    /// with `Event::Arith` per lane; the default does exactly that.
    /// Batching-aware sinks override it to push the whole tile through a
    /// memo table's lane-parallel probe path.
    fn record_arith_batch(&mut self, batch: &OpBatch<'_>) {
        for i in 0..batch.len() {
            self.record(Event::Arith(batch.op(i)));
        }
    }

    /// Integer multiply.
    fn imul(&mut self, a: i64, b: i64) -> i64 {
        self.record(Event::Arith(Op::IntMul(a, b)));
        a.wrapping_mul(b)
    }

    /// Floating-point multiply.
    fn fmul(&mut self, a: f64, b: f64) -> f64 {
        self.record(Event::Arith(Op::FpMul(a, b)));
        a * b
    }

    /// Floating-point divide.
    fn fdiv(&mut self, a: f64, b: f64) -> f64 {
        self.record(Event::Arith(Op::FpDiv(a, b)));
        a / b
    }

    /// Floating-point square root.
    fn fsqrt(&mut self, a: f64) -> f64 {
        self.record(Event::Arith(Op::FpSqrt(a)));
        a.sqrt()
    }

    /// Floating-point add.
    fn fadd(&mut self, a: f64, b: f64) -> f64 {
        self.record(Event::FpAdd);
        a + b
    }

    /// Floating-point subtract (same unit as add).
    fn fsub(&mut self, a: f64, b: f64) -> f64 {
        self.record(Event::FpAdd);
        a - b
    }

    /// A batch of `n` single-cycle integer operations (index arithmetic,
    /// comparisons — kernels emit these in bulk).
    fn int_ops(&mut self, n: u64) {
        self.record_repeated(Event::IntAlu, n);
    }

    /// A data load; the address drives the cache model (the workload keeps
    /// the actual datum — a timing model needs only the address).
    fn load(&mut self, addr: u64) {
        self.record(Event::Load(addr));
    }

    /// A data store.
    fn store(&mut self, addr: u64) {
        self.record(Event::Store(addr));
    }

    /// A branch.
    fn branch(&mut self) {
        self.record(Event::Branch);
    }

    /// An annulled delay-slot instruction.
    fn annulled(&mut self) {
        self.record(Event::Annulled);
    }
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    fn record(&mut self, event: Event) {
        (**self).record(event);
    }

    fn record_repeated(&mut self, event: Event, n: u64) {
        (**self).record_repeated(event, n);
    }

    fn record_arith_batch(&mut self, batch: &OpBatch<'_>) {
        (**self).record_arith_batch(batch);
    }
}

/// Discards every event — for running a workload at full speed when only
/// its functional output matters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _event: Event) {}
}

/// Instruction-mix counters (the paper's "frequency breakdown of all
/// instructions in the benchmarks").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    /// Integer ALU operations.
    pub int_alu: u64,
    /// FP adds/subtracts.
    pub fp_add: u64,
    /// Branches.
    pub branches: u64,
    /// Annulled instructions.
    pub annulled: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Integer multiplies.
    pub int_mul: u64,
    /// FP multiplies.
    pub fp_mul: u64,
    /// FP divides.
    pub fp_div: u64,
    /// FP square roots.
    pub fp_sqrt: u64,
}

impl InstrMix {
    /// Total dynamic instructions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.int_alu
            + self.fp_add
            + self.branches
            + self.annulled
            + self.loads
            + self.stores
            + self.int_mul
            + self.fp_mul
            + self.fp_div
            + self.fp_sqrt
    }

    /// Count one event.
    pub fn count(&mut self, event: &Event) {
        self.count_repeated(event, 1);
    }

    /// Count `n` identical events at once (the bulk path trace replay
    /// takes for run-length-encoded streams).
    pub fn count_repeated(&mut self, event: &Event, n: u64) {
        match event {
            Event::IntAlu => self.int_alu += n,
            Event::FpAdd => self.fp_add += n,
            Event::Branch => self.branches += n,
            Event::Annulled => self.annulled += n,
            Event::Load(_) => self.loads += n,
            Event::Store(_) => self.stores += n,
            Event::Arith(op) => self.count_arith(op.kind(), n),
        }
    }

    /// Count `n` arithmetic operations of `kind`.
    pub fn count_arith(&mut self, kind: OpKind, n: u64) {
        match kind {
            OpKind::IntMul => self.int_mul += n,
            OpKind::FpMul => self.fp_mul += n,
            OpKind::FpDiv => self.fp_div += n,
            OpKind::FpSqrt => self.fp_sqrt += n,
        }
    }
}

/// Counts the instruction mix and nothing else.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    mix: InstrMix,
}

impl CountingSink {
    /// A fresh counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated mix.
    #[must_use]
    pub fn mix(&self) -> InstrMix {
        self.mix
    }
}

impl EventSink for CountingSink {
    fn record(&mut self, event: Event) {
        self.mix.count(&event);
    }

    fn record_repeated(&mut self, event: Event, n: u64) {
        self.mix.count_repeated(&event, n);
    }

    fn record_arith_batch(&mut self, batch: &OpBatch<'_>) {
        self.mix.count_arith(batch.kind(), batch.len() as u64);
    }
}

/// Records the full event stream for later replay (trace-driven runs).
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Vec<Event>,
}

impl TraceBuffer {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replay the trace into another sink.
    pub fn replay_into<S: EventSink>(&self, sink: &mut S) {
        for &e in &self.events {
            sink.record(e);
        }
    }
}

impl EventSink for TraceBuffer {
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_methods_compute_and_record() {
        let mut sink = CountingSink::new();
        assert_eq!(sink.imul(6, 7), 42);
        assert_eq!(sink.fmul(2.0, 3.0), 6.0);
        assert_eq!(sink.fdiv(9.0, 2.0), 4.5);
        assert_eq!(sink.fsqrt(16.0), 4.0);
        assert_eq!(sink.fadd(1.0, 2.0), 3.0);
        assert_eq!(sink.fsub(1.0, 2.0), -1.0);
        sink.int_ops(3);
        sink.branch();
        sink.annulled();
        sink.store(0x10);
        sink.load(0x20);
        let m = sink.mix();
        assert_eq!(m.int_mul, 1);
        assert_eq!(m.fp_mul, 1);
        assert_eq!(m.fp_div, 1);
        assert_eq!(m.fp_sqrt, 1);
        assert_eq!(m.fp_add, 2);
        assert_eq!(m.int_alu, 3);
        assert_eq!(m.branches, 1);
        assert_eq!(m.annulled, 1);
        assert_eq!(m.loads, 1);
        assert_eq!(m.stores, 1);
        assert_eq!(m.total(), 13);
    }

    #[test]
    fn trace_replays_identically() {
        let mut trace = TraceBuffer::new();
        let _ = trace.fdiv(10.0, 4.0);
        let _ = trace.fmul(2.0, 8.0);
        trace.branch();
        assert_eq!(trace.len(), 3);

        let mut counter = CountingSink::new();
        trace.replay_into(&mut counter);
        assert_eq!(counter.mix().fp_div, 1);
        assert_eq!(counter.mix().fp_mul, 1);
        assert_eq!(counter.mix().branches, 1);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        assert_eq!(sink.fdiv(1.0, 2.0), 0.5);
        sink.record(Event::Branch);
    }
}

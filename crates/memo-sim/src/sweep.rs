//! Fused sweep evaluation: one trace pass per op kind serves an entire
//! [`SweepGrid`] of table shapes.
//!
//! The stack engine lives in `memo-table` ([`StackSimulator`]); this
//! module feeds it from recorded [`OpTrace`]s. Each hardware unit has its
//! own MEMO-TABLE, so grids are evaluated kind-by-kind: the pass for
//! `FpMul` walks only the multiply runs of the trace (the RLE run index
//! skips everything else without decoding it).

use memo_table::{batch_width, OpKind, StackSimulator, SweepGrid, SweepOutcome};

use crate::trace::OpTrace;

/// Run one fused pass of `kind`'s operations from `traces` (in order)
/// over every point of `grid` at once.
///
/// Equivalent to replaying the traces through one dedicated
/// [`memo_table::MemoTable`] per grid point — bit-identical statistics,
/// G times fewer passes. The stream flows through the stack engine's
/// lane-parallel front end ([`StackSimulator::access_batch`]) in
/// [`batch_width`]-lane tiles. Check [`SweepOutcome::exact`] before
/// trusting the counters: a mantissa-mode decode failure mid-pass flags
/// the outcome as inexact and the caller must fall back to direct replay.
pub fn sweep_kind<'a>(
    traces: impl IntoIterator<Item = &'a OpTrace>,
    kind: OpKind,
    grid: &SweepGrid,
) -> SweepOutcome {
    let mut sim = StackSimulator::new(grid);
    let width = batch_width();
    for trace in traces {
        trace.for_each_kind_batch(kind, width, |tile| sim.access_batch(tile));
    }
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_table::{MemoConfig, MemoTable, Memoizer, Op};

    #[test]
    fn sweep_kind_matches_per_config_replay_kind() {
        let mut trace = OpTrace::new();
        for i in 0..2000i64 {
            trace.push(Op::IntMul(i % 13, i % 7 + 2));
            trace.push(Op::FpMul((i % 9) as f64 + 0.5, 3.0));
            if i % 3 == 0 {
                trace.push(Op::FpDiv((i % 11) as f64 + 1.0, 4.0));
            }
        }
        let configs: Vec<MemoConfig> =
            [8usize, 32, 128].iter().map(|&e| MemoConfig::builder(e).build().unwrap()).collect();
        let grid = SweepGrid::new(&configs, false).unwrap();
        for kind in [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv] {
            let out = sweep_kind([&trace], kind, &grid);
            assert!(out.exact);
            for (cfg, fused) in configs.iter().zip(&out.finite) {
                let mut table = MemoTable::new(*cfg);
                trace.replay_kind(kind, &mut table);
                assert_eq!(*fused, table.stats());
            }
        }
    }
}

//! An [`EventSink`] whose arithmetic answers come from a [`MemoBank`].
//!
//! The default `EventSink` instrumentation methods compute natively and
//! merely *record* the multi-cycle operations, because memo tables are
//! bit-transparent: serving a stored result cannot change program output.
//! [`MemoizedSink`] makes that claim falsifiable. It routes every
//! multi-cycle operation through a real bank of tables and returns
//! whatever the table served — so a kernel run through it produces output
//! computed *with* memoization. Differential runs against a plain sink
//! then verify transparency end-to-end, and with a fault injector
//! attached, corrupted table entries propagate into kernel outputs
//! exactly as a soft error in a real MEMO-TABLE SRAM would.

use memo_table::Op;

use crate::bank::MemoBank;
use crate::event::{Event, EventSink, InstrMix};

/// Routes multi-cycle arithmetic through a [`MemoBank`] and returns the
/// table-served values to the running kernel.
#[derive(Debug)]
pub struct MemoizedSink {
    bank: MemoBank,
    mix: InstrMix,
}

impl MemoizedSink {
    /// Wrap a bank (memoizing whichever kinds it has tables for).
    #[must_use]
    pub fn new(bank: MemoBank) -> Self {
        MemoizedSink { bank, mix: InstrMix::default() }
    }

    /// The bank, e.g. to read fault statistics after a run.
    #[must_use]
    pub fn bank(&self) -> &MemoBank {
        &self.bank
    }

    /// The bank, mutably (attach injectors, reset between workloads).
    pub fn bank_mut(&mut self) -> &mut MemoBank {
        &mut self.bank
    }

    /// The accumulated instruction mix.
    #[must_use]
    pub fn mix(&self) -> InstrMix {
        self.mix
    }

    /// Tear down the sink and keep the bank.
    #[must_use]
    pub fn into_bank(self) -> MemoBank {
        self.bank
    }

    fn serve(&mut self, op: Op) -> memo_table::Value {
        self.mix.count(&Event::Arith(op));
        self.bank.execute(op).value
    }
}

impl EventSink for MemoizedSink {
    fn record(&mut self, event: Event) {
        self.mix.count(&event);
        if let Event::Arith(op) = event {
            // Raw recorded arithmetic still exercises the tables so the
            // fault/hit statistics cover trace-driven runs too.
            self.bank.execute(op);
        }
    }

    fn imul(&mut self, a: i64, b: i64) -> i64 {
        self.serve(Op::IntMul(a, b)).as_i64()
    }

    fn fmul(&mut self, a: f64, b: f64) -> f64 {
        self.serve(Op::FpMul(a, b)).as_f64()
    }

    fn fdiv(&mut self, a: f64, b: f64) -> f64 {
        self.serve(Op::FpDiv(a, b)).as_f64()
    }

    fn fsqrt(&mut self, a: f64) -> f64 {
        self.serve(Op::FpSqrt(a)).as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_table::{FaultConfig, FaultInjector, MemoConfig, MemoTable, OpKind, Protection};

    #[test]
    fn serves_bit_exact_values_from_clean_tables() {
        let mut sink = MemoizedSink::new(MemoBank::paper_default());
        for i in 0..100i64 {
            let a = (i % 8) as f64 + 2.0;
            assert_eq!(sink.fdiv(a, 3.0).to_bits(), (a / 3.0).to_bits());
            assert_eq!(sink.fmul(a, 1.5).to_bits(), (a * 1.5).to_bits());
            assert_eq!(sink.imul(i, 7), i * 7);
        }
        assert!(sink.bank().stats(OpKind::FpDiv).unwrap().table_hits > 0);
        assert_eq!(sink.mix().fp_div, 100);
    }

    #[test]
    fn corrupted_tables_propagate_into_served_values() {
        // Unprotected table + aggressive injector: some reuse must come
        // back bit-different, which is exactly what the SDC experiments
        // measure.
        let table = MemoTable::new(MemoConfig::paper_default())
            .with_fault_injector(FaultInjector::new(FaultConfig::single_bit(11, 0.9)));
        let mut sink =
            MemoizedSink::new(MemoBank::none().with_table(OpKind::FpDiv, table));
        let mut corrupted = 0;
        for i in 0..200 {
            let a = f64::from(i % 8) + 2.0;
            if sink.fdiv(a, 3.0).to_bits() != (a / 3.0).to_bits() {
                corrupted += 1;
            }
        }
        assert!(corrupted > 0, "faults must reach the consumer without protection");
        assert!(sink.bank().stats(OpKind::FpDiv).unwrap().faults_silent > 0);
    }

    #[test]
    fn protection_shields_served_values() {
        let cfg = MemoConfig::builder(32).protection(Protection::ParityDetect).build().unwrap();
        let table = MemoTable::new(cfg)
            .with_fault_injector(FaultInjector::new(FaultConfig::single_bit(11, 0.9)));
        let mut sink =
            MemoizedSink::new(MemoBank::none().with_table(OpKind::FpDiv, table));
        for i in 0..200 {
            let a = f64::from(i % 8) + 2.0;
            assert_eq!(sink.fdiv(a, 3.0).to_bits(), (a / 3.0).to_bits());
        }
        let stats = sink.into_bank().stats(OpKind::FpDiv).unwrap();
        assert!(stats.faults_detected > 0);
        assert_eq!(stats.faults_silent, 0);
    }

    #[test]
    fn recorded_arith_events_reach_the_tables() {
        let mut sink = MemoizedSink::new(MemoBank::paper_default());
        sink.record(Event::Arith(Op::FpDiv(9.0, 4.0)));
        sink.record(Event::Arith(Op::FpDiv(9.0, 4.0)));
        let s = sink.bank().stats(OpKind::FpDiv).unwrap();
        assert_eq!(s.table_hits, 1);
        assert_eq!(sink.mix().fp_div, 2);
    }
}

//! Total-cycle accounting over an event stream (§3.3).
//!
//! A single pass over the dynamic instruction stream produces *both*
//! machines of the paper's comparison:
//!
//! * the **baseline** — every multi-cycle operation at its full unit
//!   latency;
//! * the **memoized** machine — table hits complete in one cycle.
//!
//! Memory accesses go through the two-level cache model and cost the same
//! on both machines (memoing does not change the data stream), so the
//! measured speedup isolates exactly the cycles the MEMO-TABLEs avoid —
//! the paper's "number of superfluous cycles avoided".

use memo_table::{OpBatch, OpKind};

use crate::bank::MemoBank;
use crate::cache::{CacheStats, MemoryHierarchy};
use crate::cpu::CpuModel;
use crate::event::{Event, EventSink, InstrMix};
use crate::amdahl;

/// Cycles charged per instruction category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Integer ALU cycles.
    pub int_alu: u64,
    /// FP add/subtract cycles.
    pub fp_add: u64,
    /// Branch cycles.
    pub branch: u64,
    /// Annulled-slot cycles.
    pub annulled: u64,
    /// Memory-access cycles (loads and stores, cache penalties included).
    pub memory: u64,
    /// Cycles per multi-cycle kind, indexed `[imul, fmul, fdiv, fsqrt]`.
    pub arith: [u64; 4],
}

impl CycleBreakdown {
    /// Total cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.int_alu
            + self.fp_add
            + self.branch
            + self.annulled
            + self.memory
            + self.arith.iter().sum::<u64>()
    }

    /// Cycles spent in one multi-cycle kind.
    #[must_use]
    pub fn arith_cycles(&self, kind: OpKind) -> u64 {
        self.arith[kind_slot(kind)]
    }
}

fn kind_slot(kind: OpKind) -> usize {
    match kind {
        OpKind::IntMul => 0,
        OpKind::FpMul => 1,
        OpKind::FpDiv => 2,
        OpKind::FpSqrt => 3,
    }
}

/// The measurement produced by a [`CycleAccountant`] run.
#[derive(Debug, Clone)]
pub struct CycleReport {
    cpu: CpuModel,
    baseline: CycleBreakdown,
    memoized: CycleBreakdown,
    mix: InstrMix,
    arith_count: [u64; 4],
    arith_single: [u64; 4],
    l1: CacheStats,
    l2: CacheStats,
}

impl CycleReport {
    /// The CPU model the cycles were charged against.
    #[must_use]
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// Baseline (no MEMO-TABLE) cycle breakdown.
    #[must_use]
    pub fn baseline(&self) -> &CycleBreakdown {
        &self.baseline
    }

    /// Memoized-machine cycle breakdown.
    #[must_use]
    pub fn memoized(&self) -> &CycleBreakdown {
        &self.memoized
    }

    /// Dynamic instruction mix.
    #[must_use]
    pub fn mix(&self) -> &InstrMix {
        &self.mix
    }

    /// L1 data-cache statistics.
    #[must_use]
    pub fn l1_stats(&self) -> CacheStats {
        self.l1
    }

    /// L2 data-cache statistics.
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2
    }

    /// Directly measured speedup: baseline cycles / memoized cycles.
    #[must_use]
    pub fn speedup_measured(&self) -> f64 {
        if self.memoized.total() == 0 {
            return 1.0;
        }
        self.baseline.total() as f64 / self.memoized.total() as f64
    }

    /// Measured speedup when only `kinds` keep their table savings.
    ///
    /// Per-kind tables are independent — each sees the full operand stream
    /// of its kind regardless of which other units are memoized — so a run
    /// whose bank covers a *superset* of `kinds` accumulates, per kind,
    /// exactly the cycles a `kinds`-only bank would. The subset machine's
    /// total is then the baseline total minus the savings of precisely the
    /// kinds in `kinds` (savings can be negative when a protection penalty
    /// exceeds the unit latency). One replay therefore serves every
    /// memoized-unit selection of Tables 11–13.
    #[must_use]
    pub fn speedup_measured_for(&self, kinds: &[OpKind]) -> f64 {
        let total = self.baseline.total() as i128;
        if total == 0 {
            return 1.0;
        }
        let saved: i128 = kinds
            .iter()
            .map(|&k| {
                i128::from(self.baseline.arith_cycles(k))
                    - i128::from(self.memoized.arith_cycles(k))
            })
            .sum();
        total as f64 / (total - saved) as f64
    }

    /// *Fraction Enhanced* for `kind`: its share of baseline cycles.
    #[must_use]
    pub fn fraction_enhanced(&self, kind: OpKind) -> f64 {
        let total = self.baseline.total();
        if total == 0 {
            return 0.0;
        }
        self.baseline.arith_cycles(kind) as f64 / total as f64
    }

    /// Observed single-cycle (hit) ratio for `kind` over its dynamic
    /// operations.
    #[must_use]
    pub fn hit_ratio(&self, kind: OpKind) -> f64 {
        let n = self.arith_count[kind_slot(kind)];
        if n == 0 {
            return 0.0;
        }
        self.arith_single[kind_slot(kind)] as f64 / n as f64
    }

    /// *Speedup Enhanced* for `kind` from its latency and hit ratio
    /// (the paper's `dc / ((1 − hr)·dc + hr)`).
    #[must_use]
    pub fn speedup_enhanced(&self, kind: OpKind) -> f64 {
        amdahl::speedup_enhanced(f64::from(self.cpu.latency(kind)), self.hit_ratio(kind))
    }

    /// Analytic Amdahl speedup when only `kinds` are considered enhanced —
    /// the construction of Tables 11–13.
    #[must_use]
    pub fn speedup_amdahl(&self, kinds: &[OpKind]) -> f64 {
        let parts: Vec<(f64, f64)> = kinds
            .iter()
            .map(|&k| (self.fraction_enhanced(k), self.speedup_enhanced(k)))
            .collect();
        amdahl::speedup_multi(&parts)
    }
}

/// An [`EventSink`] that charges cycles for both machines in one pass.
#[derive(Debug)]
pub struct CycleAccountant {
    cpu: CpuModel,
    memory: MemoryHierarchy,
    bank: MemoBank,
    baseline: CycleBreakdown,
    memoized: CycleBreakdown,
    mix: InstrMix,
    arith_count: [u64; 4],
    arith_single: [u64; 4],
}

impl CycleAccountant {
    /// Build an accountant for one run.
    #[must_use]
    pub fn new(cpu: CpuModel, memory: MemoryHierarchy, bank: MemoBank) -> Self {
        CycleAccountant {
            cpu,
            memory,
            bank,
            baseline: CycleBreakdown::default(),
            memoized: CycleBreakdown::default(),
            mix: InstrMix::default(),
            arith_count: [0; 4],
            arith_single: [0; 4],
        }
    }

    /// The memo bank (e.g. to read per-table statistics mid-run).
    #[must_use]
    pub fn bank(&self) -> &MemoBank {
        &self.bank
    }

    /// Produce the final report.
    #[must_use]
    pub fn report(&self) -> CycleReport {
        CycleReport {
            cpu: self.cpu,
            baseline: self.baseline,
            memoized: self.memoized,
            mix: self.mix,
            arith_count: self.arith_count,
            arith_single: self.arith_single,
            l1: self.memory.l1_stats(),
            l2: self.memory.l2_stats(),
        }
    }
}

impl EventSink for CycleAccountant {
    fn record(&mut self, event: Event) {
        self.mix.count(&event);
        match event {
            Event::IntAlu => {
                let c = u64::from(self.cpu.int_alu);
                self.baseline.int_alu += c;
                self.memoized.int_alu += c;
            }
            Event::FpAdd => {
                let c = u64::from(self.cpu.fp_add);
                self.baseline.fp_add += c;
                self.memoized.fp_add += c;
            }
            Event::Branch => {
                let c = u64::from(self.cpu.branch);
                self.baseline.branch += c;
                self.memoized.branch += c;
            }
            Event::Annulled => {
                self.baseline.annulled += 1;
                self.memoized.annulled += 1;
            }
            Event::Load(addr) | Event::Store(addr) => {
                let c = u64::from(self.memory.access(addr));
                self.baseline.memory += c;
                self.memoized.memory += c;
            }
            Event::Arith(op) => {
                let kind = op.kind();
                let slot = kind_slot(kind);
                let full = u64::from(self.cpu.latency(kind));
                self.arith_count[slot] += 1;
                self.baseline.arith[slot] += full;
                let executed = self.bank.execute(op);
                if executed.outcome.avoided_computation() {
                    self.arith_single[slot] += 1;
                    // Table hits pay the protection policy's verify/correct
                    // latency on top of the single cycle; trivial results
                    // come from the detector, not the SRAM, and stay at 1.
                    let penalty = if executed.outcome == memo_table::Outcome::Hit {
                        u64::from(self.bank.hit_penalty(kind))
                    } else {
                        0
                    };
                    self.memoized.arith[slot] += 1 + penalty;
                } else {
                    self.memoized.arith[slot] += full;
                }
            }
        }
    }

    /// Bulk charge for a run of identical payload-free events: the cost of
    /// one event of these classes is state-independent, so `n` of them cost
    /// exactly `n ×` the single-event charge. Loads/stores (cache state)
    /// and arithmetic (table state) fall back to per-event recording.
    fn record_repeated(&mut self, event: Event, n: u64) {
        match event {
            Event::IntAlu => {
                self.mix.int_alu += n;
                let c = u64::from(self.cpu.int_alu) * n;
                self.baseline.int_alu += c;
                self.memoized.int_alu += c;
            }
            Event::FpAdd => {
                self.mix.fp_add += n;
                let c = u64::from(self.cpu.fp_add) * n;
                self.baseline.fp_add += c;
                self.memoized.fp_add += c;
            }
            Event::Branch => {
                self.mix.branches += n;
                let c = u64::from(self.cpu.branch) * n;
                self.baseline.branch += c;
                self.memoized.branch += c;
            }
            Event::Annulled => {
                self.mix.annulled += n;
                self.baseline.annulled += n;
                self.memoized.annulled += n;
            }
            Event::Load(_) | Event::Store(_) | Event::Arith(_) => {
                for _ in 0..n {
                    self.record(event);
                }
            }
        }
    }

    /// Batch charge for a same-kind arithmetic tile: one pass through the
    /// bank's lane-parallel probe path, then per-run cycle arithmetic —
    /// hits cost `1 + penalty`, trivials 1, everything else full latency,
    /// exactly as the per-op path charges them.
    fn record_arith_batch(&mut self, batch: &OpBatch<'_>) {
        let kind = batch.kind();
        let slot = kind_slot(kind);
        let n = batch.len() as u64;
        self.mix.count_arith(kind, n);
        let full = u64::from(self.cpu.latency(kind));
        self.arith_count[slot] += n;
        self.baseline.arith[slot] += full * n;
        let out = self.bank.execute_batch(batch);
        let avoided = out.avoided();
        self.arith_single[slot] += avoided;
        let penalty = u64::from(self.bank.hit_penalty(kind));
        self.memoized.arith[slot] += avoided + out.hits * penalty + (n - avoided) * full;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accountant(bank: MemoBank) -> CycleAccountant {
        CycleAccountant::new(CpuModel::paper_slow(), MemoryHierarchy::typical_1997(), bank)
    }

    /// A small kernel with heavy operand reuse: `n` divisions drawn from
    /// 8 distinct operand pairs, padded with ALU/branch/memory work.
    fn run_kernel(acc: &mut CycleAccountant, n: u64) {
        for i in 0..n {
            acc.load((i % 64) * 8);
            let a = f64::from(2 + (i % 8) as u32);
            let _ = acc.fdiv(a, 3.0);
            acc.int_ops(2);
            acc.branch();
        }
    }

    #[test]
    fn baseline_charges_full_latency() {
        let mut acc = accountant(MemoBank::none());
        run_kernel(&mut acc, 100);
        let r = acc.report();
        assert_eq!(r.baseline().arith_cycles(OpKind::FpDiv), 100 * 39);
        // No tables: memoized == baseline.
        assert_eq!(r.baseline(), r.memoized());
        assert!((r.speedup_measured() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memoized_machine_avoids_cycles() {
        let mut acc = accountant(MemoBank::paper_default());
        run_kernel(&mut acc, 100);
        let r = acc.report();
        // 8 distinct pairs fit the 32-entry table: 8 misses, 92 hits.
        assert_eq!(r.memoized().arith_cycles(OpKind::FpDiv), 8 * 39 + 92);
        assert!((r.hit_ratio(OpKind::FpDiv) - 0.92).abs() < 1e-12);
        assert!(r.speedup_measured() > 1.0);
    }

    #[test]
    fn memory_cycles_equal_on_both_machines() {
        let mut acc = accountant(MemoBank::paper_default());
        run_kernel(&mut acc, 50);
        let r = acc.report();
        assert_eq!(r.baseline().memory, r.memoized().memory);
        assert!(r.baseline().memory >= 50, "each load costs at least a cycle");
        assert_eq!(r.l2_stats().accesses, r.l1_stats().misses());
    }

    #[test]
    fn fraction_enhanced_is_a_fraction_of_total() {
        let mut acc = accountant(MemoBank::paper_default());
        run_kernel(&mut acc, 200);
        let r = acc.report();
        let fe = r.fraction_enhanced(OpKind::FpDiv);
        assert!(fe > 0.0 && fe < 1.0);
        let expected =
            r.baseline().arith_cycles(OpKind::FpDiv) as f64 / r.baseline().total() as f64;
        assert!((fe - expected).abs() < 1e-12);
    }

    #[test]
    fn amdahl_and_measured_speedups_agree() {
        // With only the divider enhanced and everything else identical, the
        // analytic Amdahl speedup must equal the measured one exactly.
        let mut acc = accountant(MemoBank::uniform(
            memo_table::MemoConfig::paper_default(),
            &[OpKind::FpDiv],
        ));
        run_kernel(&mut acc, 500);
        let r = acc.report();
        let analytic = r.speedup_amdahl(&[OpKind::FpDiv]);
        let measured = r.speedup_measured();
        assert!(
            (analytic - measured).abs() < 1e-9,
            "analytic {analytic} vs measured {measured}"
        );
    }

    /// Mixed fdiv/fmul kernel for the subset-derivation test.
    fn run_mixed_kernel(acc: &mut CycleAccountant, n: u64) {
        for i in 0..n {
            let a = f64::from(2 + (i % 8) as u32);
            let _ = acc.fdiv(a, 3.0);
            let _ = acc.fmul(a, 0.5);
            acc.int_ops(1);
        }
    }

    #[test]
    fn subset_speedup_from_superset_bank_matches_dedicated_bank() {
        use memo_table::MemoConfig;
        // One run with both units memoized…
        let mut both = accountant(MemoBank::uniform(
            MemoConfig::paper_default(),
            &[OpKind::FpMul, OpKind::FpDiv],
        ));
        run_mixed_kernel(&mut both, 300);
        let superset = both.report();
        // …must yield, for each unit alone, exactly the measured speedup of
        // a run whose bank holds only that unit's table.
        for kinds in [&[OpKind::FpDiv][..], &[OpKind::FpMul][..]] {
            let mut alone = accountant(MemoBank::uniform(MemoConfig::paper_default(), kinds));
            run_mixed_kernel(&mut alone, 300);
            assert_eq!(
                superset.speedup_measured_for(kinds),
                alone.report().speedup_measured(),
                "{kinds:?}"
            );
        }
        // The full set reduces to the plain measurement.
        assert_eq!(
            superset.speedup_measured_for(&[OpKind::FpMul, OpKind::FpDiv]),
            superset.speedup_measured()
        );
    }

    #[test]
    fn instruction_mix_is_counted() {
        let mut acc = accountant(MemoBank::none());
        run_kernel(&mut acc, 10);
        let m = *acc.report().mix();
        assert_eq!(m.fp_div, 10);
        assert_eq!(m.loads, 10);
        assert_eq!(m.branches, 10);
        assert_eq!(m.int_alu, 20);
        assert_eq!(m.total(), 50);
    }

    #[test]
    fn trivial_operations_cost_full_latency_on_both_machines() {
        let mut acc = accountant(MemoBank::paper_default());
        let _ = acc.fdiv(5.0, 1.0); // trivial, excluded from the table
        let r = acc.report();
        assert_eq!(r.baseline().arith_cycles(OpKind::FpDiv), 39);
        assert_eq!(r.memoized().arith_cycles(OpKind::FpDiv), 39);
    }

    #[test]
    fn protection_penalty_is_charged_per_hit() {
        use memo_table::{MemoConfig, Protection};
        let cfg = MemoConfig::builder(32)
            .protection(Protection::VerifyOnHit { verify_cycles: 4 })
            .build()
            .unwrap();
        let bank = MemoBank::none().with_table(OpKind::FpDiv, memo_table::MemoTable::new(cfg));
        let mut acc = accountant(bank);
        run_kernel(&mut acc, 100);
        let r = acc.report();
        // 8 misses at full latency, 92 hits at 1 + 4 verify cycles.
        assert_eq!(r.memoized().arith_cycles(OpKind::FpDiv), 8 * 39 + 92 * 5);
        // Slower than the unprotected machine, still faster than baseline.
        assert!(r.speedup_measured() > 1.0);

        let mut plain = accountant(MemoBank::uniform(
            memo_table::MemoConfig::paper_default(),
            &[OpKind::FpDiv],
        ));
        run_kernel(&mut plain, 100);
        assert!(r.memoized().total() > plain.report().memoized().total());
    }

    #[test]
    fn empty_run_reports_identity() {
        let acc = accountant(MemoBank::paper_default());
        let r = acc.report();
        assert_eq!(r.baseline().total(), 0);
        assert_eq!(r.speedup_measured(), 1.0);
        assert_eq!(r.hit_ratio(OpKind::FpDiv), 0.0);
        assert_eq!(r.speedup_amdahl(&[OpKind::FpDiv]), 1.0);
    }
}

//! The two-level data-cache hierarchy of §3.3.
//!
//! The paper's speedup experiments extend the simulator with "a memory
//! hierarchy of two caches" so that the *Fraction Enhanced* — the share of
//! total cycles spent in multiplication/division — is computed against a
//! realistic denominator that includes memory stalls.

use std::fmt;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Ways per set.
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size,
    /// capacity not divisible into sets).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two() && self.line_bytes > 0);
        assert!(self.ways > 0);
        let lines = self.size_bytes / self.line_bytes;
        assert!(lines.is_multiple_of(self.ways), "capacity must divide into whole sets");
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
}

impl CacheStats {
    /// Misses (`accesses − hits`).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit ratio; 0 when never accessed.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with LRU replacement (tags only — no data, as
/// befits a timing model).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    // (tag, last_use) per way per set.
    lines: Vec<Option<(u64, u64)>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// An empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`CacheConfig::sets`]).
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache { cfg, sets, lines: vec![None; sets * cfg.ways], clock: 0, stats: CacheStats::default() }
    }

    /// Touch `addr`; returns `true` on a hit. Misses allocate (the model
    /// is write-allocate for both loads and stores).
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr / self.cfg.line_bytes as u64;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let base = set * self.cfg.ways;

        for (t, last) in self.lines[base..base + self.cfg.ways].iter_mut().flatten() {
            if *t == tag {
                *last = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }

        // Miss: allocate into an empty way or the LRU victim.
        let victim = (0..self.cfg.ways)
            .min_by_key(|&w| self.lines[base + w].map_or(0, |(_, last)| last))
            .expect("ways >= 1");
        self.lines[base + victim] = Some((tag, self.clock));
        false
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clear contents and statistics.
    pub fn reset(&mut self) {
        self.lines.iter_mut().for_each(|l| *l = None);
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB/{}B-line/{}-way ({:.1}% hit)",
            self.cfg.size_bytes / 1024,
            self.cfg.line_bytes,
            self.cfg.ways,
            100.0 * self.stats.hit_ratio()
        )
    }
}

/// L1 + L2 data caches with per-level miss penalties.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1: Cache,
    l2: Cache,
    l1_hit_cycles: u32,
    l2_hit_penalty: u32,
    memory_penalty: u32,
}

impl MemoryHierarchy {
    /// A hierarchy representative of the paper's era: 8 KB direct-mapped
    /// L1 with 32-byte lines (the paper's own example geometry in §2.4),
    /// 256 KB 4-way L2 with 64-byte lines, 6-cycle L2 access, 30-cycle
    /// memory access.
    #[must_use]
    pub fn typical_1997() -> Self {
        Self::new(
            CacheConfig { size_bytes: 8 * 1024, line_bytes: 32, ways: 1 },
            CacheConfig { size_bytes: 256 * 1024, line_bytes: 64, ways: 4 },
            1,
            6,
            30,
        )
    }

    /// Build a custom hierarchy.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent cache geometry or a zero L1 hit time.
    #[must_use]
    pub fn new(
        l1: CacheConfig,
        l2: CacheConfig,
        l1_hit_cycles: u32,
        l2_hit_penalty: u32,
        memory_penalty: u32,
    ) -> Self {
        assert!(l1_hit_cycles > 0, "an L1 access takes at least a cycle");
        MemoryHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            l1_hit_cycles,
            l2_hit_penalty,
            memory_penalty,
        }
    }

    /// Charge one data access; returns the cycles it cost.
    pub fn access(&mut self, addr: u64) -> u32 {
        if self.l1.access(addr) {
            self.l1_hit_cycles
        } else if self.l2.access(addr) {
            self.l1_hit_cycles + self.l2_hit_penalty
        } else {
            self.l1_hit_cycles + self.l2_hit_penalty + self.memory_penalty
        }
    }

    /// L1 statistics.
    #[must_use]
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// L2 statistics (accesses = L1 misses).
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Clear both levels.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 16 bytes, 2-way: 2 sets.
        Cache::new(CacheConfig { size_bytes: 64, line_bytes: 16, ways: 2 })
    }

    #[test]
    fn geometry_is_computed() {
        let cfg = CacheConfig { size_bytes: 8 * 1024, line_bytes: 32, ways: 1 };
        assert_eq!(cfg.sets(), 256); // the paper's §2.4 example: 256 entries
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig { size_bytes: 96, line_bytes: 16, ways: 2 });
    }

    #[test]
    fn hit_after_miss_same_line() {
        let mut c = tiny();
        assert!(!c.access(0x100));
        assert!(c.access(0x10f), "same 16-byte line");
        assert!(!c.access(0x110), "next line");
        assert_eq!(c.stats().misses(), 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn lru_within_set() {
        let mut c = tiny();
        // Set selection: line index % 2. Three lines mapping to set 0:
        let a = 0x000; // line 0
        let b = 0x020; // line 2
        let d = 0x040; // line 4
        c.access(a);
        c.access(b);
        c.access(a); // refresh a
        c.access(d); // evicts b (LRU)
        assert!(c.access(a), "a retained");
        assert!(!c.access(b), "b evicted");
    }

    #[test]
    fn hierarchy_charges_increasing_penalties() {
        let mut m = MemoryHierarchy::typical_1997();
        let cold = m.access(0x8000);
        assert_eq!(cold, 1 + 6 + 30, "cold access goes to memory");
        let warm = m.access(0x8000);
        assert_eq!(warm, 1, "L1 hit");
        // Evict from L1 (direct-mapped, 8KB): same set, different tag.
        let conflicting = 0x8000 + 8 * 1024;
        let _ = m.access(conflicting);
        let l2_hit = m.access(0x8000);
        assert_eq!(l2_hit, 1 + 6, "L1 miss, L2 hit");
    }

    #[test]
    fn stats_track_both_levels() {
        let mut m = MemoryHierarchy::typical_1997();
        for i in 0..100u64 {
            m.access(i * 4);
        }
        let l1 = m.l1_stats();
        assert_eq!(l1.accesses, 100);
        assert!(l1.hit_ratio() > 0.8, "sequential access mostly hits: {}", l1.hit_ratio());
        assert_eq!(m.l2_stats().accesses, l1.misses());
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = MemoryHierarchy::typical_1997();
        m.access(0x40);
        m.reset();
        assert_eq!(m.l1_stats(), CacheStats::default());
        assert_eq!(m.access(0x40), 37, "cold again");
    }

    #[test]
    fn display_shows_geometry() {
        let c = tiny();
        assert!(c.to_string().contains("16B-line"));
    }
}

//! An in-order pipeline model with functional-unit occupancy (§2.2–2.3).
//!
//! The paper's headline cycle counts deliberately ignore pipelining
//! (§3.3), but its *architectural* argument is about the pipeline: a
//! non-pipelined divider occupied for 20–40 cycles "throws a wrench" into
//! the execution pipeline — structural hazards stall issue, and results
//! complete out of order. A MEMO-TABLE hit frees the divider after one
//! cycle, so subsequent divisions don't pile up behind it.
//!
//! [`PipelineModel`] captures exactly that effect: single-issue in-order
//! execution where
//!
//! * single-cycle instructions issue back-to-back;
//! * the fp multiplier is itself pipelined (1/cycle throughput, full
//!   latency only to the *first* consumer — modelled as issue-side
//!   occupancy of one cycle);
//! * the integer multiplier, fp divider, and sqrt unit are **not**
//!   pipelined: a new operation stalls until the unit is free;
//! * memory accesses stall for their cache-determined latency;
//! * a MEMO-TABLE hit releases the unit immediately.
//!
//! The difference between [`CycleAccountant`](crate::CycleAccountant)
//! (total latency cycles) and this model (issue stalls only) brackets the
//! paper's speedup claims from both sides.

use memo_table::OpKind;

use crate::bank::MemoBank;
use crate::cache::MemoryHierarchy;
use crate::cpu::CpuModel;
use crate::event::{Event, EventSink, InstrMix};

/// Occupancy state of one non-pipelined functional unit.
#[derive(Debug, Clone, Copy, Default)]
struct Unit {
    /// Cycle at which the unit becomes free.
    free_at: u64,
    /// Total cycles new work waited for the unit.
    stall_cycles: u64,
}

impl Unit {
    fn issue(&mut self, now: u64, busy_for: u64) -> u64 {
        let start = now.max(self.free_at);
        self.stall_cycles += start - now;
        self.free_at = start + busy_for;
        start + 1 // next instruction may issue the following cycle
    }
}

/// Result of a pipeline-model run.
#[derive(Debug, Clone, Copy)]
pub struct PipelineReport {
    /// Total cycles to issue every instruction (the model's runtime).
    pub cycles: u64,
    /// Cycles lost waiting for the (non-pipelined) integer multiplier.
    pub int_mul_stalls: u64,
    /// Cycles lost waiting for the fp divider.
    pub fp_div_stalls: u64,
    /// Cycles lost waiting for the sqrt unit.
    pub fp_sqrt_stalls: u64,
    /// Cycles lost waiting on memory.
    pub memory_stalls: u64,
    /// Dynamic instruction count.
    pub instructions: u64,
}

impl PipelineReport {
    /// Cycles per instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.cycles as f64 / self.instructions as f64
    }

    /// All structural-hazard stalls combined.
    #[must_use]
    pub fn structural_stalls(&self) -> u64 {
        self.int_mul_stalls + self.fp_div_stalls + self.fp_sqrt_stalls
    }
}

/// Single-issue in-order pipeline with unit occupancy and a memo bank.
#[derive(Debug)]
pub struct PipelineModel {
    cpu: CpuModel,
    memory: MemoryHierarchy,
    bank: MemoBank,
    now: u64,
    int_mul: Unit,
    fp_div: Unit,
    fp_sqrt: Unit,
    memory_stalls: u64,
    mix: InstrMix,
}

impl PipelineModel {
    /// Build a pipeline model; pass [`MemoBank::none`] for the baseline
    /// machine.
    #[must_use]
    pub fn new(cpu: CpuModel, memory: MemoryHierarchy, bank: MemoBank) -> Self {
        PipelineModel {
            cpu,
            memory,
            bank,
            now: 0,
            int_mul: Unit::default(),
            fp_div: Unit::default(),
            fp_sqrt: Unit::default(),
            memory_stalls: 0,
            mix: InstrMix::default(),
        }
    }

    /// Finish the run: drain in-flight work and report.
    #[must_use]
    pub fn report(&self) -> PipelineReport {
        let drain = self
            .now
            .max(self.int_mul.free_at)
            .max(self.fp_div.free_at)
            .max(self.fp_sqrt.free_at);
        PipelineReport {
            cycles: drain,
            int_mul_stalls: self.int_mul.stall_cycles,
            fp_div_stalls: self.fp_div.stall_cycles,
            fp_sqrt_stalls: self.fp_sqrt.stall_cycles,
            memory_stalls: self.memory_stalls,
            instructions: self.mix.total(),
        }
    }

    /// The memo bank (for per-unit hit statistics).
    #[must_use]
    pub fn bank(&self) -> &MemoBank {
        &self.bank
    }
}

impl EventSink for PipelineModel {
    fn record(&mut self, event: Event) {
        self.mix.count(&event);
        match event {
            // Single-cycle issue; the fp adder and multiplier are fully
            // pipelined so they never block a later instruction.
            Event::IntAlu | Event::FpAdd | Event::Branch | Event::Annulled => {
                self.now += 1;
            }
            Event::Load(addr) | Event::Store(addr) => {
                let latency = u64::from(self.memory.access(addr));
                // One issue cycle plus any stall beyond it.
                self.now += 1;
                self.memory_stalls += latency.saturating_sub(1);
                self.now += latency.saturating_sub(1);
            }
            Event::Arith(op) => {
                let kind = op.kind();
                let executed = self.bank.execute(op);
                let busy = if executed.outcome.avoided_computation() {
                    0 // table hit: the unit is aborted and free (§2.2)
                } else {
                    u64::from(self.cpu.latency(kind)).saturating_sub(1)
                };
                self.now = match kind {
                    // The fp multiplier is pipelined: occupy for one cycle
                    // regardless (throughput 1/cycle, §1).
                    OpKind::FpMul => self.now + 1,
                    OpKind::IntMul => self.int_mul.issue(self.now, busy),
                    OpKind::FpDiv => self.fp_div.issue(self.now, busy),
                    OpKind::FpSqrt => self.fp_sqrt.issue(self.now, busy),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventSink;

    fn model(bank: MemoBank) -> PipelineModel {
        PipelineModel::new(CpuModel::paper_slow(), MemoryHierarchy::typical_1997(), bank)
    }

    /// Back-to-back divisions with dependent ALU work in between.
    fn division_burst(m: &mut PipelineModel, n: u32, distinct: u32) {
        for i in 0..n {
            let _ = m.fdiv(f64::from(i % distinct + 2), 3.0);
            m.int_ops(2);
            m.branch();
        }
    }

    #[test]
    fn baseline_divisions_pile_up() {
        let mut m = model(MemoBank::none());
        division_burst(&mut m, 50, 50);
        let r = m.report();
        assert!(r.fp_div_stalls > 0, "non-pipelined divider must stall the burst");
        // Each iteration issues 4 instructions but the divider is busy for
        // 39 cycles: the divider dominates runtime.
        assert!(r.cycles > 50 * 35, "cycles {} dominated by division", r.cycles);
    }

    #[test]
    fn memo_hits_remove_structural_hazards() {
        let mut baseline = model(MemoBank::none());
        division_burst(&mut baseline, 200, 8);
        let mut memoized = model(MemoBank::paper_default());
        division_burst(&mut memoized, 200, 8);

        let b = baseline.report();
        let m = memoized.report();
        assert!(m.fp_div_stalls < b.fp_div_stalls / 4, "hits free the divider");
        assert!(
            (b.cycles as f64 / m.cycles as f64) > 2.0,
            "pipeline speedup {} should exceed the latency-only model's",
            b.cycles as f64 / m.cycles as f64
        );
    }

    #[test]
    fn pipelined_multiplier_never_stalls() {
        let mut m = model(MemoBank::none());
        for i in 0..100 {
            let _ = m.fmul(f64::from(i) + 0.5, 1.5);
        }
        let r = m.report();
        assert_eq!(r.structural_stalls(), 0);
        assert_eq!(r.cycles, 100, "1/cycle throughput");
    }

    #[test]
    fn memory_stalls_are_separated() {
        let mut m = model(MemoBank::none());
        // Cold misses: 37 cycles each on the typical hierarchy.
        m.load(0x0000);
        m.load(0x8000);
        let r = m.report();
        assert_eq!(r.memory_stalls, 2 * 36);
        assert_eq!(r.cycles, 2 * 37);
    }

    #[test]
    fn cpi_reflects_the_mix() {
        let mut m = model(MemoBank::none());
        m.int_ops(100);
        let r = m.report();
        assert!((r.cpi() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_drains_inflight_division() {
        let mut m = model(MemoBank::none());
        let _ = m.fdiv(7.0, 3.0); // issues at cycle 0, busy 39
        let r = m.report();
        assert!(r.cycles >= 38, "in-flight work counts toward runtime");
    }
}

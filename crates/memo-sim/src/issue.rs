//! The MEMO-TABLE as a second functional unit (§2.3 / §4).
//!
//! §2.3: "Instead of having, for instance, two floating point dividers,
//! only one will be integrated and the second will be an interface to a
//! multi-ported MEMO-TABLE in the division unit. In the case where two fp
//! divisions are issued together, the second one is issued to the
//! MEMO-TABLE interface. In the case of a miss it will be stalled until
//! the divider is free." §4 names quantifying this against duplicated
//! units as future work — [`DividerFarm`] is that quantification.
//!
//! The model replays a division stream through three machines:
//!
//! * one conventional divider;
//! * one divider **plus a MEMO-TABLE interface** (hits retire from the
//!   interface in one cycle; misses queue for the real divider);
//! * two conventional dividers (the expensive alternative — a second
//!   high-radix SRT divider costs far more area than a 32-entry table,
//!   §2.4).

use memo_table::{MemoConfig, MemoTable, Memoizer, Op, OpKind};

use crate::cpu::CpuModel;

/// Completion-time results for one machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmResult {
    /// Cycles to drain the division stream.
    pub cycles: u64,
    /// Divisions served by the MEMO-TABLE interface (0 for the
    /// conventional configurations).
    pub interface_hits: u64,
}

impl FarmResult {
    /// Average issue-to-issue throughput in divisions per cycle.
    #[must_use]
    pub fn throughput(&self, divisions: u64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        divisions as f64 / self.cycles as f64
    }
}

/// The three-way §2.3 comparison on a division stream.
#[derive(Debug, Clone, Copy)]
pub struct FarmComparison {
    /// Dynamic divisions replayed.
    pub divisions: u64,
    /// One conventional divider.
    pub single: FarmResult,
    /// One divider + MEMO-TABLE interface.
    pub with_interface: FarmResult,
    /// Two conventional dividers.
    pub dual: FarmResult,
}

/// A bank of `real_dividers` conventional dividers with an optional
/// memo-table interface, drained by a greedy in-order issue model: one
/// division is considered per cycle; it retires immediately on an
/// interface hit, otherwise it occupies the earliest-free divider.
#[derive(Debug)]
pub struct DividerFarm {
    latency: u64,
    free_at: Vec<u64>,
    table: Option<MemoTable>,
    now: u64,
    issued: u64,
    interface_hits: u64,
}

impl DividerFarm {
    /// A farm of `real_dividers` dividers with `cpu`'s division latency;
    /// pass `Some(config)` to add the MEMO-TABLE interface.
    ///
    /// # Panics
    ///
    /// Panics if `real_dividers` is zero.
    #[must_use]
    pub fn new(cpu: &CpuModel, real_dividers: usize, table: Option<MemoConfig>) -> Self {
        assert!(real_dividers > 0, "at least one real divider is required");
        DividerFarm {
            latency: u64::from(cpu.latency(OpKind::FpDiv)),
            free_at: vec![0; real_dividers],
            table: table.map(MemoTable::new),
            now: 0,
            issued: 0,
            interface_hits: 0,
        }
    }

    /// Issue one division. Returns the cycle at which it completes.
    pub fn issue(&mut self, op: Op) -> u64 {
        debug_assert_eq!(op.kind(), OpKind::FpDiv);
        self.now += 1; // one issue slot per cycle
        self.issued += 1;

        if let Some(table) = &mut self.table {
            if table.execute(op).outcome.avoided_computation() {
                self.interface_hits += 1;
                return self.now; // served by the interface this cycle
            }
        }
        // Miss (or no interface): occupy the earliest-free divider,
        // stalling issue until one is available.
        let unit = (0..self.free_at.len())
            .min_by_key(|&u| self.free_at[u])
            .expect("at least one divider");
        let start = self.now.max(self.free_at[unit]);
        self.now = start; // in-order issue stalls behind the busy farm
        self.free_at[unit] = start + self.latency;
        self.free_at[unit]
    }

    /// Drain: the cycle at which all in-flight work completes.
    #[must_use]
    pub fn drain(&self) -> u64 {
        self.free_at.iter().copied().max().unwrap_or(0).max(self.now)
    }

    /// Result summary.
    #[must_use]
    pub fn result(&self) -> FarmResult {
        FarmResult { cycles: self.drain(), interface_hits: self.interface_hits }
    }
}

/// Replay `divisions` through the three §2.3 machine configurations.
#[must_use]
pub fn compare_divider_farms(
    cpu: &CpuModel,
    table: MemoConfig,
    divisions: &[Op],
) -> FarmComparison {
    let mut single = DividerFarm::new(cpu, 1, None);
    let mut with_interface = DividerFarm::new(cpu, 1, Some(table));
    let mut dual = DividerFarm::new(cpu, 2, None);
    for &op in divisions {
        if op.kind() != OpKind::FpDiv {
            continue;
        }
        single.issue(op);
        with_interface.issue(op);
        dual.issue(op);
    }
    FarmComparison {
        divisions: single.issued,
        single: single.result(),
        with_interface: with_interface.result(),
        dual: dual.result(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repetitive_stream(n: usize, distinct: usize) -> Vec<Op> {
        (0..n).map(|i| Op::FpDiv((i % distinct + 2) as f64, 3.0)).collect()
    }

    #[test]
    fn interface_approaches_dual_divider_throughput_on_hot_streams() {
        let cpu = CpuModel::paper_slow();
        let ops = repetitive_stream(2000, 8);
        let cmp = compare_divider_farms(&cpu, MemoConfig::paper_default(), &ops);
        assert!(cmp.with_interface.cycles < cmp.single.cycles / 3,
            "interface {} vs single {}", cmp.with_interface.cycles, cmp.single.cycles);
        // On a hot stream the table interface beats even two real dividers:
        // hits retire 1/cycle while dividers still take 39 cycles each.
        assert!(
            cmp.with_interface.cycles <= cmp.dual.cycles,
            "interface {} vs dual {}",
            cmp.with_interface.cycles,
            cmp.dual.cycles
        );
        assert!(cmp.with_interface.interface_hits > 1900);
    }

    #[test]
    fn cold_streams_leave_the_interface_idle() {
        let cpu = CpuModel::paper_slow();
        let ops: Vec<Op> = (0..500).map(|i| Op::FpDiv(f64::from(i) + 0.5, 3.0)).collect();
        let cmp = compare_divider_farms(&cpu, MemoConfig::paper_default(), &ops);
        assert_eq!(cmp.with_interface.interface_hits, 0);
        // Without hits the interface machine degenerates to the single
        // divider (every division stalls for the one real unit).
        assert_eq!(cmp.with_interface.cycles, cmp.single.cycles);
        // …and two dividers genuinely double throughput.
        assert!(cmp.dual.cycles < cmp.single.cycles * 6 / 10);
    }

    #[test]
    fn throughput_accounting() {
        let cpu = CpuModel::paper_fast(); // 13-cycle divider
        let ops = repetitive_stream(130, 1);
        let cmp = compare_divider_farms(&cpu, MemoConfig::paper_default(), &ops);
        // Single divider: ~1/13 division per cycle.
        let tp = cmp.single.throughput(cmp.divisions);
        assert!((tp - 1.0 / 13.0).abs() < 0.01, "single throughput {tp}");
        // Interface: first missed, rest hit → ~1/cycle.
        let tp = cmp.with_interface.throughput(cmp.divisions);
        assert!(tp > 0.85, "interface throughput {tp}");
    }

    #[test]
    #[should_panic(expected = "at least one real divider")]
    fn zero_dividers_rejected() {
        let _ = DividerFarm::new(&CpuModel::paper_slow(), 0, None);
    }
}

//! Record-once / replay-many operand traces.
//!
//! The paper's evaluation sweeps table geometry and policy over a *fixed*
//! dynamic operand stream — Shade recorded each benchmark once and every
//! MEMO-TABLE configuration was evaluated against the same trace (§3.1).
//! Our harness originally re-executed every kernel natively per sweep
//! point; the structures here restore the paper's record-once model:
//!
//! * [`OpTrace`] — the arithmetic operand stream (the traffic MEMO-TABLEs
//!   see), stored as a structure-of-arrays buffer: run-length-encoded
//!   [`OpKind`] discriminants plus packed `u64` operand columns. No
//!   per-event allocation; ≤ 16 bytes per operation.
//! * [`TraceRecorderSink`] — an [`EventSink`] that captures the `Arith`
//!   events of a kernel run into an `OpTrace` and discards the rest.
//! * [`EventTrace`] — the *full* event stream (loads, branches, ALU ops,
//!   arithmetic) in the same SoA style, for cycle-accounting experiments
//!   that need the memory hierarchy and instruction mix, not just the
//!   arithmetic traffic.
//!
//! Replay is exact: operands are stored as raw bit patterns
//! ([`Op::operand_bits`]) and reconstructed bit-identically, so a replayed
//! probe stream drives a [`MemoBank`] through precisely the operand values,
//! order, and kinds of the native run — hit ratios and statistics are
//! bit-identical (asserted by the equivalence tests in `memo-workloads`).

use memo_table::{batch_width, Memoizer, Op, OpBatch, OpKind, MAX_BATCH_WIDTH};

use crate::bank::MemoBank;
use crate::event::{Event, EventSink};

/// One run of consecutive same-kind operations, packed into 4 bytes:
/// kind index in the top 2 bits, run length in the low 30.
#[derive(Debug, Clone, Copy)]
struct KindRun(u32);

const RUN_LEN_BITS: u32 = 30;
const MAX_RUN_LEN: u32 = (1 << RUN_LEN_BITS) - 1;

impl KindRun {
    fn new(kind: OpKind, len: u32) -> Self {
        let idx = match kind {
            OpKind::IntMul => 0u32,
            OpKind::FpMul => 1,
            OpKind::FpDiv => 2,
            OpKind::FpSqrt => 3,
        };
        KindRun(idx << RUN_LEN_BITS | len)
    }

    fn kind(self) -> OpKind {
        match self.0 >> RUN_LEN_BITS {
            0 => OpKind::IntMul,
            1 => OpKind::FpMul,
            2 => OpKind::FpDiv,
            _ => OpKind::FpSqrt,
        }
    }

    fn len(self) -> u32 {
        self.0 & MAX_RUN_LEN
    }
}

/// A compact structure-of-arrays trace of the arithmetic operand stream.
///
/// Layout: kinds are run-length encoded (`KindRun`), first operands live in
/// column `a`, second operands of binary operations in column `b` (square
/// root consumes only `a`). Binary operations therefore cost 16 bytes,
/// square roots 8, plus a few bytes amortized over each kind run.
#[derive(Debug, Clone, Default)]
pub struct OpTrace {
    runs: Vec<KindRun>,
    a: Vec<u64>,
    b: Vec<u64>,
    len: usize,
}

impl OpTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one operation.
    pub fn push(&mut self, op: Op) {
        let kind = op.kind();
        let (a, b) = op.operand_bits();
        self.a.push(a);
        if kind != OpKind::FpSqrt {
            self.b.push(b);
        }
        match self.runs.last_mut() {
            Some(run) if run.kind() == kind && run.len() < MAX_RUN_LEN => run.0 += 1,
            _ => self.runs.push(KindRun::new(kind, 1)),
        }
        self.len += 1;
    }

    /// Number of recorded operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of recorded operations of `kind`.
    #[must_use]
    pub fn count(&self, kind: OpKind) -> usize {
        self.runs.iter().filter(|r| r.kind() == kind).map(|r| r.len() as usize).sum()
    }

    /// Approximate heap footprint in bytes (operand columns + run index).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.a.len() * 8 + self.b.len() * 8 + self.runs.len() * std::mem::size_of::<KindRun>()
    }

    /// Iterate the operations in recorded order, reconstructed bit-exactly.
    pub fn iter(&self) -> OpIter<'_> {
        OpIter { cursor: RunCursor::new(self), current: None, lane: 0, remaining: self.len }
    }

    /// The trace as a contiguous operation list (for consumers that need a
    /// slice, e.g. the divider-farm comparison).
    #[must_use]
    pub fn to_ops(&self) -> Vec<Op> {
        let mut ops = Vec::with_capacity(self.len());
        ops.extend(self.iter());
        ops
    }

    /// Replay every operation into `bank`, exactly as
    /// [`MemoBank::execute`] would see them from a native run.
    ///
    /// Operations flow through the batched path ([`MemoBank::execute_batch`])
    /// at the ambient tile width ([`batch_width`], overridable via the
    /// `MEMO_BATCH` environment variable) — bit-identical statistics to
    /// [`replay_scalar`](Self::replay_scalar), several times faster.
    pub fn replay(&self, bank: &mut MemoBank) {
        self.replay_batched(bank, batch_width());
    }

    /// Batched replay at an explicit tile width.
    ///
    /// Tiles are *warps*: same-kind lanes gathered across RLE run
    /// boundaries into per-kind pending buffers, flushed as full-width
    /// tiles (short interleaved runs — the common shape of per-pixel
    /// kernels — would otherwise produce one- and two-lane tiles whose
    /// setup cost erases the batching win). Each [`OpKind`] drives its own
    /// table in the bank, so gathering preserves the exact per-table
    /// operand order and every statistic stays bit-identical to
    /// [`replay_scalar`](Self::replay_scalar); only the interleaving
    /// *between* independent tables changes. Partial warps left at the end
    /// of the trace flush in [`OpKind::ALL`] order. Long runs still stream
    /// zero-copy: whole-width tiles are sliced straight from the operand
    /// columns and only run tails touch the gather buffers.
    pub fn replay_batched(&self, bank: &mut MemoBank, width: usize) {
        let width = width.clamp(1, MAX_BATCH_WIDTH);
        let mut pend_a = [[0u64; MAX_BATCH_WIDTH]; 4];
        let mut pend_b = [[0u64; MAX_BATCH_WIDTH]; 4];
        let mut fill = [0usize; 4];
        let lane = |kind: OpKind| kind as usize;

        let mut cursor = RunCursor::new(self);
        while let Some(run) = cursor.next_run() {
            let kind = run.kind();
            let k = lane(kind);
            let unary = kind == OpKind::FpSqrt;
            let (ra, rb) = (run.a(), run.b());
            let n = run.len();
            let mut start = 0usize;

            // Top up a pending warp before streaming whole tiles.
            if fill[k] > 0 {
                let take = (width - fill[k]).min(n);
                pend_a[k][fill[k]..fill[k] + take].copy_from_slice(&ra[..take]);
                if !unary {
                    pend_b[k][fill[k]..fill[k] + take].copy_from_slice(&rb[..take]);
                }
                fill[k] += take;
                start = take;
                if fill[k] < width {
                    continue; // run exhausted; warp still filling
                }
                let b = if unary { &[][..] } else { &pend_b[k][..width] };
                bank.execute_batch(&OpBatch::new(kind, &pend_a[k][..width], b));
                fill[k] = 0;
            }
            while n - start >= width {
                bank.execute_batch(&run.slice(start, width));
                start += width;
            }
            let rem = n - start;
            if rem > 0 {
                pend_a[k][..rem].copy_from_slice(&ra[start..]);
                if !unary {
                    pend_b[k][..rem].copy_from_slice(&rb[start..]);
                }
                fill[k] = rem;
            }
        }
        for kind in OpKind::ALL {
            let k = lane(kind);
            if fill[k] > 0 {
                let b = if kind == OpKind::FpSqrt { &[][..] } else { &pend_b[k][..fill[k]] };
                bank.execute_batch(&OpBatch::new(kind, &pend_a[k][..fill[k]], b));
            }
        }
    }

    /// Scalar per-op replay — the oracle the batched path is property-tested
    /// against, and the baseline the `trace_replay` bench measures it over.
    pub fn replay_scalar(&self, bank: &mut MemoBank) {
        self.for_each(|op| {
            bank.execute(op);
        });
    }

    /// Replay only the operations of `kind` into a single memoizer — the
    /// per-unit sweep used by the size/associativity figures. Batched, like
    /// [`replay`](Self::replay).
    pub fn replay_kind<M: Memoizer>(&self, kind: OpKind, table: &mut M) {
        self.for_each_kind_batch(kind, batch_width(), |tile| {
            table.execute_batch(tile);
        });
    }

    /// Per-kind replay through the batched probe path. Alias of
    /// [`replay_kind`](Self::replay_kind), kept for callers that opted into
    /// chunked decoding before it became the default.
    pub fn replay_kind_batched<M: Memoizer>(&self, kind: OpKind, table: &mut M) {
        self.replay_kind(kind, table);
    }

    /// Scalar per-kind replay (the per-op oracle for `replay_kind`).
    pub fn replay_kind_scalar<M: Memoizer>(&self, kind: OpKind, table: &mut M) {
        self.for_each_kind(kind, |op| {
            table.execute(op);
        });
    }

    /// Visit the operations of `kind` in recorded order, decoded through
    /// the shared run cursor.
    pub fn for_each_kind(&self, kind: OpKind, mut f: impl FnMut(Op)) {
        let mut cursor = RunCursor::new(self);
        while let Some(run) = cursor.next_run() {
            if run.kind() == kind {
                decode_run(kind, run.a(), run.b(), &mut f);
            }
        }
    }

    /// Visit the trace as same-kind operand tiles of at most `width` lanes.
    ///
    /// Each RLE run is expanded **once** into its structure-of-arrays
    /// operand slices and then chunked; tiles never cross run boundaries,
    /// so the final tile of a run may be partial (down to a single lane).
    /// A zero `width` is treated as 1.
    pub fn for_each_batch(&self, width: usize, mut f: impl FnMut(&OpBatch<'_>)) {
        let width = width.max(1);
        let mut cursor = RunCursor::new(self);
        while let Some(run) = cursor.next_run() {
            let n = run.len();
            let mut start = 0;
            while start < n {
                let w = width.min(n - start);
                f(&run.slice(start, w));
                start += w;
            }
        }
    }

    /// Visit only the operations of `kind` as operand tiles of exactly
    /// `width` lanes (clamped to [`MAX_BATCH_WIDTH`]; only the final tile
    /// may be shorter). Runs of other kinds are skipped by the run index
    /// without decoding their operands; lanes of `kind` are gathered
    /// *across* run boundaries in recorded order, so short interleaved
    /// runs still fill whole warps. Long runs stream zero-copy; only run
    /// tails are staged through the gather buffer.
    pub fn for_each_kind_batch(&self, kind: OpKind, width: usize, mut f: impl FnMut(&OpBatch<'_>)) {
        let width = width.clamp(1, MAX_BATCH_WIDTH);
        let unary = kind == OpKind::FpSqrt;
        let mut buf_a = [0u64; MAX_BATCH_WIDTH];
        let mut buf_b = [0u64; MAX_BATCH_WIDTH];
        let mut fill = 0usize;

        let mut cursor = RunCursor::new(self);
        while let Some(run) = cursor.next_run() {
            if run.kind() != kind {
                continue;
            }
            let (ra, rb) = (run.a(), run.b());
            let n = run.len();
            let mut start = 0usize;

            if fill > 0 {
                let take = (width - fill).min(n);
                buf_a[fill..fill + take].copy_from_slice(&ra[..take]);
                if !unary {
                    buf_b[fill..fill + take].copy_from_slice(&rb[..take]);
                }
                fill += take;
                start = take;
                if fill < width {
                    continue;
                }
                let b = if unary { &[][..] } else { &buf_b[..width] };
                f(&OpBatch::new(kind, &buf_a[..width], b));
                fill = 0;
            }
            while n - start >= width {
                f(&run.slice(start, width));
                start += width;
            }
            let rem = n - start;
            if rem > 0 {
                buf_a[..rem].copy_from_slice(&ra[start..]);
                if !unary {
                    buf_b[..rem].copy_from_slice(&rb[start..]);
                }
                fill = rem;
            }
        }
        if fill > 0 {
            let b = if unary { &[][..] } else { &buf_b[..fill] };
            f(&OpBatch::new(kind, &buf_a[..fill], b));
        }
    }

    /// Replay the trace as [`Event::Arith`] events into an arbitrary sink
    /// (e.g. the fault-tolerance differential checker). Tiled through
    /// [`EventSink::record_arith_batch`] so batching-aware sinks (the cycle
    /// accountant) charge per run, while plain sinks see the usual per-op
    /// `record` calls via the trait default.
    pub fn replay_events<S: EventSink>(&self, sink: &mut S) {
        self.for_each_batch(batch_width(), |tile| sink.record_arith_batch(tile));
    }

    fn for_each(&self, mut f: impl FnMut(Op)) {
        let mut cursor = RunCursor::new(self);
        while let Some(run) = cursor.next_run() {
            decode_run(run.kind(), run.a(), run.b(), &mut f);
        }
    }
}

/// Shared RLE decoder over an [`OpTrace`]: resolves one kind run at a time
/// into its structure-of-arrays operand slices.
///
/// Every consumer — the batch visitors, the scalar [`OpIter`], `for_each`
/// — draws whole runs from this cursor, so run expansion (kind decode and
/// operand-column slicing) happens once per *run*, not once per operation.
#[derive(Debug, Clone)]
struct RunCursor<'a> {
    trace: &'a OpTrace,
    run: usize,
    ai: usize,
    bi: usize,
}

impl<'a> RunCursor<'a> {
    fn new(trace: &'a OpTrace) -> Self {
        RunCursor { trace, run: 0, ai: 0, bi: 0 }
    }

    /// Decode the next run into a whole-run operand batch (zero copies —
    /// the batch borrows the trace's columns).
    fn next_run(&mut self) -> Option<OpBatch<'a>> {
        let run = self.trace.runs.get(self.run)?;
        self.run += 1;
        let kind = run.kind();
        let n = run.len() as usize;
        let a = &self.trace.a[self.ai..self.ai + n];
        self.ai += n;
        let b = if kind == OpKind::FpSqrt {
            &[][..]
        } else {
            let b = &self.trace.b[self.bi..self.bi + n];
            self.bi += n;
            b
        };
        Some(OpBatch::new(kind, a, b))
    }
}

/// Why [`OpTrace::from_bytes`] rejected a buffer. Callers treat any
/// variant as "not a usable trace" and fall back to native recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// The magic bytes do not mark an `OpTrace`.
    WrongMagic,
    /// The version tag is not the one this build encodes — the format
    /// changed, so the trace must be re-recorded, not reinterpreted.
    WrongVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The buffer is shorter than its own headers claim.
    Truncated,
    /// The decoded structure is internally inconsistent (run lengths do
    /// not sum to the operation count, or operand columns are missized).
    Inconsistent,
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDecodeError::WrongMagic => write!(f, "not an OpTrace blob"),
            TraceDecodeError::WrongVersion { found } => {
                write!(f, "OpTrace format v{found} (this build reads v{OP_TRACE_VERSION})")
            }
            TraceDecodeError::Truncated => write!(f, "OpTrace blob truncated"),
            TraceDecodeError::Inconsistent => write!(f, "OpTrace blob internally inconsistent"),
        }
    }
}

impl std::error::Error for TraceDecodeError {}

/// Serialization format version written by [`OpTrace::to_bytes`]. Bump on
/// any layout change so stale persisted traces invalidate cleanly.
pub const OP_TRACE_VERSION: u16 = 1;

const OP_TRACE_MAGIC: &[u8; 4] = b"MTRV";

impl OpTrace {
    /// Serialize to a self-describing byte buffer: magic, version tag,
    /// then the SoA columns verbatim (RLE kind runs, operand columns).
    /// The encoding is little-endian and platform-independent.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(26 + self.runs.len() * 4 + (self.a.len() + self.b.len()) * 8);
        out.extend_from_slice(OP_TRACE_MAGIC);
        out.extend_from_slice(&OP_TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        out.extend_from_slice(&(u32::try_from(self.runs.len()).expect("runs fit u32")).to_le_bytes());
        out.extend_from_slice(&(u32::try_from(self.a.len()).expect("column fits u32")).to_le_bytes());
        out.extend_from_slice(&(u32::try_from(self.b.len()).expect("column fits u32")).to_le_bytes());
        for run in &self.runs {
            out.extend_from_slice(&run.0.to_le_bytes());
        }
        for &a in &self.a {
            out.extend_from_slice(&a.to_le_bytes());
        }
        for &b in &self.b {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out
    }

    /// Deserialize a buffer produced by [`to_bytes`](Self::to_bytes),
    /// validating the version tag and the structural invariants (run
    /// lengths sum to the operation count, operand columns are exactly
    /// the sizes the runs imply).
    ///
    /// # Errors
    ///
    /// [`TraceDecodeError`] on any mismatch — treat as "record natively".
    pub fn from_bytes(bytes: &[u8]) -> Result<OpTrace, TraceDecodeError> {
        if bytes.len() < 6 {
            return Err(TraceDecodeError::Truncated);
        }
        if &bytes[..4] != OP_TRACE_MAGIC {
            return Err(TraceDecodeError::WrongMagic);
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if version != OP_TRACE_VERSION {
            return Err(TraceDecodeError::WrongVersion { found: version });
        }
        let rest = &bytes[6..];
        if rest.len() < 20 {
            return Err(TraceDecodeError::Truncated);
        }
        let len = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
        let len = usize::try_from(len).map_err(|_| TraceDecodeError::Inconsistent)?;
        let nruns = u32::from_le_bytes(rest[8..12].try_into().expect("4 bytes")) as usize;
        let na = u32::from_le_bytes(rest[12..16].try_into().expect("4 bytes")) as usize;
        let nb = u32::from_le_bytes(rest[16..20].try_into().expect("4 bytes")) as usize;
        let body = &rest[20..];
        let need = nruns
            .checked_mul(4)
            .and_then(|r| (na + nb).checked_mul(8).map(|c| (r, c)))
            .and_then(|(r, c)| r.checked_add(c))
            .ok_or(TraceDecodeError::Inconsistent)?;
        if body.len() != need {
            return Err(TraceDecodeError::Truncated);
        }
        let runs: Vec<KindRun> = body[..nruns * 4]
            .chunks_exact(4)
            .map(|c| KindRun(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .collect();
        let a: Vec<u64> = body[nruns * 4..nruns * 4 + na * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        let b: Vec<u64> = body[nruns * 4 + na * 8..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        // Structural invariants: run lengths sum to `len`, column sizes
        // are exactly what the runs imply (sqrt consumes only column a).
        let mut total = 0usize;
        let mut binary = 0usize;
        for run in &runs {
            let n = run.len() as usize;
            if n == 0 {
                return Err(TraceDecodeError::Inconsistent);
            }
            total += n;
            if run.kind() != OpKind::FpSqrt {
                binary += n;
            }
        }
        if total != len || a.len() != len || b.len() != binary {
            return Err(TraceDecodeError::Inconsistent);
        }
        Ok(OpTrace { runs, a, b, len })
    }
}

/// Decode one same-kind run from its operand slices. The kind match is
/// hoisted out of the operand loop and the zipped slices elide the
/// per-operand bounds checks of indexed decoding.
#[inline]
fn decode_run(kind: OpKind, a: &[u64], b: &[u64], f: &mut impl FnMut(Op)) {
    match kind {
        OpKind::IntMul => {
            for (&a, &b) in a.iter().zip(b) {
                f(Op::IntMul(a as i64, b as i64));
            }
        }
        OpKind::FpMul => {
            for (&a, &b) in a.iter().zip(b) {
                f(Op::FpMul(f64::from_bits(a), f64::from_bits(b)));
            }
        }
        OpKind::FpDiv => {
            for (&a, &b) in a.iter().zip(b) {
                f(Op::FpDiv(f64::from_bits(a), f64::from_bits(b)));
            }
        }
        OpKind::FpSqrt => {
            for &a in a {
                f(Op::FpSqrt(f64::from_bits(a)));
            }
        }
    }
}

/// Iterator over the operations of an [`OpTrace`].
///
/// A thin wrapper over the shared [`RunCursor`]: each RLE run is expanded
/// into operand slices once (the same decode the batch visitors use) and
/// lanes are then rebuilt by slice index — the per-op `next()` no longer
/// carries run-state bookkeeping.
#[derive(Debug)]
pub struct OpIter<'a> {
    cursor: RunCursor<'a>,
    /// The run currently being yielded; lanes `< lane` are consumed.
    current: Option<OpBatch<'a>>,
    lane: usize,
    remaining: usize,
}

impl Iterator for OpIter<'_> {
    type Item = Op;

    #[inline]
    fn next(&mut self) -> Option<Op> {
        loop {
            if let Some(run) = &self.current {
                if self.lane < run.len() {
                    let op = run.op(self.lane);
                    self.lane += 1;
                    self.remaining -= 1;
                    return Some(op);
                }
            }
            self.current = Some(self.cursor.next_run()?);
            self.lane = 0;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for OpIter<'_> {}

/// Records the arithmetic operand stream of a kernel run; every other
/// event is discarded. Use [`EventTrace`] when the full stream matters.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorderSink {
    trace: OpTrace,
}

impl TraceRecorderSink {
    /// A recorder with an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish recording and take the trace.
    #[must_use]
    pub fn into_trace(self) -> OpTrace {
        self.trace
    }

    /// The trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &OpTrace {
        &self.trace
    }
}

impl EventSink for TraceRecorderSink {
    fn record(&mut self, event: Event) {
        if let Event::Arith(op) = event {
            self.trace.push(op);
        }
    }
}

/// Event-class discriminant for [`EventTrace`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvClass {
    IntAlu,
    FpAdd,
    Branch,
    Annulled,
    Load,
    Store,
    Arith(OpKind),
}

impl EvClass {
    fn of(event: &Event) -> Self {
        match event {
            Event::IntAlu => EvClass::IntAlu,
            Event::FpAdd => EvClass::FpAdd,
            Event::Branch => EvClass::Branch,
            Event::Annulled => EvClass::Annulled,
            Event::Load(_) => EvClass::Load,
            Event::Store(_) => EvClass::Store,
            Event::Arith(op) => EvClass::Arith(op.kind()),
        }
    }

    /// `u64` payload words one event of this class consumes.
    fn payload_words(self) -> usize {
        match self {
            EvClass::IntAlu | EvClass::FpAdd | EvClass::Branch | EvClass::Annulled => 0,
            EvClass::Load | EvClass::Store | EvClass::Arith(OpKind::FpSqrt) => 1,
            EvClass::Arith(_) => 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct EvRun {
    class: EvClass,
    len: u32,
}

/// The complete dynamic event stream of one kernel run, in SoA form.
///
/// Cycle-accounting experiments (Tables 11–13, the protection-overhead
/// study, the pipeline models) need loads, branches, and the instruction
/// mix — not just the arithmetic traffic. `EventTrace` records the full
/// stream once and replays it into any number of [`EventSink`]s (cycle
/// accountants with different CPU profiles, banks with different
/// protection policies) without re-running the kernel.
///
/// Payload-free events (ALU ops, branches, FP adds, annulled slots) cost
/// only their share of a run header; loads/stores and square roots cost
/// 8 bytes; binary arithmetic costs 16.
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    runs: Vec<EvRun>,
    payload: Vec<u64>,
    len: usize,
}

impl EventTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.payload.len() * 8 + self.runs.len() * std::mem::size_of::<EvRun>()
    }

    /// Replay the stream into `sink`, reconstructing each event
    /// bit-identically in recorded order.
    ///
    /// Payload-free runs go through [`EventSink::record_repeated`] and
    /// arithmetic runs through [`EventSink::record_arith_batch`] in
    /// [`batch_width`]-lane tiles, so batching-aware sinks (the cycle
    /// accountant) charge whole runs at once; sinks relying on the trait
    /// defaults observe exactly the historical per-event `record` calls.
    pub fn replay_into<S: EventSink>(&self, sink: &mut S) {
        let width = batch_width();
        let mut pi = 0usize;
        for run in &self.runs {
            let n = run.len as usize;
            match run.class {
                EvClass::IntAlu => sink.record_repeated(Event::IntAlu, n as u64),
                EvClass::FpAdd => sink.record_repeated(Event::FpAdd, n as u64),
                EvClass::Branch => sink.record_repeated(Event::Branch, n as u64),
                EvClass::Annulled => sink.record_repeated(Event::Annulled, n as u64),
                EvClass::Load => {
                    for i in 0..n {
                        sink.record(Event::Load(self.payload[pi + i]));
                    }
                    pi += n;
                }
                EvClass::Store => {
                    for i in 0..n {
                        sink.record(Event::Store(self.payload[pi + i]));
                    }
                    pi += n;
                }
                EvClass::Arith(OpKind::FpSqrt) => {
                    // The payload already *is* the contiguous `a` column.
                    let col = &self.payload[pi..pi + n];
                    let mut start = 0;
                    while start < n {
                        let w = width.min(n - start);
                        sink.record_arith_batch(&OpBatch::new(
                            OpKind::FpSqrt,
                            &col[start..start + w],
                            &[],
                        ));
                        start += w;
                    }
                    pi += n;
                }
                EvClass::Arith(kind) => {
                    // Binary payload is interleaved `[a, b, a, b, …]`:
                    // gather it into stack lane tiles.
                    let mut a = [0u64; MAX_BATCH_WIDTH];
                    let mut b = [0u64; MAX_BATCH_WIDTH];
                    let mut start = 0;
                    while start < n {
                        let w = width.min(n - start);
                        for i in 0..w {
                            a[i] = self.payload[pi + (start + i) * 2];
                            b[i] = self.payload[pi + (start + i) * 2 + 1];
                        }
                        sink.record_arith_batch(&OpBatch::new(kind, &a[..w], &b[..w]));
                        start += w;
                    }
                    pi += n * EvClass::Arith(kind).payload_words();
                }
            }
        }
    }
}

impl EventSink for EventTrace {
    fn record(&mut self, event: Event) {
        let class = EvClass::of(&event);
        match event {
            Event::Load(addr) | Event::Store(addr) => self.payload.push(addr),
            Event::Arith(op) => {
                let (a, b) = op.operand_bits();
                self.payload.push(a);
                if op.kind() != OpKind::FpSqrt {
                    self.payload.push(b);
                }
            }
            _ => {}
        }
        match self.runs.last_mut() {
            Some(run) if run.class == class && run.len < u32::MAX => run.len += 1,
            _ => self.runs.push(EvRun { class, len: 1 }),
        }
        self.len += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CountingSink, TraceBuffer};
    use memo_table::{MemoConfig, MemoTable};

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::FpDiv(355.0, 113.0),
            Op::FpDiv(355.0, 113.0),
            Op::FpMul(1.5, -0.0),
            Op::IntMul(-7, 6),
            Op::IntMul(i64::MIN, -1),
            Op::FpSqrt(2.0),
            Op::FpMul(f64::NAN, 1.0),
            Op::FpDiv(1.0, 0.0),
        ]
    }

    #[test]
    fn roundtrips_ops_bit_exactly() {
        let mut trace = OpTrace::new();
        for &op in &sample_ops() {
            trace.push(op);
        }
        assert_eq!(trace.len(), 8);
        let back = trace.to_ops();
        for (orig, got) in sample_ops().iter().zip(&back) {
            assert_eq!(orig.kind(), got.kind());
            assert_eq!(orig.operand_bits(), got.operand_bits());
        }
    }

    #[test]
    fn recorder_keeps_only_arith() {
        let mut rec = TraceRecorderSink::new();
        let _ = rec.fdiv(10.0, 4.0);
        rec.load(0x40);
        rec.branch();
        let _ = rec.imul(3, 4);
        rec.int_ops(5);
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.count(OpKind::FpDiv), 1);
        assert_eq!(trace.count(OpKind::IntMul), 1);
    }

    #[test]
    fn replay_matches_native_bank_stats() {
        let ops = sample_ops();
        let mut native = MemoBank::paper_default();
        let mut trace = OpTrace::new();
        for &op in &ops {
            native.execute(op);
            trace.push(op);
        }
        let mut replayed = MemoBank::paper_default();
        trace.replay(&mut replayed);
        for kind in OpKind::ALL {
            assert_eq!(native.stats(kind), replayed.stats(kind), "{kind}");
        }
    }

    #[test]
    fn replay_kind_filters() {
        let mut trace = OpTrace::new();
        for &op in &sample_ops() {
            trace.push(op);
        }
        let mut table = MemoTable::new(MemoConfig::paper_default());
        trace.replay_kind(OpKind::FpDiv, &mut table);
        assert_eq!(table.stats().ops_seen, 3);
    }

    #[test]
    fn memory_bound_is_16_bytes_per_op() {
        // Kernel inner loops emit bursts of same-kind operations; the run
        // index amortizes to well under a byte per op.
        let mut trace = OpTrace::new();
        for burst in 0..200i64 {
            for i in 0..64 {
                trace.push(Op::IntMul(burst, i));
            }
            for i in 0..64 {
                trace.push(Op::FpMul(burst as f64, i as f64));
            }
        }
        let per_op = trace.approx_bytes() as f64 / trace.len() as f64;
        assert!(per_op <= 16.1, "got {per_op} bytes/op");
    }

    #[test]
    fn event_trace_replays_full_stream() {
        let mut native = TraceBuffer::new();
        let mut trace = EventTrace::new();
        for sink in [&mut native as &mut dyn EventSink, &mut trace as &mut dyn EventSink] {
            let _ = sink.fmul(2.0, 3.0);
            sink.load(0x100);
            sink.int_ops(4);
            sink.branch();
            let _ = sink.fsqrt(2.0);
            sink.store(0x200);
            sink.annulled();
            let _ = sink.fadd(1.0, 1.0);
            let _ = sink.imul(5, 9);
        }
        assert_eq!(trace.len(), native.len());

        let mut replayed = TraceBuffer::new();
        trace.replay_into(&mut replayed);
        assert_eq!(replayed.events(), native.events());

        let mut mix = CountingSink::new();
        trace.replay_into(&mut mix);
        assert_eq!(mix.mix().int_alu, 4);
        assert_eq!(mix.mix().loads, 1);
        assert_eq!(mix.mix().fp_sqrt, 1);
    }

    #[test]
    fn serialization_roundtrips_bit_exactly() {
        let mut trace = OpTrace::new();
        for &op in &sample_ops() {
            trace.push(op);
        }
        let bytes = trace.to_bytes();
        let back = OpTrace::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), trace.len());
        for (orig, got) in trace.iter().zip(back.iter()) {
            assert_eq!(orig.kind(), got.kind());
            assert_eq!(orig.operand_bits(), got.operand_bits());
        }
        // Replay equivalence: the decoded trace drives a bank identically.
        let mut native = MemoBank::paper_default();
        trace.replay(&mut native);
        let mut decoded = MemoBank::paper_default();
        back.replay(&mut decoded);
        for kind in OpKind::ALL {
            assert_eq!(native.stats(kind), decoded.stats(kind), "{kind}");
        }
        // Empty trace roundtrips too.
        let empty = OpTrace::from_bytes(&OpTrace::new().to_bytes()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn deserialization_rejects_damage() {
        let mut trace = OpTrace::new();
        for &op in &sample_ops() {
            trace.push(op);
        }
        let bytes = trace.to_bytes();
        assert!(matches!(OpTrace::from_bytes(b"xx"), Err(TraceDecodeError::Truncated)));
        assert!(matches!(OpTrace::from_bytes(b"NOPE\x01\x00"), Err(TraceDecodeError::WrongMagic)));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 9;
        assert!(matches!(
            OpTrace::from_bytes(&wrong_version),
            Err(TraceDecodeError::WrongVersion { found: 9 })
        ));
        assert!(matches!(
            OpTrace::from_bytes(&bytes[..bytes.len() - 1]),
            Err(TraceDecodeError::Truncated)
        ));
        // Corrupt the op count so runs no longer sum to it.
        let mut inconsistent = bytes.clone();
        inconsistent[6] ^= 0x01;
        assert!(matches!(
            OpTrace::from_bytes(&inconsistent),
            Err(TraceDecodeError::Inconsistent)
        ));
    }

    #[test]
    fn op_iter_is_exact_size() {
        let mut trace = OpTrace::new();
        for &op in &sample_ops() {
            trace.push(op);
        }
        let mut iter = trace.iter();
        assert_eq!(iter.len(), 8);
        iter.next();
        assert_eq!(iter.len(), 7);
        assert_eq!(iter.count(), 7);
    }
}

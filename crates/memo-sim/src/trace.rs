//! Record-once / replay-many operand traces.
//!
//! The paper's evaluation sweeps table geometry and policy over a *fixed*
//! dynamic operand stream — Shade recorded each benchmark once and every
//! MEMO-TABLE configuration was evaluated against the same trace (§3.1).
//! Our harness originally re-executed every kernel natively per sweep
//! point; the structures here restore the paper's record-once model:
//!
//! * [`OpTrace`] — the arithmetic operand stream (the traffic MEMO-TABLEs
//!   see), stored as a structure-of-arrays buffer: run-length-encoded
//!   [`OpKind`] discriminants plus packed `u64` operand columns. No
//!   per-event allocation; ≤ 16 bytes per operation.
//! * [`TraceRecorderSink`] — an [`EventSink`] that captures the `Arith`
//!   events of a kernel run into an `OpTrace` and discards the rest.
//! * [`EventTrace`] — the *full* event stream (loads, branches, ALU ops,
//!   arithmetic) in the same SoA style, for cycle-accounting experiments
//!   that need the memory hierarchy and instruction mix, not just the
//!   arithmetic traffic.
//!
//! Replay is exact: operands are stored as raw bit patterns
//! ([`Op::operand_bits`]) and reconstructed bit-identically, so a replayed
//! probe stream drives a [`MemoBank`] through precisely the operand values,
//! order, and kinds of the native run — hit ratios and statistics are
//! bit-identical (asserted by the equivalence tests in `memo-workloads`).

use memo_table::{Memoizer, Op, OpKind};

use crate::bank::MemoBank;
use crate::event::{Event, EventSink};

/// One run of consecutive same-kind operations, packed into 4 bytes:
/// kind index in the top 2 bits, run length in the low 30.
#[derive(Debug, Clone, Copy)]
struct KindRun(u32);

const RUN_LEN_BITS: u32 = 30;
const MAX_RUN_LEN: u32 = (1 << RUN_LEN_BITS) - 1;

impl KindRun {
    fn new(kind: OpKind, len: u32) -> Self {
        let idx = match kind {
            OpKind::IntMul => 0u32,
            OpKind::FpMul => 1,
            OpKind::FpDiv => 2,
            OpKind::FpSqrt => 3,
        };
        KindRun(idx << RUN_LEN_BITS | len)
    }

    fn kind(self) -> OpKind {
        match self.0 >> RUN_LEN_BITS {
            0 => OpKind::IntMul,
            1 => OpKind::FpMul,
            2 => OpKind::FpDiv,
            _ => OpKind::FpSqrt,
        }
    }

    fn len(self) -> u32 {
        self.0 & MAX_RUN_LEN
    }
}

/// A compact structure-of-arrays trace of the arithmetic operand stream.
///
/// Layout: kinds are run-length encoded (`KindRun`), first operands live in
/// column `a`, second operands of binary operations in column `b` (square
/// root consumes only `a`). Binary operations therefore cost 16 bytes,
/// square roots 8, plus a few bytes amortized over each kind run.
#[derive(Debug, Clone, Default)]
pub struct OpTrace {
    runs: Vec<KindRun>,
    a: Vec<u64>,
    b: Vec<u64>,
    len: usize,
}

impl OpTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one operation.
    pub fn push(&mut self, op: Op) {
        let kind = op.kind();
        let (a, b) = op.operand_bits();
        self.a.push(a);
        if kind != OpKind::FpSqrt {
            self.b.push(b);
        }
        match self.runs.last_mut() {
            Some(run) if run.kind() == kind && run.len() < MAX_RUN_LEN => run.0 += 1,
            _ => self.runs.push(KindRun::new(kind, 1)),
        }
        self.len += 1;
    }

    /// Number of recorded operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of recorded operations of `kind`.
    #[must_use]
    pub fn count(&self, kind: OpKind) -> usize {
        self.runs.iter().filter(|r| r.kind() == kind).map(|r| r.len() as usize).sum()
    }

    /// Approximate heap footprint in bytes (operand columns + run index).
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.a.len() * 8 + self.b.len() * 8 + self.runs.len() * std::mem::size_of::<KindRun>()
    }

    /// Iterate the operations in recorded order, reconstructed bit-exactly.
    pub fn iter(&self) -> OpIter<'_> {
        OpIter { trace: self, run: 0, left: 0, kind: OpKind::IntMul, ai: 0, bi: 0 }
    }

    /// The trace as a contiguous operation list (for consumers that need a
    /// slice, e.g. the divider-farm comparison).
    #[must_use]
    pub fn to_ops(&self) -> Vec<Op> {
        let mut ops = Vec::with_capacity(self.len());
        ops.extend(self.iter());
        ops
    }

    /// Replay every operation into `bank`, exactly as
    /// [`MemoBank::execute`] would see them from a native run.
    pub fn replay(&self, bank: &mut MemoBank) {
        self.for_each(|op| {
            bank.execute(op);
        });
    }

    /// Replay only the operations of `kind` into a single memoizer — the
    /// per-unit sweep used by the size/associativity figures.
    pub fn replay_kind<M: Memoizer>(&self, kind: OpKind, table: &mut M) {
        self.replay_kind_batched(kind, table);
    }

    /// Chunked per-kind replay: each RLE run is decoded through operand
    /// slices (one bounds check per run instead of one per operand) with
    /// the kind dispatched once per run.
    pub fn replay_kind_batched<M: Memoizer>(&self, kind: OpKind, table: &mut M) {
        self.for_each_kind(kind, |op| {
            table.execute(op);
        });
    }

    /// Visit the operations of `kind` in recorded order, decoded through
    /// the chunked run path (this is how the single-pass sweep engine in
    /// `memo-table` consumes a trace).
    pub fn for_each_kind(&self, kind: OpKind, mut f: impl FnMut(Op)) {
        let (mut ai, mut bi) = (0usize, 0usize);
        for run in &self.runs {
            let n = run.len() as usize;
            if run.kind() == kind {
                decode_run(kind, &self.a[ai..ai + n], &self.b[bi..], &mut f);
            }
            ai += n;
            if run.kind() != OpKind::FpSqrt {
                bi += n;
            }
        }
    }

    /// Replay the trace as [`Event::Arith`] events into an arbitrary sink
    /// (e.g. the fault-tolerance differential checker).
    pub fn replay_events<S: EventSink>(&self, sink: &mut S) {
        self.for_each(|op| sink.record(Event::Arith(op)));
    }

    fn for_each(&self, mut f: impl FnMut(Op)) {
        let (mut ai, mut bi) = (0usize, 0usize);
        for run in &self.runs {
            let n = run.len() as usize;
            let kind = run.kind();
            decode_run(kind, &self.a[ai..ai + n], &self.b[bi..], &mut f);
            ai += n;
            if kind != OpKind::FpSqrt {
                bi += n;
            }
        }
    }
}

/// Why [`OpTrace::from_bytes`] rejected a buffer. Callers treat any
/// variant as "not a usable trace" and fall back to native recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// The magic bytes do not mark an `OpTrace`.
    WrongMagic,
    /// The version tag is not the one this build encodes — the format
    /// changed, so the trace must be re-recorded, not reinterpreted.
    WrongVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The buffer is shorter than its own headers claim.
    Truncated,
    /// The decoded structure is internally inconsistent (run lengths do
    /// not sum to the operation count, or operand columns are missized).
    Inconsistent,
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDecodeError::WrongMagic => write!(f, "not an OpTrace blob"),
            TraceDecodeError::WrongVersion { found } => {
                write!(f, "OpTrace format v{found} (this build reads v{OP_TRACE_VERSION})")
            }
            TraceDecodeError::Truncated => write!(f, "OpTrace blob truncated"),
            TraceDecodeError::Inconsistent => write!(f, "OpTrace blob internally inconsistent"),
        }
    }
}

impl std::error::Error for TraceDecodeError {}

/// Serialization format version written by [`OpTrace::to_bytes`]. Bump on
/// any layout change so stale persisted traces invalidate cleanly.
pub const OP_TRACE_VERSION: u16 = 1;

const OP_TRACE_MAGIC: &[u8; 4] = b"MTRV";

impl OpTrace {
    /// Serialize to a self-describing byte buffer: magic, version tag,
    /// then the SoA columns verbatim (RLE kind runs, operand columns).
    /// The encoding is little-endian and platform-independent.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(26 + self.runs.len() * 4 + (self.a.len() + self.b.len()) * 8);
        out.extend_from_slice(OP_TRACE_MAGIC);
        out.extend_from_slice(&OP_TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        out.extend_from_slice(&(u32::try_from(self.runs.len()).expect("runs fit u32")).to_le_bytes());
        out.extend_from_slice(&(u32::try_from(self.a.len()).expect("column fits u32")).to_le_bytes());
        out.extend_from_slice(&(u32::try_from(self.b.len()).expect("column fits u32")).to_le_bytes());
        for run in &self.runs {
            out.extend_from_slice(&run.0.to_le_bytes());
        }
        for &a in &self.a {
            out.extend_from_slice(&a.to_le_bytes());
        }
        for &b in &self.b {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out
    }

    /// Deserialize a buffer produced by [`to_bytes`](Self::to_bytes),
    /// validating the version tag and the structural invariants (run
    /// lengths sum to the operation count, operand columns are exactly
    /// the sizes the runs imply).
    ///
    /// # Errors
    ///
    /// [`TraceDecodeError`] on any mismatch — treat as "record natively".
    pub fn from_bytes(bytes: &[u8]) -> Result<OpTrace, TraceDecodeError> {
        if bytes.len() < 6 {
            return Err(TraceDecodeError::Truncated);
        }
        if &bytes[..4] != OP_TRACE_MAGIC {
            return Err(TraceDecodeError::WrongMagic);
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if version != OP_TRACE_VERSION {
            return Err(TraceDecodeError::WrongVersion { found: version });
        }
        let rest = &bytes[6..];
        if rest.len() < 20 {
            return Err(TraceDecodeError::Truncated);
        }
        let len = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
        let len = usize::try_from(len).map_err(|_| TraceDecodeError::Inconsistent)?;
        let nruns = u32::from_le_bytes(rest[8..12].try_into().expect("4 bytes")) as usize;
        let na = u32::from_le_bytes(rest[12..16].try_into().expect("4 bytes")) as usize;
        let nb = u32::from_le_bytes(rest[16..20].try_into().expect("4 bytes")) as usize;
        let body = &rest[20..];
        let need = nruns
            .checked_mul(4)
            .and_then(|r| (na + nb).checked_mul(8).map(|c| (r, c)))
            .and_then(|(r, c)| r.checked_add(c))
            .ok_or(TraceDecodeError::Inconsistent)?;
        if body.len() != need {
            return Err(TraceDecodeError::Truncated);
        }
        let runs: Vec<KindRun> = body[..nruns * 4]
            .chunks_exact(4)
            .map(|c| KindRun(u32::from_le_bytes(c.try_into().expect("4 bytes"))))
            .collect();
        let a: Vec<u64> = body[nruns * 4..nruns * 4 + na * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        let b: Vec<u64> = body[nruns * 4 + na * 8..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        // Structural invariants: run lengths sum to `len`, column sizes
        // are exactly what the runs imply (sqrt consumes only column a).
        let mut total = 0usize;
        let mut binary = 0usize;
        for run in &runs {
            let n = run.len() as usize;
            if n == 0 {
                return Err(TraceDecodeError::Inconsistent);
            }
            total += n;
            if run.kind() != OpKind::FpSqrt {
                binary += n;
            }
        }
        if total != len || a.len() != len || b.len() != binary {
            return Err(TraceDecodeError::Inconsistent);
        }
        Ok(OpTrace { runs, a, b, len })
    }
}

/// Decode one same-kind run from its operand slices. The kind match is
/// hoisted out of the operand loop and the zipped slices elide the
/// per-operand bounds checks of indexed decoding.
#[inline]
fn decode_run(kind: OpKind, a: &[u64], b: &[u64], f: &mut impl FnMut(Op)) {
    match kind {
        OpKind::IntMul => {
            for (&a, &b) in a.iter().zip(b) {
                f(Op::IntMul(a as i64, b as i64));
            }
        }
        OpKind::FpMul => {
            for (&a, &b) in a.iter().zip(b) {
                f(Op::FpMul(f64::from_bits(a), f64::from_bits(b)));
            }
        }
        OpKind::FpDiv => {
            for (&a, &b) in a.iter().zip(b) {
                f(Op::FpDiv(f64::from_bits(a), f64::from_bits(b)));
            }
        }
        OpKind::FpSqrt => {
            for &a in a {
                f(Op::FpSqrt(f64::from_bits(a)));
            }
        }
    }
}

/// Rebuild an [`Op`] from its stored bit patterns.
#[inline]
fn rebuild(kind: OpKind, a: u64, b: &[u64], bi: usize) -> Op {
    match kind {
        OpKind::IntMul => Op::IntMul(a as i64, b[bi] as i64),
        OpKind::FpMul => Op::FpMul(f64::from_bits(a), f64::from_bits(b[bi])),
        OpKind::FpDiv => Op::FpDiv(f64::from_bits(a), f64::from_bits(b[bi])),
        OpKind::FpSqrt => Op::FpSqrt(f64::from_bits(a)),
    }
}

/// Iterator over the operations of an [`OpTrace`].
#[derive(Debug)]
pub struct OpIter<'a> {
    trace: &'a OpTrace,
    run: usize,
    left: u32,
    kind: OpKind,
    ai: usize,
    bi: usize,
}

impl Iterator for OpIter<'_> {
    type Item = Op;

    #[inline]
    fn next(&mut self) -> Option<Op> {
        if self.left == 0 {
            let run = self.trace.runs.get(self.run)?;
            self.run += 1;
            self.left = run.len();
            self.kind = run.kind();
        }
        self.left -= 1;
        let op = rebuild(self.kind, self.trace.a[self.ai], &self.trace.b, self.bi);
        self.ai += 1;
        if self.kind != OpKind::FpSqrt {
            self.bi += 1;
        }
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.trace.len - self.ai;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for OpIter<'_> {}

/// Records the arithmetic operand stream of a kernel run; every other
/// event is discarded. Use [`EventTrace`] when the full stream matters.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorderSink {
    trace: OpTrace,
}

impl TraceRecorderSink {
    /// A recorder with an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish recording and take the trace.
    #[must_use]
    pub fn into_trace(self) -> OpTrace {
        self.trace
    }

    /// The trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &OpTrace {
        &self.trace
    }
}

impl EventSink for TraceRecorderSink {
    fn record(&mut self, event: Event) {
        if let Event::Arith(op) = event {
            self.trace.push(op);
        }
    }
}

/// Event-class discriminant for [`EventTrace`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvClass {
    IntAlu,
    FpAdd,
    Branch,
    Annulled,
    Load,
    Store,
    Arith(OpKind),
}

impl EvClass {
    fn of(event: &Event) -> Self {
        match event {
            Event::IntAlu => EvClass::IntAlu,
            Event::FpAdd => EvClass::FpAdd,
            Event::Branch => EvClass::Branch,
            Event::Annulled => EvClass::Annulled,
            Event::Load(_) => EvClass::Load,
            Event::Store(_) => EvClass::Store,
            Event::Arith(op) => EvClass::Arith(op.kind()),
        }
    }

    /// `u64` payload words one event of this class consumes.
    fn payload_words(self) -> usize {
        match self {
            EvClass::IntAlu | EvClass::FpAdd | EvClass::Branch | EvClass::Annulled => 0,
            EvClass::Load | EvClass::Store | EvClass::Arith(OpKind::FpSqrt) => 1,
            EvClass::Arith(_) => 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct EvRun {
    class: EvClass,
    len: u32,
}

/// The complete dynamic event stream of one kernel run, in SoA form.
///
/// Cycle-accounting experiments (Tables 11–13, the protection-overhead
/// study, the pipeline models) need loads, branches, and the instruction
/// mix — not just the arithmetic traffic. `EventTrace` records the full
/// stream once and replays it into any number of [`EventSink`]s (cycle
/// accountants with different CPU profiles, banks with different
/// protection policies) without re-running the kernel.
///
/// Payload-free events (ALU ops, branches, FP adds, annulled slots) cost
/// only their share of a run header; loads/stores and square roots cost
/// 8 bytes; binary arithmetic costs 16.
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    runs: Vec<EvRun>,
    payload: Vec<u64>,
    len: usize,
}

impl EventTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.payload.len() * 8 + self.runs.len() * std::mem::size_of::<EvRun>()
    }

    /// Replay the stream into `sink`, reconstructing each event
    /// bit-identically in recorded order.
    pub fn replay_into<S: EventSink>(&self, sink: &mut S) {
        let mut pi = 0usize;
        for run in &self.runs {
            let n = run.len as usize;
            match run.class {
                EvClass::IntAlu => (0..n).for_each(|_| sink.record(Event::IntAlu)),
                EvClass::FpAdd => (0..n).for_each(|_| sink.record(Event::FpAdd)),
                EvClass::Branch => (0..n).for_each(|_| sink.record(Event::Branch)),
                EvClass::Annulled => (0..n).for_each(|_| sink.record(Event::Annulled)),
                EvClass::Load => {
                    for i in 0..n {
                        sink.record(Event::Load(self.payload[pi + i]));
                    }
                    pi += n;
                }
                EvClass::Store => {
                    for i in 0..n {
                        sink.record(Event::Store(self.payload[pi + i]));
                    }
                    pi += n;
                }
                EvClass::Arith(kind) => {
                    let words = EvClass::Arith(kind).payload_words();
                    for i in 0..n {
                        let a = self.payload[pi + i * words];
                        let op = match kind {
                            OpKind::IntMul => {
                                Op::IntMul(a as i64, self.payload[pi + i * words + 1] as i64)
                            }
                            OpKind::FpMul => Op::FpMul(
                                f64::from_bits(a),
                                f64::from_bits(self.payload[pi + i * words + 1]),
                            ),
                            OpKind::FpDiv => Op::FpDiv(
                                f64::from_bits(a),
                                f64::from_bits(self.payload[pi + i * words + 1]),
                            ),
                            OpKind::FpSqrt => Op::FpSqrt(f64::from_bits(a)),
                        };
                        sink.record(Event::Arith(op));
                    }
                    pi += n * words;
                }
            }
        }
    }
}

impl EventSink for EventTrace {
    fn record(&mut self, event: Event) {
        let class = EvClass::of(&event);
        match event {
            Event::Load(addr) | Event::Store(addr) => self.payload.push(addr),
            Event::Arith(op) => {
                let (a, b) = op.operand_bits();
                self.payload.push(a);
                if op.kind() != OpKind::FpSqrt {
                    self.payload.push(b);
                }
            }
            _ => {}
        }
        match self.runs.last_mut() {
            Some(run) if run.class == class && run.len < u32::MAX => run.len += 1,
            _ => self.runs.push(EvRun { class, len: 1 }),
        }
        self.len += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CountingSink, TraceBuffer};
    use memo_table::{MemoConfig, MemoTable};

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::FpDiv(355.0, 113.0),
            Op::FpDiv(355.0, 113.0),
            Op::FpMul(1.5, -0.0),
            Op::IntMul(-7, 6),
            Op::IntMul(i64::MIN, -1),
            Op::FpSqrt(2.0),
            Op::FpMul(f64::NAN, 1.0),
            Op::FpDiv(1.0, 0.0),
        ]
    }

    #[test]
    fn roundtrips_ops_bit_exactly() {
        let mut trace = OpTrace::new();
        for &op in &sample_ops() {
            trace.push(op);
        }
        assert_eq!(trace.len(), 8);
        let back = trace.to_ops();
        for (orig, got) in sample_ops().iter().zip(&back) {
            assert_eq!(orig.kind(), got.kind());
            assert_eq!(orig.operand_bits(), got.operand_bits());
        }
    }

    #[test]
    fn recorder_keeps_only_arith() {
        let mut rec = TraceRecorderSink::new();
        let _ = rec.fdiv(10.0, 4.0);
        rec.load(0x40);
        rec.branch();
        let _ = rec.imul(3, 4);
        rec.int_ops(5);
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.count(OpKind::FpDiv), 1);
        assert_eq!(trace.count(OpKind::IntMul), 1);
    }

    #[test]
    fn replay_matches_native_bank_stats() {
        let ops = sample_ops();
        let mut native = MemoBank::paper_default();
        let mut trace = OpTrace::new();
        for &op in &ops {
            native.execute(op);
            trace.push(op);
        }
        let mut replayed = MemoBank::paper_default();
        trace.replay(&mut replayed);
        for kind in OpKind::ALL {
            assert_eq!(native.stats(kind), replayed.stats(kind), "{kind}");
        }
    }

    #[test]
    fn replay_kind_filters() {
        let mut trace = OpTrace::new();
        for &op in &sample_ops() {
            trace.push(op);
        }
        let mut table = MemoTable::new(MemoConfig::paper_default());
        trace.replay_kind(OpKind::FpDiv, &mut table);
        assert_eq!(table.stats().ops_seen, 3);
    }

    #[test]
    fn memory_bound_is_16_bytes_per_op() {
        // Kernel inner loops emit bursts of same-kind operations; the run
        // index amortizes to well under a byte per op.
        let mut trace = OpTrace::new();
        for burst in 0..200i64 {
            for i in 0..64 {
                trace.push(Op::IntMul(burst, i));
            }
            for i in 0..64 {
                trace.push(Op::FpMul(burst as f64, i as f64));
            }
        }
        let per_op = trace.approx_bytes() as f64 / trace.len() as f64;
        assert!(per_op <= 16.1, "got {per_op} bytes/op");
    }

    #[test]
    fn event_trace_replays_full_stream() {
        let mut native = TraceBuffer::new();
        let mut trace = EventTrace::new();
        for sink in [&mut native as &mut dyn EventSink, &mut trace as &mut dyn EventSink] {
            let _ = sink.fmul(2.0, 3.0);
            sink.load(0x100);
            sink.int_ops(4);
            sink.branch();
            let _ = sink.fsqrt(2.0);
            sink.store(0x200);
            sink.annulled();
            let _ = sink.fadd(1.0, 1.0);
            let _ = sink.imul(5, 9);
        }
        assert_eq!(trace.len(), native.len());

        let mut replayed = TraceBuffer::new();
        trace.replay_into(&mut replayed);
        assert_eq!(replayed.events(), native.events());

        let mut mix = CountingSink::new();
        trace.replay_into(&mut mix);
        assert_eq!(mix.mix().int_alu, 4);
        assert_eq!(mix.mix().loads, 1);
        assert_eq!(mix.mix().fp_sqrt, 1);
    }

    #[test]
    fn serialization_roundtrips_bit_exactly() {
        let mut trace = OpTrace::new();
        for &op in &sample_ops() {
            trace.push(op);
        }
        let bytes = trace.to_bytes();
        let back = OpTrace::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), trace.len());
        for (orig, got) in trace.iter().zip(back.iter()) {
            assert_eq!(orig.kind(), got.kind());
            assert_eq!(orig.operand_bits(), got.operand_bits());
        }
        // Replay equivalence: the decoded trace drives a bank identically.
        let mut native = MemoBank::paper_default();
        trace.replay(&mut native);
        let mut decoded = MemoBank::paper_default();
        back.replay(&mut decoded);
        for kind in OpKind::ALL {
            assert_eq!(native.stats(kind), decoded.stats(kind), "{kind}");
        }
        // Empty trace roundtrips too.
        let empty = OpTrace::from_bytes(&OpTrace::new().to_bytes()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn deserialization_rejects_damage() {
        let mut trace = OpTrace::new();
        for &op in &sample_ops() {
            trace.push(op);
        }
        let bytes = trace.to_bytes();
        assert!(matches!(OpTrace::from_bytes(b"xx"), Err(TraceDecodeError::Truncated)));
        assert!(matches!(OpTrace::from_bytes(b"NOPE\x01\x00"), Err(TraceDecodeError::WrongMagic)));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 9;
        assert!(matches!(
            OpTrace::from_bytes(&wrong_version),
            Err(TraceDecodeError::WrongVersion { found: 9 })
        ));
        assert!(matches!(
            OpTrace::from_bytes(&bytes[..bytes.len() - 1]),
            Err(TraceDecodeError::Truncated)
        ));
        // Corrupt the op count so runs no longer sum to it.
        let mut inconsistent = bytes.clone();
        inconsistent[6] ^= 0x01;
        assert!(matches!(
            OpTrace::from_bytes(&inconsistent),
            Err(TraceDecodeError::Inconsistent)
        ));
    }

    #[test]
    fn op_iter_is_exact_size() {
        let mut trace = OpTrace::new();
        for &op in &sample_ops() {
            trace.push(op);
        }
        let mut iter = trace.iter();
        assert_eq!(iter.len(), 8);
        iter.next();
        assert_eq!(iter.len(), 7);
        assert_eq!(iter.count(), 7);
    }
}

//! Per-unit instruction latencies, including the paper's Table 1.

use memo_table::OpKind;
use std::fmt;

/// Functional-unit latencies of a modelled processor (machine cycles).
///
/// The six presets mirror Table 1 of the paper; [`CpuModel::paper_fast`]
/// and [`CpuModel::paper_slow`] are the two synthetic profiles the speedup
/// tables (11–13) assume. Division units of this era are not pipelined;
/// the paper counts full latency per dynamic instruction, which is what
/// [`crate::CycleAccountant`] charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuModel {
    /// Model name as printed in experiment tables.
    pub name: &'static str,
    /// Integer multiply latency.
    pub int_mul: u32,
    /// Floating-point multiply latency.
    pub fp_mul: u32,
    /// Floating-point divide latency.
    pub fp_div: u32,
    /// Floating-point square-root latency.
    pub fp_sqrt: u32,
    /// Floating-point add/subtract latency.
    pub fp_add: u32,
    /// Simple integer ALU operation latency.
    pub int_alu: u32,
    /// Branch cost (no misprediction modelling, per §3.3).
    pub branch: u32,
}

impl CpuModel {
    /// Pentium Pro: 3-cycle fp multiply, 39-cycle fp divide (Table 1).
    #[must_use]
    pub fn pentium_pro() -> Self {
        Self::table1("Pentium Pro", 4, 3, 39)
    }

    /// Alpha 21164: 4-cycle fp multiply, 31-cycle fp divide.
    #[must_use]
    pub fn alpha_21164() -> Self {
        Self::table1("Alpha 21164", 8, 4, 31)
    }

    /// MIPS R10000: 2-cycle fp multiply, 40-cycle fp divide.
    #[must_use]
    pub fn mips_r10000() -> Self {
        Self::table1("MIPS R10000", 6, 2, 40)
    }

    /// PowerPC 604e: 5-cycle fp multiply, 31-cycle fp divide.
    #[must_use]
    pub fn ppc_604e() -> Self {
        Self::table1("PPC 604e", 4, 5, 31)
    }

    /// UltraSPARC-II: 3-cycle fp multiply, 22-cycle fp divide.
    #[must_use]
    pub fn ultrasparc_ii() -> Self {
        Self::table1("UltraSparc-II", 5, 3, 22)
    }

    /// PA-8000: 5-cycle fp multiply, 31-cycle fp divide.
    #[must_use]
    pub fn pa_8000() -> Self {
        Self::table1("PA 8000", 5, 5, 31)
    }

    /// The "very fast floating point units" profile of Table 13:
    /// 3-cycle fp multiply, 13-cycle fp divide.
    #[must_use]
    pub fn paper_fast() -> Self {
        Self::table1("paper-fast", 5, 3, 13)
    }

    /// The "slower" profile of Table 13: 5-cycle fp multiply, 39-cycle
    /// fp divide.
    #[must_use]
    pub fn paper_slow() -> Self {
        Self::table1("paper-slow", 5, 5, 39)
    }

    /// All six Table 1 processors, in the paper's order.
    #[must_use]
    pub fn table1_models() -> [CpuModel; 6] {
        [
            Self::pentium_pro(),
            Self::alpha_21164(),
            Self::mips_r10000(),
            Self::ppc_604e(),
            Self::ultrasparc_ii(),
            Self::pa_8000(),
        ]
    }

    fn table1(name: &'static str, int_mul: u32, fp_mul: u32, fp_div: u32) -> Self {
        CpuModel {
            name,
            int_mul,
            fp_mul,
            fp_div,
            // sqrt shares the (iterative) divide hardware; same order.
            fp_sqrt: fp_div + fp_div / 2,
            fp_add: 2,
            int_alu: 1,
            branch: 1,
        }
    }

    /// A model identical to `self` except for the named fp latencies —
    /// used by the Table 11/12 sweeps (13 vs 39 cycle division, 3 vs 5
    /// cycle multiplication).
    #[must_use]
    pub fn with_fp_latencies(mut self, fp_mul: u32, fp_div: u32) -> Self {
        self.fp_mul = fp_mul;
        self.fp_div = fp_div;
        self.fp_sqrt = fp_div + fp_div / 2;
        self
    }

    /// Latency of a multi-cycle operation kind.
    #[must_use]
    pub fn latency(&self, kind: OpKind) -> u32 {
        match kind {
            OpKind::IntMul => self.int_mul,
            OpKind::FpMul => self.fp_mul,
            OpKind::FpDiv => self.fp_div,
            OpKind::FpSqrt => self.fp_sqrt,
        }
    }
}

impl fmt::Display for CpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (fmul {}, fdiv {})", self.name, self.fp_mul, self.fp_div)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latencies_match_paper() {
        // (multiplication, division) per Table 1.
        let expect = [
            ("Pentium Pro", 3, 39),
            ("Alpha 21164", 4, 31),
            ("MIPS R10000", 2, 40),
            ("PPC 604e", 5, 31),
            ("UltraSparc-II", 3, 22),
            ("PA 8000", 5, 31),
        ];
        for (model, (name, mul, div)) in CpuModel::table1_models().iter().zip(expect) {
            assert_eq!(model.name, name);
            assert_eq!(model.fp_mul, mul, "{name} fp mul");
            assert_eq!(model.fp_div, div, "{name} fp div");
        }
    }

    #[test]
    fn paper_profiles() {
        assert_eq!((CpuModel::paper_fast().fp_mul, CpuModel::paper_fast().fp_div), (3, 13));
        assert_eq!((CpuModel::paper_slow().fp_mul, CpuModel::paper_slow().fp_div), (5, 39));
    }

    #[test]
    fn latency_lookup_by_kind() {
        let m = CpuModel::paper_slow();
        assert_eq!(m.latency(OpKind::FpDiv), 39);
        assert_eq!(m.latency(OpKind::FpMul), 5);
        assert_eq!(m.latency(OpKind::IntMul), 5);
        assert!(m.latency(OpKind::FpSqrt) >= m.latency(OpKind::FpDiv));
    }

    #[test]
    fn with_fp_latencies_overrides() {
        let m = CpuModel::ppc_604e().with_fp_latencies(3, 13);
        assert_eq!(m.fp_mul, 3);
        assert_eq!(m.fp_div, 13);
        assert_eq!(m.name, "PPC 604e");
    }

    #[test]
    fn display_mentions_latencies() {
        let s = CpuModel::paper_fast().to_string();
        assert!(s.contains("fdiv 13"));
    }
}

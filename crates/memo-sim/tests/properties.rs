//! Property tests for the simulation substrate: cache invariants and
//! cycle-accounting conservation laws.

use memo_sim::{
    amdahl, Cache, CacheConfig, CpuModel, CycleAccountant, Event, EventSink, MemoBank,
    MemoryHierarchy,
};
use memo_table::Op;
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = u64> {
    // A few KB of hot area plus occasional far misses.
    prop_oneof![4 => 0u64..4096, 1 => 0u64..1_000_000].prop_map(|a| a & !7)
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        Just(Event::IntAlu),
        Just(Event::FpAdd),
        Just(Event::Branch),
        Just(Event::Annulled),
        arb_addr().prop_map(Event::Load),
        arb_addr().prop_map(Event::Store),
        (0i64..32, 0i64..32).prop_map(|(a, b)| Event::Arith(Op::IntMul(a, b))),
        (0u8..32, 1u8..16).prop_map(|(a, b)| Event::Arith(Op::FpMul(f64::from(a), f64::from(b)))),
        (0u8..32, 1u8..16).prop_map(|(a, b)| Event::Arith(Op::FpDiv(f64::from(a), f64::from(b)))),
    ]
}

proptest! {
    /// LRU caches obey the inclusion property in associativity: with the
    /// same set count, more ways never lose hits.
    #[test]
    fn cache_inclusion_in_ways(addrs in prop::collection::vec(arb_addr(), 1..500)) {
        let mut small = Cache::new(CacheConfig { size_bytes: 1024, line_bytes: 32, ways: 1 });
        let mut large = Cache::new(CacheConfig { size_bytes: 2048, line_bytes: 32, ways: 2 });
        for &a in &addrs {
            small.access(a);
            large.access(a);
        }
        prop_assert!(large.stats().hits >= small.stats().hits);
    }

    /// Basic cache bookkeeping holds for any address stream.
    #[test]
    fn cache_stats_are_consistent(addrs in prop::collection::vec(arb_addr(), 1..500)) {
        let mut cache = Cache::new(CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 4 });
        for &a in &addrs {
            cache.access(a);
        }
        let s = cache.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.hits <= s.accesses);
        prop_assert!((0.0..=1.0).contains(&s.hit_ratio()));
    }

    /// Hierarchy invariant: the L2 sees exactly the L1's misses, and every
    /// access costs at least the L1 hit time.
    #[test]
    fn hierarchy_charges_are_layered(addrs in prop::collection::vec(arb_addr(), 1..500)) {
        let mut m = MemoryHierarchy::typical_1997();
        for &a in &addrs {
            let cycles = m.access(a);
            prop_assert!(cycles == 1 || cycles == 7 || cycles == 37, "cycles {cycles}");
        }
        prop_assert_eq!(m.l2_stats().accesses, m.l1_stats().misses());
    }

    /// Conservation laws of the one-pass accountant: the memoized machine
    /// never spends more cycles than the baseline, memory costs are
    /// identical on both, and removing the bank collapses the two.
    #[test]
    fn accountant_conservation(events in prop::collection::vec(arb_event(), 1..500)) {
        let mut with_bank = CycleAccountant::new(
            CpuModel::paper_slow(),
            MemoryHierarchy::typical_1997(),
            MemoBank::paper_default(),
        );
        let mut without = CycleAccountant::new(
            CpuModel::paper_slow(),
            MemoryHierarchy::typical_1997(),
            MemoBank::none(),
        );
        for &e in &events {
            with_bank.record(e);
            without.record(e);
        }
        let rb = with_bank.report();
        let rn = without.report();
        prop_assert!(rb.memoized().total() <= rb.baseline().total());
        prop_assert_eq!(rb.baseline().memory, rb.memoized().memory);
        prop_assert_eq!(rb.baseline(), rn.baseline(), "baseline is bank-independent");
        prop_assert_eq!(rn.baseline(), rn.memoized(), "no bank: machines coincide");
        prop_assert!(rb.speedup_measured() >= 1.0 - 1e-12);
        prop_assert_eq!(rb.mix().total(), events.len() as u64);
    }

    /// Amdahl arithmetic: speedup is monotone in SE and bounded by the
    /// serial fraction.
    #[test]
    fn amdahl_bounds(fe in 0.0f64..1.0, se in 1.0f64..100.0) {
        let s = amdahl::speedup(fe, se);
        prop_assert!(s >= 1.0 - 1e-12);
        prop_assert!(s <= 1.0 / (1.0 - fe) + 1e-9);
        let s_bigger = amdahl::speedup(fe, se * 2.0);
        prop_assert!(s_bigger + 1e-12 >= s);
        // Unit enhancement: identity.
        prop_assert!((amdahl::speedup(fe, 1.0) - 1.0).abs() < 1e-12);
    }
}

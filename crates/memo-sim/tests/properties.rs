//! Property-style tests for the simulation substrate: cache invariants and
//! cycle-accounting conservation laws, driven by deterministic SplitMix64
//! streams (the repo builds offline, so no proptest).

use memo_sim::{
    amdahl, Cache, CacheConfig, CpuModel, CycleAccountant, Event, EventSink, MemoBank,
    MemoryHierarchy,
};
use memo_table::rng::SplitMix64;
use memo_table::Op;

fn arb_addr(r: &mut SplitMix64) -> u64 {
    // A few KB of hot area plus occasional far misses.
    let a = if r.next_below(5) < 4 { r.next_below(4096) } else { r.next_below(1_000_000) };
    a & !7
}

fn arb_addrs(r: &mut SplitMix64) -> Vec<u64> {
    let n = 1 + r.next_below(500) as usize;
    (0..n).map(|_| arb_addr(r)).collect()
}

fn arb_event(r: &mut SplitMix64) -> Event {
    match r.next_below(9) {
        0 => Event::IntAlu,
        1 => Event::FpAdd,
        2 => Event::Branch,
        3 => Event::Annulled,
        4 => Event::Load(arb_addr(r)),
        5 => Event::Store(arb_addr(r)),
        6 => Event::Arith(Op::IntMul(r.next_below(32) as i64, r.next_below(32) as i64)),
        7 => Event::Arith(Op::FpMul(r.next_below(32) as f64, 1.0 + r.next_below(15) as f64)),
        _ => Event::Arith(Op::FpDiv(r.next_below(32) as f64, 1.0 + r.next_below(15) as f64)),
    }
}

const ROUNDS: u64 = 32;

/// LRU caches obey the inclusion property in associativity: with the
/// same set count, more ways never lose hits.
#[test]
fn cache_inclusion_in_ways() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("inclusion");
        let mut small = Cache::new(CacheConfig { size_bytes: 1024, line_bytes: 32, ways: 1 });
        let mut large = Cache::new(CacheConfig { size_bytes: 2048, line_bytes: 32, ways: 2 });
        for a in arb_addrs(&mut r) {
            small.access(a);
            large.access(a);
        }
        assert!(large.stats().hits >= small.stats().hits);
    }
}

/// Basic cache bookkeeping holds for any address stream.
#[test]
fn cache_stats_are_consistent() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("cache-stats");
        let mut cache = Cache::new(CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 4 });
        let addrs = arb_addrs(&mut r);
        for &a in &addrs {
            cache.access(a);
        }
        let s = cache.stats();
        assert_eq!(s.accesses, addrs.len() as u64);
        assert!(s.hits <= s.accesses);
        assert!((0.0..=1.0).contains(&s.hit_ratio()));
    }
}

/// Hierarchy invariant: the L2 sees exactly the L1's misses, and every
/// access costs at least the L1 hit time.
#[test]
fn hierarchy_charges_are_layered() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("hierarchy");
        let mut m = MemoryHierarchy::typical_1997();
        for a in arb_addrs(&mut r) {
            let cycles = m.access(a);
            assert!(cycles == 1 || cycles == 7 || cycles == 37, "cycles {cycles}");
        }
        assert_eq!(m.l2_stats().accesses, m.l1_stats().misses());
    }
}

/// Conservation laws of the one-pass accountant: the memoized machine
/// never spends more cycles than the baseline, memory costs are
/// identical on both, and removing the bank collapses the two.
#[test]
fn accountant_conservation() {
    for seed in 0..ROUNDS {
        let mut r = SplitMix64::new(seed).split("accountant");
        let events: Vec<Event> =
            (0..1 + r.next_below(500)).map(|_| arb_event(&mut r)).collect();
        let mut with_bank = CycleAccountant::new(
            CpuModel::paper_slow(),
            MemoryHierarchy::typical_1997(),
            MemoBank::paper_default(),
        );
        let mut without = CycleAccountant::new(
            CpuModel::paper_slow(),
            MemoryHierarchy::typical_1997(),
            MemoBank::none(),
        );
        for &e in &events {
            with_bank.record(e);
            without.record(e);
        }
        let rb = with_bank.report();
        let rn = without.report();
        assert!(rb.memoized().total() <= rb.baseline().total());
        assert_eq!(rb.baseline().memory, rb.memoized().memory);
        assert_eq!(rb.baseline(), rn.baseline(), "baseline is bank-independent");
        assert_eq!(rn.baseline(), rn.memoized(), "no bank: machines coincide");
        assert!(rb.speedup_measured() >= 1.0 - 1e-12);
        assert_eq!(rb.mix().total(), events.len() as u64);
    }
}

/// Amdahl arithmetic: speedup is monotone in SE and bounded by the
/// serial fraction.
#[test]
fn amdahl_bounds() {
    for seed in 0..ROUNDS * 4 {
        let mut r = SplitMix64::new(seed).split("amdahl");
        let fe = r.next_f64();
        let se = 1.0 + 99.0 * r.next_f64();
        let s = amdahl::speedup(fe, se);
        assert!(s >= 1.0 - 1e-12);
        assert!(s <= 1.0 / (1.0 - fe) + 1e-9);
        let s_bigger = amdahl::speedup(fe, se * 2.0);
        assert!(s_bigger + 1e-12 >= s);
        // Unit enhancement: identity.
        assert!((amdahl::speedup(fe, 1.0) - 1.0).abs() < 1e-12);
    }
}

//! Native re-execution vs. operand-trace replay — the record-once /
//! replay-many economics. A sweep driver that replays a recorded
//! [`memo_sim::OpTrace`] pays only the table probes; re-running the
//! kernel pays the arithmetic, the addressing, and the event plumbing on
//! every configuration.

use std::hint::black_box;

use memo_bench::{bench, bench_cfg};
use memo_sim::{MemoBank, TraceRecorderSink};
use memo_table::{MemoConfig, MemoTable, Memoizer, OpKind};
use memo_workloads::mm;
use memo_workloads::suite::{mm_inputs, record_sci_trace, MemoProbeSink, SweepSpec};
use memo_workloads::sci;

fn main() {
    let cfg = bench_cfg();
    let corpus = mm_inputs(cfg.image_scale);
    let inputs: Vec<_> = corpus.iter().map(|c| &c.image).collect();

    // One MM kernel (vspatial: division-heavy, Figure 3/4 sample set).
    let mm_app = mm::find("vspatial").expect("registered");
    let mm_trace = {
        let mut rec = TraceRecorderSink::new();
        for input in &inputs {
            mm_app.run(&mut rec, input);
        }
        rec.into_trace()
    };

    bench("trace_replay", "vspatial_native_rerun", 20, || {
        let mut sink = MemoProbeSink::new(SweepSpec::paper_default());
        for input in &inputs {
            black_box(mm_app.run(&mut sink, input));
        }
        black_box(sink.bank().stats(memo_table::OpKind::FpDiv));
    });
    bench("trace_replay", "vspatial_trace_replay", 20, || {
        let mut bank = MemoBank::paper_default();
        mm_trace.replay(&mut bank);
        black_box(bank.stats(memo_table::OpKind::FpDiv));
    });

    // One scientific kernel (first of the Perfect suite).
    let sci_app = *sci::perfect_apps().first().expect("suite is non-empty");
    let sci_trace = record_sci_trace(&sci_app, cfg.sci_n);

    bench("trace_replay", "sci_native_rerun", 20, || {
        let mut sink = MemoProbeSink::new(SweepSpec::paper_default());
        sci_app.run(&mut sink, cfg.sci_n);
        black_box(sink.bank().stats(memo_table::OpKind::FpMul));
    });
    bench("trace_replay", "sci_trace_replay", 20, || {
        let mut bank = MemoBank::paper_default();
        sci_trace.replay(&mut bank);
        black_box(bank.stats(memo_table::OpKind::FpMul));
    });

    // Per-kind decode: the pull iterator rebuilds one op per `next()`
    // call; the batched walker decodes whole runs with zipped slice
    // loops and no per-op bounds checks.
    bench("trace_replay", "vspatial_replay_kind_iter", 20, || {
        let mut table = MemoTable::new(MemoConfig::paper_default());
        for op in mm_trace.iter().filter(|op| op.kind() == OpKind::FpDiv) {
            table.execute(op);
        }
        black_box(table.stats());
    });
    bench("trace_replay", "vspatial_replay_kind_batched", 20, || {
        let mut table = MemoTable::new(MemoConfig::paper_default());
        mm_trace.replay_kind_batched(OpKind::FpDiv, &mut table);
        black_box(table.stats());
    });

    // Recording cost, for completeness: record once, replay many.
    bench("trace_replay", "vspatial_record_once", 20, || {
        let mut rec = TraceRecorderSink::new();
        for input in &inputs {
            black_box(mm_app.run(&mut rec, input));
        }
        black_box(rec.trace().len());
    });
    println!(
        "trace_replay/vspatial_trace_bytes_per_op    {:.2} B/op over {} ops",
        mm_trace.approx_bytes() as f64 / mm_trace.len().max(1) as f64,
        mm_trace.len()
    );
}

//! Scalar vs batched trace replay — the economics of the warp-style
//! execution engine. The scalar path pulls one [`memo_table::Op`] at a
//! time through `MemoBank::execute` (a virtual call, an enum build, and a
//! policy cascade per operation); the batched path decodes each RLE run
//! once into structure-of-arrays lane tiles and drives the memo tables'
//! lane-parallel probe front end (`execute_batch`).
//!
//! Results are written to `BENCH_replay.json`: one scalar/batched median
//! pair per kernel (every MM application and both scientific suites), a
//! geometric-mean speedup, and a scalar-vs-batched timing of the fused
//! Figure 3/4 sweep grids in the same run. CI archives the file and fails
//! if any batched median is slower than its scalar baseline.

use std::fmt::Write as _;
use std::hint::black_box;

use memo_bench::{bench_cfg, bench_median};
use memo_sim::{sweep_kind, MemoBank, OpTrace, TraceRecorderSink};
use memo_table::{
    batch_width, Assoc, MemoConfig, OpKind, StackSimulator, SweepGrid,
};
use memo_workloads::mm;
use memo_workloads::sci;
use memo_workloads::suite::{mm_inputs, record_sci_trace, MemoProbeSink, SweepSpec};

const KINDS: [OpKind; 3] = [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv];
const SAMPLES: usize = 12;

struct KernelRow {
    name: &'static str,
    suite: &'static str,
    ops: usize,
    scalar_ms: f64,
    batched_ms: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        if self.batched_ms > 0.0 { self.scalar_ms / self.batched_ms } else { 0.0 }
    }
}

fn time_kernel(
    name: &'static str,
    suite: &'static str,
    traces: &[&OpTrace],
) -> KernelRow {
    let ops = traces.iter().map(|t| t.len()).sum();
    let scalar = bench_median("trace_replay", &format!("{name}_scalar"), SAMPLES, || {
        let mut bank = MemoBank::paper_default();
        for trace in traces {
            trace.replay_scalar(&mut bank);
        }
        black_box(bank.stats(OpKind::FpMul));
    });
    let batched = bench_median("trace_replay", &format!("{name}_batched"), SAMPLES, || {
        let mut bank = MemoBank::paper_default();
        for trace in traces {
            trace.replay(&mut bank);
        }
        black_box(bank.stats(OpKind::FpMul));
    });
    KernelRow { name, suite, ops, scalar_ms: scalar * 1e3, batched_ms: batched * 1e3 }
}

struct SweepRow {
    name: &'static str,
    points: usize,
    scalar_ms: f64,
    batched_ms: f64,
}

impl SweepRow {
    fn speedup(&self) -> f64 {
        if self.batched_ms > 0.0 { self.scalar_ms / self.batched_ms } else { 0.0 }
    }
}

/// Time one fused sweep grid with the stack engine fed per-op (`access`)
/// vs tiled (`access_batch` via [`sweep_kind`]) — same grid, same trace,
/// same pass structure, so the delta is exactly the lane-parallel front
/// end.
fn time_sweep(
    name: &'static str,
    trace: &OpTrace,
    configs: &[MemoConfig],
    include_infinite: bool,
) -> SweepRow {
    let grid = SweepGrid::new(configs, include_infinite).expect("fusable grid");
    let scalar = bench_median("sweep_grids", &format!("{name}_scalar"), SAMPLES, || {
        for kind in KINDS {
            let mut sim = StackSimulator::new(&grid);
            trace.for_each_kind(kind, |op| sim.access(op));
            black_box(sim.finish().exact);
        }
    });
    let batched = bench_median("sweep_grids", &format!("{name}_batched"), SAMPLES, || {
        for kind in KINDS {
            black_box(sweep_kind([trace], kind, &grid).exact);
        }
    });
    SweepRow { name, points: configs.len(), scalar_ms: scalar * 1e3, batched_ms: batched * 1e3 }
}

fn main() {
    let cfg = bench_cfg();
    let corpus = mm_inputs(cfg.image_scale);
    let inputs: Vec<_> = corpus.iter().map(|c| &c.image).collect();

    // Record every kernel once; replays reuse the recordings.
    let mut kernels: Vec<KernelRow> = Vec::new();
    for app in mm::apps() {
        let mut rec = TraceRecorderSink::new();
        for input in &inputs {
            app.run(&mut rec, input);
        }
        let trace = rec.into_trace();
        kernels.push(time_kernel(app.name, "mm", &[&trace]));
    }
    for app in sci::all_apps() {
        let trace = record_sci_trace(&app, cfg.sci_n);
        kernels.push(time_kernel(app.name, "sci", &[&trace]));
    }

    let geomean = {
        let speedups: Vec<f64> = kernels.iter().map(KernelRow::speedup).collect();
        (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp()
    };

    // The record-once economics line, for continuity with earlier runs:
    // replaying beats re-running the kernel natively.
    let app = mm::find("vspatial").expect("registered");
    let vspatial_trace = {
        let mut rec = TraceRecorderSink::new();
        for input in &inputs {
            app.run(&mut rec, input);
        }
        rec.into_trace()
    };
    bench_median("trace_replay", "vspatial_native_rerun", SAMPLES, || {
        let mut sink = MemoProbeSink::new(SweepSpec::paper_default());
        for input in &inputs {
            black_box(app.run(&mut sink, input));
        }
        black_box(sink.bank().stats(OpKind::FpDiv));
    });

    // Figure 3/4 grid shapes, timed scalar-vs-batched in the same run.
    let size_configs: Vec<MemoConfig> = [8usize, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]
        .iter()
        .map(|&entries| MemoConfig::builder(entries).build().expect("valid"))
        .collect();
    let assoc_configs: Vec<MemoConfig> =
        [Assoc::DirectMapped, Assoc::Ways(2), Assoc::Ways(4), Assoc::Ways(8), Assoc::Full]
            .iter()
            .map(|&assoc| MemoConfig::builder(32).assoc(assoc).build().expect("valid"))
            .collect();
    let sweeps = [
        time_sweep("figure3_size_grid", &vspatial_trace, &size_configs, false),
        time_sweep("figure4_assoc_grid", &vspatial_trace, &assoc_configs, true),
    ];

    let mut json = String::from("{\n  \"bench\": \"trace_replay\",\n");
    let _ = writeln!(json, "  \"batch_width\": {},", batch_width());
    json.push_str("  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"suite\": \"{}\", \"ops\": {}, \"scalar_ms\": {:.4}, \
             \"batched_ms\": {:.4}, \"speedup\": {:.2}}}{comma}",
            r.name,
            r.suite,
            r.ops,
            r.scalar_ms,
            r.batched_ms,
            r.speedup()
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"geomean_speedup\": {geomean:.2},");
    json.push_str("  \"sweeps\": [\n");
    for (i, r) in sweeps.iter().enumerate() {
        let comma = if i + 1 < sweeps.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"points\": {}, \"scalar_ms\": {:.3}, \
             \"batched_ms\": {:.3}, \"speedup\": {:.2}}}{comma}",
            r.name,
            r.points,
            r.scalar_ms,
            r.batched_ms,
            r.speedup()
        );
    }
    json.push_str("  ]\n}\n");

    for r in &kernels {
        println!(
            "trace_replay/{} ({}): {} ops, scalar {:.3} ms vs batched {:.3} ms ({:.2}x)",
            r.name,
            r.suite,
            r.ops,
            r.scalar_ms,
            r.batched_ms,
            r.speedup()
        );
    }
    println!("trace_replay/geomean_speedup: {geomean:.2}x over {} kernels", kernels.len());
    for r in &sweeps {
        println!(
            "sweep_grids/{}: {} points, scalar {:.3} ms vs batched {:.3} ms ({:.2}x)",
            r.name,
            r.points,
            r.scalar_ms,
            r.batched_ms,
            r.speedup()
        );
    }

    let path = "BENCH_replay.json";
    std::fs::write(path, json).expect("write BENCH_replay.json");
    println!("wrote {path}");
}

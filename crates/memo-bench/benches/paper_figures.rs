//! One benchmark per evaluation figure (2, 3, 4), plus the
//! Levenberg–Marquardt fitter on Figure 2-sized data.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use memo_bench::bench_cfg;
use memo_experiments::figures;
use memo_fit::fit_line;

fn bench_figures(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("paper_figures");
    group.sample_size(10);

    group.bench_function("fig2_entropy_correlation", |b| {
        b.iter(|| black_box(figures::figure2(cfg)));
    });
    group.bench_function("fig3_size_sweep", |b| {
        b.iter(|| black_box(figures::figure3(cfg)));
    });
    group.bench_function("fig4_associativity_sweep", |b| {
        b.iter(|| black_box(figures::figure4(cfg)));
    });

    // The fitter alone, on a Figure 2-sized scatter.
    let xs: Vec<f64> = (0..200).map(|i| f64::from(i) * 0.04).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 0.8 - 0.05 * x + (x * 7.0).sin() * 0.03).collect();
    group.bench_function("levenberg_marquardt_line_fit", |b| {
        b.iter(|| black_box(fit_line(black_box(&xs), black_box(&ys)).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

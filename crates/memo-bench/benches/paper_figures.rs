//! One benchmark per evaluation figure (2, 3, 4), plus the
//! Levenberg–Marquardt fitter on Figure 2-sized data.

use std::hint::black_box;

use memo_bench::{bench, bench_cfg};
use memo_experiments::figures;
use memo_fit::fit_line;

fn main() {
    let cfg = bench_cfg();

    bench("paper_figures", "fig2_entropy_correlation", 10, || {
        black_box(figures::figure2(cfg).unwrap());
    });
    bench("paper_figures", "fig3_size_sweep", 10, || {
        black_box(figures::figure3(cfg).unwrap());
    });
    bench("paper_figures", "fig4_associativity_sweep", 10, || {
        black_box(figures::figure4(cfg).unwrap());
    });

    // The fitter alone, on a Figure 2-sized scatter.
    let xs: Vec<f64> = (0..200).map(|i| f64::from(i) * 0.04).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 0.8 - 0.05 * x + (x * 7.0).sin() * 0.03).collect();
    bench("paper_figures", "levenberg_marquardt_line_fit", 30, || {
        black_box(fit_line(black_box(&xs), black_box(&ys)).unwrap());
    });
}

//! Fused single-pass sweep vs per-configuration trace replay — the
//! tentpole economics of the stack-distance engine. A G-point hit-ratio
//! grid costs G full replays on the direct path and one shared pass on
//! the fused path; this bench times both over the paper's two grid
//! shapes (Figure 3's size sweep, Figure 4's associativity sweep plus
//! the infinite column) and writes the medians and fused-vs-direct
//! ratios to `BENCH_sweep.json` for CI to archive.

use std::hint::black_box;
use std::fmt::Write as _;

use memo_bench::{bench_cfg, bench_median};
use memo_sim::{OpTrace, TraceRecorderSink};
use memo_table::{Assoc, MemoConfig, OpKind};
use memo_workloads::mm;
use memo_workloads::suite::{mm_inputs, replay_stats, replay_stats_fused, SweepSpec};

const KINDS: [OpKind; 3] = [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv];

struct GridResult {
    name: &'static str,
    points: usize,
    fused_ms: f64,
    direct_ms: f64,
}

fn time_grid(name: &'static str, trace: &OpTrace, specs: &[SweepSpec]) -> GridResult {
    let fused = bench_median("sweep_fusion", name, 10, || {
        black_box(replay_stats_fused([trace], specs));
    });
    let direct_name = format!("{name}_direct");
    let direct = bench_median("sweep_fusion", &direct_name, 10, || {
        for spec in specs {
            black_box(replay_stats([trace], *spec));
        }
    });
    GridResult { name, points: specs.len(), fused_ms: fused * 1e3, direct_ms: direct * 1e3 }
}

fn main() {
    let cfg = bench_cfg();
    let corpus = mm_inputs(cfg.image_scale);
    let inputs: Vec<_> = corpus.iter().map(|c| &c.image).collect();
    let app = mm::find("vspatial").expect("registered");
    let trace = {
        let mut rec = TraceRecorderSink::new();
        for input in &inputs {
            app.run(&mut rec, input);
        }
        rec.into_trace()
    };

    // Figure 3's shape: the size sweep at 4 ways.
    let size_specs: Vec<SweepSpec> = [8usize, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]
        .iter()
        .map(|&entries| {
            SweepSpec::finite(MemoConfig::builder(entries).build().expect("valid"), &KINDS)
        })
        .collect();

    // Figure 4's shape: the associativity sweep at 32 entries, plus the
    // infinite-table column Tables 5-7 report alongside.
    let mut assoc_specs: Vec<SweepSpec> =
        [Assoc::DirectMapped, Assoc::Ways(2), Assoc::Ways(4), Assoc::Ways(8), Assoc::Full]
            .iter()
            .map(|&assoc| {
                SweepSpec::finite(
                    MemoConfig::builder(32).assoc(assoc).build().expect("valid"),
                    &KINDS,
                )
            })
            .collect();
    assoc_specs.push(SweepSpec::infinite(&KINDS));

    let results = [
        time_grid("figure3_size_grid", &trace, &size_specs),
        time_grid("figure4_assoc_grid", &trace, &assoc_specs),
    ];

    let mut json = String::from("{\n  \"bench\": \"sweep_fusion\",\n  \"grids\": [\n");
    for (i, r) in results.iter().enumerate() {
        let ratio = if r.fused_ms > 0.0 { r.direct_ms / r.fused_ms } else { 0.0 };
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"points\": {}, \"fused_ms\": {:.3}, \
             \"direct_ms\": {:.3}, \"direct_over_fused\": {:.2}}}{comma}",
            r.name, r.points, r.fused_ms, r.direct_ms, ratio
        );
        println!(
            "sweep_fusion/{}: {} points, fused {:.3} ms vs direct {:.3} ms ({:.2}x)",
            r.name, r.points, r.fused_ms, r.direct_ms, ratio
        );
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_sweep.json";
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    println!("wrote {path}");
}

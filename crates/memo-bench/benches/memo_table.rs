//! Microbenchmarks of the MEMO-TABLE itself — the "cycle time" question
//! of §2.4 translated to software: how cheap is a probe?

use std::hint::black_box;

use memo_bench::bench;
use memo_table::{Assoc, InfiniteMemoTable, MemoConfig, MemoTable, Memoizer, Op, TagPolicy};

/// A repetitive division stream (8 distinct pairs — all hits after warmup).
fn hot_ops() -> Vec<Op> {
    (0..1024).map(|i| Op::FpDiv(f64::from(i % 8 + 2), 3.0)).collect()
}

/// A cold stream: every pair distinct.
fn cold_ops() -> Vec<Op> {
    (0..1024).map(|i| Op::FpDiv(f64::from(i) + 0.5, 3.0)).collect()
}

fn hot_probe_bench(name: &str, cfg: MemoConfig) {
    let mut table = MemoTable::new(cfg);
    let ops = hot_ops();
    for &op in &ops {
        table.execute(op);
    }
    bench("memo_table", name, 30, || {
        for &op in &ops {
            black_box(table.execute(black_box(op)));
        }
    });
}

fn main() {
    hot_probe_bench("probe_hit_32x4", MemoConfig::paper_default());

    let cold = cold_ops();
    bench("memo_table", "probe_miss_insert_32x4", 30, || {
        let mut table = MemoTable::new(MemoConfig::paper_default());
        for &op in &cold {
            black_box(table.execute(black_box(op)));
        }
    });

    hot_probe_bench(
        "probe_hit_mantissa_tags",
        MemoConfig::builder(32).tag(TagPolicy::MantissaOnly).build().unwrap(),
    );
    hot_probe_bench(
        "probe_hit_fully_associative_1k",
        MemoConfig::builder(1024).assoc(Assoc::Full).build().unwrap(),
    );

    let mixed: Vec<Op> = hot_ops().into_iter().chain(cold_ops()).collect();
    bench("memo_table", "infinite_table_mixed", 30, || {
        let mut table = InfiniteMemoTable::new();
        for &op in &mixed {
            black_box(table.execute(black_box(op)));
        }
    });
}

//! Microbenchmarks of the MEMO-TABLE itself — the "cycle time" question
//! of §2.4 translated to software: how cheap is a probe?

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use memo_table::{
    Assoc, InfiniteMemoTable, MemoConfig, MemoTable, Memoizer, Op, TagPolicy,
};

/// A repetitive division stream (8 distinct pairs — all hits after warmup).
fn hot_ops() -> Vec<Op> {
    (0..1024).map(|i| Op::FpDiv(f64::from(i % 8 + 2), 3.0)).collect()
}

/// A cold stream: every pair distinct.
fn cold_ops() -> Vec<Op> {
    (0..1024).map(|i| Op::FpDiv(f64::from(i) + 0.5, 3.0)).collect()
}

fn bench_probe_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("memo_table");

    group.bench_function("probe_hit_32x4", |b| {
        let mut table = MemoTable::new(MemoConfig::paper_default());
        for op in hot_ops() {
            table.execute(op);
        }
        let ops = hot_ops();
        b.iter(|| {
            for &op in &ops {
                black_box(table.execute(black_box(op)));
            }
        });
    });

    group.bench_function("probe_miss_insert_32x4", |b| {
        let ops = cold_ops();
        b.iter_batched(
            || MemoTable::new(MemoConfig::paper_default()),
            |mut table| {
                for &op in &ops {
                    black_box(table.execute(black_box(op)));
                }
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("probe_hit_mantissa_tags", |b| {
        let cfg = MemoConfig::builder(32).tag(TagPolicy::MantissaOnly).build().unwrap();
        let mut table = MemoTable::new(cfg);
        for op in hot_ops() {
            table.execute(op);
        }
        let ops = hot_ops();
        b.iter(|| {
            for &op in &ops {
                black_box(table.execute(black_box(op)));
            }
        });
    });

    group.bench_function("probe_hit_fully_associative_1k", |b| {
        let cfg = MemoConfig::builder(1024).assoc(Assoc::Full).build().unwrap();
        let mut table = MemoTable::new(cfg);
        for op in hot_ops() {
            table.execute(op);
        }
        let ops = hot_ops();
        b.iter(|| {
            for &op in &ops {
                black_box(table.execute(black_box(op)));
            }
        });
    });

    group.bench_function("infinite_table_mixed", |b| {
        let ops: Vec<Op> = hot_ops().into_iter().chain(cold_ops()).collect();
        b.iter_batched(
            InfiniteMemoTable::new,
            |mut table| {
                for &op in &ops {
                    black_box(table.execute(black_box(op)));
                }
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_probe_paths);
criterion_main!(benches);

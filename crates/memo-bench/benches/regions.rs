//! Plain interpretation vs region-bypassed execution (crate
//! `memo-region`) on the two extremes of the reuse spectrum: a kernel
//! whose loop-body region sees a handful of distinct live-in vectors
//! (every iteration past the first hits and skips the whole body), and
//! a kernel whose live-ins never repeat (every probe misses, so the run
//! pays pure table overhead). Host wall-clock here measures interpreter
//! economics — the architectural speedup story lives in the `regions`
//! experiment binary and `BENCH_region.json`.

use std::hint::black_box;

use memo_bench::bench_median;
use memo_isa::{assemble, Cpu, Program};
use memo_region::{RegionConfig, RegionIndex, RegionTable};
use memo_sim::{CpuModel, NullSink};

const SAMPLES: usize = 12;
const FUEL: u64 = 50_000_000;
const MEMORY: usize = 1 << 16;

/// A convolution-style loop: load a sample, run a pure 8-op fp chain
/// over loop-invariant coefficients, store, advance. The `ldf`/`stf`
/// split the chain into its own region whose live-ins are the sample
/// plus the constant coefficients — and the samples cycle through four
/// values, so the region table converges to four resident entries and
/// hits on essentially every iteration.
fn reuse_heavy() -> Program {
    let src = "li r1, 0\n\
               li r2, 20000\n\
               li r3, 1024\n\
               li r4, 1048\n\
               lif f8, 0.25\n\
               lif f9, 1.5\n\
               loop: ldf f1, r3, 0\n\
               fmul f2, f1, f8\n\
               fadd f3, f2, f9\n\
               fmul f4, f3, f1\n\
               fsub f5, f4, f8\n\
               fadd f6, f5, f3\n\
               fmul f7, f6, f9\n\
               fadd f2, f7, f4\n\
               fsub f3, f2, f1\n\
               stf f3, r3, 64\n\
               addi r3, r3, 8\n\
               and r3, r3, r4\n\
               addi r1, r1, 1\n\
               blt r1, r2, loop\n\
               halt";
    assemble(src).expect("reuse-heavy kernel assembles")
}

/// The adversary: the same loop shape, but the chain consumes the
/// induction variable, so the region's live-in vector is fresh every
/// iteration and every probe misses.
fn reuse_free() -> Program {
    let src = "li r1, 0\n\
               li r2, 20000\n\
               lif f8, 0.25\n\
               loop: itof f1, r1\n\
               fmul f2, f1, f8\n\
               fadd f3, f2, f1\n\
               fmul f4, f3, f3\n\
               fsub f5, f4, f2\n\
               addi r1, r1, 1\n\
               blt r1, r2, loop\n\
               halt";
    assemble(src).expect("reuse-free kernel assembles")
}

/// Seed the sample window with four repeating values so the arithmetic
/// region's live-ins cycle instead of diverging.
fn seed_samples(cpu: &mut Cpu) {
    for i in 0..4u64 {
        cpu.write_f64(1024 + 8 * i, 1.0 + i as f64 * 0.5).expect("sample window in bounds");
    }
}

fn time_pair(name: &str, program: &Program, seed: bool) {
    let model = CpuModel::paper_slow();
    bench_median("regions", &format!("{name}_plain"), SAMPLES, || {
        let mut cpu = Cpu::new(MEMORY);
        if seed {
            seed_samples(&mut cpu);
        }
        cpu.run(program, &mut NullSink, FUEL).expect("kernel halts");
        black_box(cpu.retired());
    });
    bench_median("regions", &format!("{name}_region"), SAMPLES, || {
        let index = RegionIndex::new(program, 16);
        let mut table = RegionTable::new(RegionConfig::new(64)).expect("valid region table");
        let mut cpu = Cpu::new(MEMORY);
        if seed {
            seed_samples(&mut cpu);
        }
        let (_, stats) = memo_region::run_with_regions(
            &mut cpu,
            program,
            &index,
            &mut table,
            &model,
            &mut NullSink,
            FUEL,
        )
        .expect("kernel halts");
        black_box((cpu.retired(), stats.hits));
    });
}

fn main() {
    // Sanity-print the dynamic story once so a regression in detection
    // (zero regions, zero hits) is visible in the bench log, not hidden
    // inside near-equal timings.
    let model = CpuModel::paper_slow();
    for (name, program, seed) in
        [("reuse_heavy", reuse_heavy(), true), ("reuse_free", reuse_free(), false)]
    {
        let index = RegionIndex::new(&program, 16);
        let mut table = RegionTable::new(RegionConfig::new(64)).expect("valid region table");
        let mut cpu = Cpu::new(MEMORY);
        if seed {
            seed_samples(&mut cpu);
        }
        let (_, stats) = memo_region::run_with_regions(
            &mut cpu,
            &program,
            &index,
            &mut table,
            &model,
            &mut NullSink,
            FUEL,
        )
        .expect("kernel halts");
        println!(
            "regions/{name}: {} static regions, {} entries, {} hits, {} instructions bypassed",
            index.regions().len(),
            stats.entries,
            stats.hits,
            stats.bypassed
        );
        time_pair(name, &program, seed);
    }
}

//! Event-stream throughput of representative kernels: how fast the
//! instrumented workloads and the ISA interpreter feed the simulator.

use std::hint::black_box;

use memo_bench::bench;
use memo_imaging::synth;
use memo_isa::{assemble, programs, Cpu};
use memo_sim::{CountingSink, CpuModel, CycleAccountant, MemoBank, MemoryHierarchy, NullSink};
use memo_workloads::mm;

fn main() {
    let corpus = synth::corpus(8);
    let image = corpus[0].image.clone();

    for name in ["vspatial", "vgauss", "vbpf", "vkmeans"] {
        let app = mm::find(name).expect("registered");
        bench("workloads", &format!("{name}_counting_sink"), 20, || {
            let mut sink = CountingSink::new();
            black_box(app.run(&mut sink, black_box(&image)));
        });
    }

    // Full cycle accounting (caches + memo bank) vs the bare counter.
    let app = mm::find("vspatial").expect("registered");
    bench("workloads", "vspatial_cycle_accountant", 20, || {
        let mut acc = CycleAccountant::new(
            CpuModel::paper_slow(),
            MemoryHierarchy::typical_1997(),
            MemoBank::paper_default(),
        );
        black_box(app.run(&mut acc, black_box(&image)));
        black_box(acc.report().speedup_measured());
    });

    // ISA interpreter throughput.
    let program = assemble(&programs::newton_sqrt(256)).expect("assembles");
    bench("workloads", "isa_newton_sqrt_256", 20, || {
        let mut cpu = Cpu::new(64 * 1024);
        for i in 0..256 {
            cpu.write_f64((i * 8) as u64, f64::from((i % 13) as u32 + 1)).unwrap();
        }
        cpu.run(black_box(&program), &mut NullSink, 10_000_000).unwrap();
        black_box(cpu.retired());
    });
}

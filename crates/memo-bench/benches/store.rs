//! Throughput of the persistent tier's building blocks: WAL-backed puts,
//! memtable flushes into sorted segments, point gets against segment
//! files, and crash recovery (reopen + WAL replay). Medians land in
//! `BENCH_store.json` so CI can archive the store's cost profile next to
//! the serve and sweep benchmarks.
//!
//! Runs without fsync — the interesting costs here are framing,
//! checksumming, and the segment index, not the device sync latency.

use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

use memo_bench::bench_median;
use memo_experiments::cache::{ShardedLru, TierBreaker};
use memo_store::{Store, StoreConfig};

/// Keys/values sized like the workload the serve layer actually stores:
/// short path-style keys, table-render-sized bodies.
const BATCH: usize = 1000;
const VALUE_LEN: usize = 256;

fn bench_config() -> StoreConfig {
    StoreConfig {
        // Large enough that a batch never auto-flushes mid-measurement.
        memtable_max_bytes: 64 << 20,
        fsync: false,
        compact_at_segments: usize::MAX,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memo-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(i: usize) -> Vec<u8> {
    format!("results/bench/{i:06}").into_bytes()
}

fn main() {
    let value = vec![0x5au8; VALUE_LEN];

    // Puts: append to the WAL and insert into the memtable.
    let dir = fresh_dir("put");
    let store = Store::open(&dir, bench_config()).expect("open");
    let mut next = 0usize;
    let put_s = bench_median("store", "put_wal_memtable_1k", 10, || {
        for i in next..next + BATCH {
            store.put(&key(i), &value).expect("put");
        }
        next += BATCH;
    });

    // Flush: write a batch and drain it into a sorted segment. Each
    // sample refills the memtable first (a bare flush of an empty
    // memtable is a no-op), so this times put + sort + segment write.
    let flush_s = bench_median("store", "put_1k_then_flush", 10, || {
        for i in next..next + BATCH {
            store.put(&key(i), &value).expect("put");
        }
        next += BATCH;
        store.flush().expect("flush");
    });

    // Segment gets: every key written above now lives in segment files.
    let get_s = bench_median("store", "get_from_segments_1k", 10, || {
        for i in 0..BATCH {
            black_box(store.get(&key(i)).expect("get"));
        }
    });
    // Degraded path: the tiered lookup the serve layer runs, with the
    // disk-tier breaker closed (every cold key loads from the segment
    // files) vs open (disk skipped entirely, straight to compute). The
    // gap is what an outage costs — and what the breaker saves by not
    // waiting on a dead disk.
    let tiered_closed_s = bench_median("store", "tiered_get_breaker_closed_1k", 10, || {
        let cache: ShardedLru<usize, Vec<u8>> = ShardedLru::new(8, 2 * BATCH);
        let breaker = TierBreaker::new(5, Duration::from_secs(60));
        for i in 0..BATCH {
            let (v, _) = cache.get_or_compute_tiered_guarded(
                &i,
                &breaker,
                || store.get(&key(i)).map_err(|_| ()),
                |_| Ok(()),
                || value.clone(),
            );
            black_box(v);
        }
    });
    let tiered_open_s = bench_median("store", "tiered_get_breaker_open_1k", 10, || {
        let cache: ShardedLru<usize, Vec<u8>> = ShardedLru::new(8, 2 * BATCH);
        let breaker = TierBreaker::new(1, Duration::from_secs(3600));
        breaker.record_failure(); // threshold 1: tripped before the loop
        for i in 0..BATCH {
            let (v, _) = cache.get_or_compute_tiered_guarded(
                &i,
                &breaker,
                || store.get(&key(i)).map_err(|_| ()),
                |_| Ok(()),
                || value.clone(),
            );
            black_box(v);
        }
    });

    let stats = store.stats();
    drop(store);

    // Recovery: reopen a store whose WAL holds one unflushed batch.
    let recover_dir = fresh_dir("recover");
    {
        let store = Store::open(&recover_dir, bench_config()).expect("open");
        for i in 0..BATCH {
            store.put(&key(i), &value).expect("put");
        }
        // Dropped without flush: everything stays in the WAL.
    }
    let recover_s = bench_median("store", "reopen_replay_1k_wal_ops", 10, || {
        let store = Store::open(&recover_dir, bench_config()).expect("reopen");
        black_box(store.stats().recovered_ops);
    });

    let mut json = String::from("{\n  \"bench\": \"memo_store\",\n");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"value_len\": {VALUE_LEN},");
    let _ = writeln!(json, "  \"put_1k_ms\": {:.3},", put_s * 1e3);
    let _ = writeln!(json, "  \"put_1k_then_flush_ms\": {:.3},", flush_s * 1e3);
    let _ = writeln!(json, "  \"get_segment_1k_ms\": {:.3},", get_s * 1e3);
    let _ = writeln!(json, "  \"recover_1k_ms\": {:.3},", recover_s * 1e3);
    let _ = writeln!(json, "  \"tiered_get_breaker_closed_1k_ms\": {:.3},", tiered_closed_s * 1e3);
    let _ = writeln!(json, "  \"tiered_get_breaker_open_1k_ms\": {:.3},", tiered_open_s * 1e3);
    let _ = writeln!(json, "  \"segments\": {},", stats.segments);
    let _ = writeln!(json, "  \"segment_bytes\": {}", stats.segment_bytes);
    json.push_str("}\n");
    let path = "BENCH_store.json";
    std::fs::write(path, json).expect("write BENCH_store.json");
    println!("wrote {path}");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&recover_dir);
}

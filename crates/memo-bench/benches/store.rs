//! Throughput of the persistent tier's building blocks: WAL-backed puts,
//! memtable flushes into sorted segments, point gets against segment
//! files, and crash recovery (reopen + WAL replay). Medians land in
//! `BENCH_store.json` so CI can archive the store's cost profile next to
//! the serve and sweep benchmarks.
//!
//! The async-pipeline additions are measured as before/after pairs in
//! the same artifact: absent-key gets with the bloom filter off vs on,
//! hot gets with and without the block cache, and per-put latency
//! quantiles with the old inline flush-at-watermark behaviour vs the
//! background flush thread. CI gates on those ratios.
//!
//! Runs without fsync — the interesting costs here are framing,
//! checksumming, and the segment index, not the device sync latency.

use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use memo_bench::bench_median;
use memo_experiments::cache::{ShardedLru, TierBreaker};
use memo_experiments::store::LruBlockCache;
use memo_store::{Store, StoreConfig};

/// Keys/values sized like the workload the serve layer actually stores:
/// short path-style keys, table-render-sized bodies.
const BATCH: usize = 1000;
const VALUE_LEN: usize = 256;

fn bench_config() -> StoreConfig {
    StoreConfig {
        // Large enough that a batch never auto-flushes mid-measurement.
        memtable_max_bytes: 64 << 20,
        fsync: false,
        compact_at_segments: usize::MAX,
        ..StoreConfig::default()
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memo-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(i: usize) -> Vec<u8> {
    format!("results/bench/{i:06}").into_bytes()
}

/// A key sorting strictly between `key(i)` and `key(i + 1)`, so an
/// absent-key probe lands inside the segment's index range and cannot
/// take the sorts-before-everything early exit.
fn absent_key(i: usize) -> Vec<u8> {
    format!("results/bench/{i:06}x").into_bytes()
}

/// A segment-backed store holding `BATCH` entries at the given
/// bits-per-key setting (0 disables the bloom filter).
fn segment_store(tag: &str, value: &[u8], bloom_bits_per_key: u32) -> (PathBuf, Store) {
    let dir = fresh_dir(tag);
    let config = StoreConfig { bloom_bits_per_key, ..bench_config() };
    let store = Store::open(&dir, config).expect("open");
    for i in 0..BATCH {
        store.put(&key(i), value).expect("put");
    }
    store.flush().expect("flush");
    (dir, store)
}

/// Per-put latency quantiles (microseconds) over `n` puts, with
/// `flush_every` forcing a synchronous flush barrier on every K-th put
/// (0 = never: the background thread absorbs the segment writes).
fn put_quantiles(tag: &str, value: &[u8], n: usize, flush_every: usize) -> (PathBuf, u64, u64) {
    let dir = fresh_dir(tag);
    // Small watermark so freezes actually happen during the run; queue
    // deep enough that the async path rarely blocks on backpressure.
    let config = StoreConfig {
        memtable_max_bytes: 32 << 10,
        fsync: false,
        compact_at_segments: usize::MAX,
        max_immutables: 8,
        ..StoreConfig::default()
    };
    let store = Store::open(&dir, config).expect("open");
    let mut lat_us: Vec<u64> = Vec::with_capacity(n);
    for i in 0..n {
        let t0 = Instant::now();
        store.put(&key(i), value).expect("put");
        if flush_every > 0 && (i + 1) % flush_every == 0 {
            // The pre-async behaviour: the put that crossed the
            // watermark paid for the whole segment write inline.
            store.flush().expect("flush");
        }
        lat_us.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
    }
    lat_us.sort_unstable();
    let q = |f: f64| {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_precision_loss)]
        let idx = ((lat_us.len() - 1) as f64 * f).round() as usize;
        lat_us[idx]
    };
    (dir, q(0.50), q(0.99))
}

#[allow(clippy::too_many_lines)]
fn main() {
    let value = vec![0x5au8; VALUE_LEN];

    // Puts: append to the WAL and insert into the memtable.
    let dir = fresh_dir("put");
    let store = Store::open(&dir, bench_config()).expect("open");
    let mut next = 0usize;
    let put_s = bench_median("store", "put_wal_memtable_1k", 10, || {
        for i in next..next + BATCH {
            store.put(&key(i), &value).expect("put");
        }
        next += BATCH;
    });

    // Flush: write a batch and drain it into a sorted segment. Each
    // sample refills the memtable first (a bare flush of an empty
    // memtable is a no-op), so this times put + freeze + the barrier
    // waiting out the background segment write.
    let flush_s = bench_median("store", "put_1k_then_flush", 10, || {
        for i in next..next + BATCH {
            store.put(&key(i), &value).expect("put");
        }
        next += BATCH;
        store.flush().expect("flush");
    });

    // Segment gets: every key written above now lives in segment files.
    let get_s = bench_median("store", "get_from_segments_1k", 10, || {
        for i in 0..BATCH {
            black_box(store.get(&key(i)).expect("get"));
        }
    });
    // Degraded path: the tiered lookup the serve layer runs, with the
    // disk-tier breaker closed (every cold key loads from the segment
    // files) vs open (disk skipped entirely, straight to compute). The
    // gap is what an outage costs — and what the breaker saves by not
    // waiting on a dead disk.
    let tiered_closed_s = bench_median("store", "tiered_get_breaker_closed_1k", 10, || {
        let cache: ShardedLru<usize, Vec<u8>> = ShardedLru::new(8, 2 * BATCH);
        let breaker = TierBreaker::new(5, Duration::from_secs(60));
        for i in 0..BATCH {
            let (v, _) = cache.get_or_compute_tiered_guarded(
                &i,
                &breaker,
                || store.get(&key(i)).map_err(|_| ()),
                |_| Ok(()),
                || value.clone(),
            );
            black_box(v);
        }
    });
    let tiered_open_s = bench_median("store", "tiered_get_breaker_open_1k", 10, || {
        let cache: ShardedLru<usize, Vec<u8>> = ShardedLru::new(8, 2 * BATCH);
        let breaker = TierBreaker::new(1, Duration::from_secs(3600));
        breaker.record_failure(); // threshold 1: tripped before the loop
        for i in 0..BATCH {
            let (v, _) = cache.get_or_compute_tiered_guarded(
                &i,
                &breaker,
                || store.get(&key(i)).map_err(|_| ()),
                |_| Ok(()),
                || value.clone(),
            );
            black_box(v);
        }
    });

    let stats = store.stats();
    drop(store);

    // Miss-heavy gets: the same absent keys against a segment with no
    // bloom filter (every probe reads and scans an index span) vs one
    // with the default filter (probes are screened in memory).
    let (nb_dir, nb_store) = segment_store("nobloom", &value, 0);
    let absent_nobloom_s = bench_median("store", "absent_get_no_bloom_1k", 10, || {
        for i in 0..BATCH {
            black_box(nb_store.get(&absent_key(i)).expect("get"));
        }
    });
    let (bl_dir, bl_store) = segment_store("bloom", &value, StoreConfig::default().bloom_bits_per_key);
    let absent_bloom_s = bench_median("store", "absent_get_bloom_1k", 10, || {
        for i in 0..BATCH {
            black_box(bl_store.get(&absent_key(i)).expect("get"));
        }
    });
    let bloom_stats = bl_store.stats();

    // Hot gets: a 16-key working set hammered by 4 threads — the shape
    // the serve layer's worker pool produces — with and without the
    // block cache. Without it every read serializes on the segment
    // file's mutex around pread; with it, hits stay on sharded
    // in-memory spans. Warmup (inside bench_median) leaves each path in
    // steady state: page cache for disk, cached spans for the other.
    const HOT_THREADS: usize = 4;
    let hot_nocache_s = bench_median("store", "hot_get_no_cache_4x1k", 10, || {
        std::thread::scope(|scope| {
            for t in 0..HOT_THREADS {
                let store = &bl_store;
                scope.spawn(move || {
                    for i in 0..BATCH {
                        black_box(store.get(&key((t + i) % 16)).expect("get"));
                    }
                });
            }
        });
    });
    let cached_store = bl_store;
    cached_store.attach_block_cache(Arc::new(LruBlockCache::new(256)));
    let hot_cache_s = bench_median("store", "hot_get_block_cache_4x1k", 10, || {
        std::thread::scope(|scope| {
            for t in 0..HOT_THREADS {
                let store = &cached_store;
                scope.spawn(move || {
                    for i in 0..BATCH {
                        black_box(store.get(&key((t + i) % 16)).expect("get"));
                    }
                });
            }
        });
    });
    let cache_stats = cached_store.stats();
    drop(cached_store);
    drop(nb_store);

    // Put latency quantiles: inline flush at the watermark (the old
    // behaviour) vs the background flush thread, same data and cadence.
    // 32 KiB watermark / ~280 B records ≈ a freeze every ~110 puts.
    let (sync_dir, put_p50_sync, put_p99_sync) = put_quantiles("putsync", &value, 4 * BATCH, 110);
    let (async_dir, put_p50_async, put_p99_async) = put_quantiles("putasync", &value, 4 * BATCH, 0);
    println!(
        "store/put_latency: sync p50/p99 = {put_p50_sync}/{put_p99_sync} us, \
         async p50/p99 = {put_p50_async}/{put_p99_async} us"
    );

    // Recovery: reopen a store whose WAL holds one unflushed batch.
    let recover_dir = fresh_dir("recover");
    {
        let store = Store::open(&recover_dir, bench_config()).expect("open");
        for i in 0..BATCH {
            store.put(&key(i), &value).expect("put");
        }
        // Dropped without flush: everything stays in the WAL.
    }
    let recover_s = bench_median("store", "reopen_replay_1k_wal_ops", 10, || {
        let store = Store::open(&recover_dir, bench_config()).expect("reopen");
        black_box(store.stats().recovered_ops);
    });

    let mut json = String::from("{\n  \"bench\": \"memo_store\",\n");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    let _ = writeln!(json, "  \"value_len\": {VALUE_LEN},");
    let _ = writeln!(json, "  \"put_1k_ms\": {:.3},", put_s * 1e3);
    let _ = writeln!(json, "  \"put_1k_then_flush_ms\": {:.3},", flush_s * 1e3);
    let _ = writeln!(json, "  \"get_segment_1k_ms\": {:.3},", get_s * 1e3);
    let _ = writeln!(json, "  \"recover_1k_ms\": {:.3},", recover_s * 1e3);
    let _ = writeln!(json, "  \"tiered_get_breaker_closed_1k_ms\": {:.3},", tiered_closed_s * 1e3);
    let _ = writeln!(json, "  \"tiered_get_breaker_open_1k_ms\": {:.3},", tiered_open_s * 1e3);
    let _ = writeln!(json, "  \"absent_get_no_bloom_1k_ms\": {:.3},", absent_nobloom_s * 1e3);
    let _ = writeln!(json, "  \"absent_get_bloom_1k_ms\": {:.3},", absent_bloom_s * 1e3);
    let _ = writeln!(json, "  \"absent_get_speedup\": {:.2},", absent_nobloom_s / absent_bloom_s.max(1e-9));
    let _ = writeln!(json, "  \"hot_get_no_cache_4x1k_ms\": {:.3},", hot_nocache_s * 1e3);
    let _ = writeln!(json, "  \"hot_get_block_cache_4x1k_ms\": {:.3},", hot_cache_s * 1e3);
    let _ = writeln!(json, "  \"hot_get_speedup\": {:.2},", hot_nocache_s / hot_cache_s.max(1e-9));
    let _ = writeln!(json, "  \"put_p50_sync_flush_us\": {put_p50_sync},");
    let _ = writeln!(json, "  \"put_p99_sync_flush_us\": {put_p99_sync},");
    let _ = writeln!(json, "  \"put_p50_async_flush_us\": {put_p50_async},");
    let _ = writeln!(json, "  \"put_p99_async_flush_us\": {put_p99_async},");
    let _ = writeln!(json, "  \"bloom_negatives\": {},", bloom_stats.bloom_negatives);
    let _ = writeln!(json, "  \"block_cache_hits\": {},", cache_stats.block_cache_hits);
    let _ = writeln!(json, "  \"segments\": {},", stats.segments);
    let _ = writeln!(json, "  \"segment_bytes\": {}", stats.segment_bytes);
    json.push_str("}\n");
    let path = "BENCH_store.json";
    std::fs::write(path, json).expect("write BENCH_store.json");
    println!("wrote {path}");

    for d in [&dir, &recover_dir, &nb_dir, &bl_dir, &sync_dir, &async_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

//! One benchmark per evaluation table: each target regenerates the
//! corresponding table of the paper at reduced scale, so `cargo bench`
//! doubles as the reproduction driver.

use std::hint::black_box;

use memo_bench::{bench, bench_cfg};
use memo_experiments::{hits, images, mantissa, speedup, table1, trivial};

fn main() {
    let cfg = bench_cfg();

    bench("paper_tables", "table1_latencies", 10, || {
        black_box(table1::render());
    });
    bench("paper_tables", "table5_perfect_hit_ratios", 10, || {
        black_box(hits::table5(cfg));
    });
    bench("paper_tables", "table6_spec_hit_ratios", 10, || {
        black_box(hits::table6(cfg));
    });
    bench("paper_tables", "table7_mm_hit_ratios", 10, || {
        black_box(hits::table7(cfg));
    });
    bench("paper_tables", "table8_image_entropies", 10, || {
        black_box(images::table8(cfg));
    });
    bench("paper_tables", "table9_trivial_policies", 10, || {
        black_box(trivial::table9(cfg).unwrap());
    });
    bench("paper_tables", "table10_mantissa_tags", 10, || {
        black_box(mantissa::table10(cfg));
    });
    bench("paper_tables", "table11_fdiv_speedup", 10, || {
        black_box(speedup::table11(cfg).unwrap());
    });
    bench("paper_tables", "table12_fmul_speedup", 10, || {
        black_box(speedup::table12(cfg).unwrap());
    });
    bench("paper_tables", "table13_combined_speedup", 10, || {
        black_box(speedup::table13(cfg).unwrap());
    });
}

//! One benchmark per evaluation table: each target regenerates the
//! corresponding table of the paper at reduced scale, so `cargo bench`
//! doubles as the reproduction driver.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use memo_bench::bench_cfg;
use memo_experiments::{hits, images, mantissa, speedup, table1, trivial};

fn bench_tables(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("paper_tables");
    group.sample_size(10);

    group.bench_function("table1_latencies", |b| {
        b.iter(|| black_box(table1::render()));
    });
    group.bench_function("table5_perfect_hit_ratios", |b| {
        b.iter(|| black_box(hits::table5(cfg)));
    });
    group.bench_function("table6_spec_hit_ratios", |b| {
        b.iter(|| black_box(hits::table6(cfg)));
    });
    group.bench_function("table7_mm_hit_ratios", |b| {
        b.iter(|| black_box(hits::table7(cfg)));
    });
    group.bench_function("table8_image_entropies", |b| {
        b.iter(|| black_box(images::table8(cfg)));
    });
    group.bench_function("table9_trivial_policies", |b| {
        b.iter(|| black_box(trivial::table9(cfg)));
    });
    group.bench_function("table10_mantissa_tags", |b| {
        b.iter(|| black_box(mantissa::table10(cfg)));
    });
    group.bench_function("table11_fdiv_speedup", |b| {
        b.iter(|| black_box(speedup::table11(cfg)));
    });
    group.bench_function("table12_fmul_speedup", |b| {
        b.iter(|| black_box(speedup::table12(cfg)));
    });
    group.bench_function("table13_combined_speedup", |b| {
        b.iter(|| black_box(speedup::table13(cfg)));
    });

    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);

//! # memo-bench
//!
//! Criterion benchmarks for the memo-tables reproduction:
//!
//! * `memo_table` — microbenchmarks of the MEMO-TABLE itself (probe hit,
//!   probe miss, insert, mantissa reconstruction, infinite-table lookups);
//! * `paper_tables` — end-to-end regeneration of Tables 5–13 at reduced
//!   scale;
//! * `paper_figures` — Figures 2–4;
//! * `workloads` — event-stream throughput of representative kernels.
//!
//! Run `cargo bench --workspace`; results land in `target/criterion`.
//! The shared reduced-scale configuration lives in [`bench_cfg`].

use memo_experiments::ExpConfig;

/// The scale every paper-table benchmark runs at: small enough for
/// benchmarking, large enough to exercise the full code paths.
#[must_use]
pub fn bench_cfg() -> ExpConfig {
    ExpConfig::quick()
}

//! # memo-bench
//!
//! Timing benchmarks for the memo-tables reproduction:
//!
//! * `memo_table` — microbenchmarks of the MEMO-TABLE itself (probe hit,
//!   probe miss, insert, mantissa reconstruction, infinite-table lookups);
//! * `paper_tables` — end-to-end regeneration of Tables 5–13 at reduced
//!   scale;
//! * `paper_figures` — Figures 2–4;
//! * `workloads` — event-stream throughput of representative kernels;
//! * `trace_replay` — native re-execution vs. operand-trace replay;
//! * `sweep_fusion` — fused single-pass sweep vs. per-configuration
//!   replay, emitting machine-readable `BENCH_sweep.json`.
//!
//! Run `cargo bench --workspace`; each bench is a plain `harness = false`
//! binary (the repo builds offline, so no criterion) that prints one
//! median-of-runs line per target. The shared reduced-scale configuration
//! lives in [`bench_cfg`].

use std::time::Instant;

use memo_experiments::ExpConfig;

/// The scale every paper-table benchmark runs at: small enough for
/// benchmarking, large enough to exercise the full code paths.
#[must_use]
pub fn bench_cfg() -> ExpConfig {
    ExpConfig::quick()
}

/// Time `f` for a handful of samples after one warmup call and print the
/// median wall-clock time per call, benchmark-harness style.
pub fn bench<F: FnMut()>(group: &str, name: &str, samples: usize, f: F) {
    bench_median(group, name, samples, f);
}

/// Like [`bench`], but also return the median seconds per call so
/// callers can emit machine-readable results (e.g. `BENCH_sweep.json`).
pub fn bench_median<F: FnMut()>(group: &str, name: &str, samples: usize, mut f: F) -> f64 {
    f(); // warmup
    let mut times: Vec<f64> = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);
    println!(
        "{group}/{name:<34} median {:>12} [{} .. {}]",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi)
    );
    median
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_cfg_is_quick_scale() {
        let cfg = bench_cfg();
        assert!(cfg.image_scale >= 16);
    }

    #[test]
    fn time_formatting_covers_magnitudes() {
        assert!(fmt_time(2.5).ends_with(" s"));
        assert!(fmt_time(2.5e-3).ends_with(" ms"));
        assert!(fmt_time(2.5e-6).ends_with(" µs"));
        assert!(fmt_time(2.5e-9).ends_with(" ns"));
    }
}

//! # memo-region — basic-block region memoization
//!
//! The paper memoizes single multiply/divide/sqrt operations; this crate
//! generalizes the idea from units to whole instruction sequences,
//! following the RISC-V-softcore scheme sketched in the repo's related
//! work: detect *pure* straight-line regions of a [`memo_isa::Program`]
//! (no loads, stores, branches, division faults, or halt), key a
//! set-associative table on `(entry_pc, live-in register values)`, and
//! on a hit write the remembered live-out registers and jump straight to
//! the instruction after the region — bypassing the whole block.
//!
//! Three layers:
//!
//! - [`detect`] — the static region detection pass ([`Region`],
//!   [`RegionCost`]): maximal pure runs, split at branch targets so every
//!   region is single-entry/single-exit, with exact live-in/live-out sets.
//! - [`RegionTable`] — the hardware-model table: SplitMix64-hashed
//!   set-associative lookup, LRU replacement, the PR 1 [`Protection`]
//!   policies (parity / SEC-DED / verify-on-hit) with deterministic fault
//!   injection, and [`MemoStats`]-compatible counters.
//! - [`run_with_regions`] — the region-aware executor: probes the table
//!   at region entry PCs, bypasses on a hit, executes-and-inserts on a
//!   miss, and keeps the architectural state (registers, memory, retired
//!   count) bit-identical to plain [`memo_isa::Cpu::run`].
//!
//! Transparency is the contract: any detected fault falls back to plain
//! execution, so only `Protection::None` under injected faults can ever
//! produce silent data corruption — exactly as in the per-unit tables.
//!
//! [`Protection`]: memo_table::Protection
//! [`MemoStats`]: memo_table::MemoStats

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod detect;
mod exec;
mod table;

pub use detect::{detect, Region, RegionCost, MIN_REGION_LEN};
pub use exec::{run_with_regions, RegionIndex, RegionRunStats};
pub use table::{RegionConfig, RegionConfigError, RegionProbe, RegionTable};

//! The region memo-table: set-associative, keyed on
//! `(entry_pc, live-in register values)`, payload = live-out values.
//!
//! Correctness never rests on the hash: the full live-in vector is
//! stored and compared word-for-word on every probe, the SplitMix64 hash
//! only selects the set and provides a cheap early-out tag. Protection
//! and fault injection reuse the PR 1 [`Protection`] policies and
//! [`FaultInjector`]: each payload entry keeps a reference copy, and the
//! Hamming distance between the (possibly struck) served payload and the
//! reference decides detection/correction exactly as in the per-unit
//! tables' semantic ECC model.

use memo_table::rng::SplitMix64;
use memo_table::{Assoc, FaultConfig, FaultInjector, MemoStats, Protection};

/// Configuration for a [`RegionTable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionConfig {
    /// Total entries; must be a power of two.
    pub entries: usize,
    /// Set associativity.
    pub assoc: Assoc,
    /// Payload protection policy.
    pub protection: Protection,
    /// Deterministic soft-error injection (disabled by default).
    pub faults: FaultConfig,
}

impl RegionConfig {
    /// `entries` 4-way associative, unprotected, no faults.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        RegionConfig {
            entries,
            assoc: Assoc::Ways(4),
            protection: Protection::None,
            faults: FaultConfig::disabled(),
        }
    }

    /// Set the associativity.
    #[must_use]
    pub fn assoc(mut self, assoc: Assoc) -> Self {
        self.assoc = assoc;
        self
    }

    /// Set the protection policy.
    #[must_use]
    pub fn protection(mut self, protection: Protection) -> Self {
        self.protection = protection;
        self
    }

    /// Enable fault injection.
    #[must_use]
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }
}

/// Why a [`RegionConfig`] is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionConfigError {
    /// Entry count must be a nonzero power of two.
    Entries(usize),
    /// Ways must divide entries into a power-of-two number of sets.
    Ways {
        /// Requested entry count.
        entries: usize,
        /// Requested way count.
        ways: usize,
    },
}

impl std::fmt::Display for RegionConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionConfigError::Entries(n) => {
                write!(f, "region table entries must be a nonzero power of two, got {n}")
            }
            RegionConfigError::Ways { entries, ways } => write!(
                f,
                "region table ways ({ways}) must divide entries ({entries}) into a power-of-two set count"
            ),
        }
    }
}

impl std::error::Error for RegionConfigError {}

/// Result of presenting a region's live-in values to the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionProbe {
    /// No matching entry: execute the body and [`RegionTable::insert`].
    Miss,
    /// Matching entry: the payload is the live-out values, bypass the body.
    Hit(Vec<u64>),
    /// Matching entry under [`Protection::VerifyOnHit`]: the payload may
    /// be used only after the caller re-executes the body and calls
    /// [`RegionTable::confirm`] with the comparison result.
    VerifyHit(Vec<u64>),
}

struct Entry {
    hash: u64,
    entry_pc: usize,
    live_in: Box<[u64]>,
    live_out: Box<[u64]>,
    /// Reference copy for the semantic parity/ECC model (what the payload
    /// held when inserted; strikes only perturb `live_out`).
    reference: Box<[u64]>,
    stamp: u64,
}

/// A set-associative region memo-table with LRU replacement.
pub struct RegionTable {
    sets: usize,
    ways: usize,
    protection: Protection,
    slots: Vec<Option<Entry>>,
    stats: MemoStats,
    injector: FaultInjector,
    word_rng: SplitMix64,
    tick: u64,
}

/// SplitMix64 chained over the entry pc and every live-in word — the
/// same generator the fault injector and synthetic corpora use, reused
/// as a mixing function.
fn key_hash(entry_pc: usize, live_in: &[u64]) -> u64 {
    let mut h = SplitMix64::new(0x9e37_79b9_7f4a_7c15 ^ entry_pc as u64).next_u64();
    for &w in live_in {
        h = SplitMix64::new(h ^ w).next_u64();
    }
    h
}

impl RegionTable {
    /// Build a table from `config`.
    ///
    /// # Errors
    ///
    /// [`RegionConfigError`] when the geometry is invalid.
    pub fn new(config: RegionConfig) -> Result<Self, RegionConfigError> {
        if config.entries == 0 || !config.entries.is_power_of_two() {
            return Err(RegionConfigError::Entries(config.entries));
        }
        let ways = config.assoc.ways(config.entries);
        if ways == 0
            || !config.entries.is_multiple_of(ways)
            || !(config.entries / ways).is_power_of_two()
        {
            return Err(RegionConfigError::Ways { entries: config.entries, ways });
        }
        let mut slots = Vec::new();
        slots.resize_with(config.entries, || None);
        Ok(RegionTable {
            sets: config.entries / ways,
            ways,
            protection: config.protection,
            slots,
            stats: MemoStats::default(),
            injector: FaultInjector::new(config.faults),
            word_rng: SplitMix64::new(config.faults.seed).split("region-strike-word"),
            tick: 0,
        })
    }

    /// The configured protection policy.
    #[must_use]
    pub fn protection(&self) -> Protection {
        self.protection
    }

    /// Total entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Ways per set.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Lookup/hit/eviction/fault counters.
    #[must_use]
    pub fn stats(&self) -> &MemoStats {
        &self.stats
    }

    fn set_range(&self, hash: u64) -> std::ops::Range<usize> {
        let set = (hash as usize) & (self.sets - 1);
        set * self.ways..(set + 1) * self.ways
    }

    fn find(&self, hash: u64, entry_pc: usize, live_in: &[u64]) -> Option<usize> {
        self.set_range(hash).find(|&i| {
            self.slots[i].as_ref().is_some_and(|e| {
                e.hash == hash && e.entry_pc == entry_pc && *e.live_in == *live_in
            })
        })
    }

    /// Present a region entry to the table.
    pub fn probe(&mut self, entry_pc: usize, live_in: &[u64]) -> RegionProbe {
        self.stats.ops_seen += 1;
        self.stats.table_lookups += 1;
        let hash = key_hash(entry_pc, live_in);

        // A tag strike flips a bit of some valid entry's stored hash in
        // this set; the entry simply stops matching (a clean miss for its
        // key), mirroring the per-unit tables' tag-corruption model.
        if let Some((way_draw, bit)) = self.injector.tag_strike() {
            let candidates: Vec<usize> =
                self.set_range(hash).filter(|&i| self.slots[i].is_some()).collect();
            if !candidates.is_empty() {
                let victim = candidates[(way_draw % candidates.len() as u64) as usize];
                if let Some(e) = self.slots[victim].as_mut() {
                    e.hash ^= 1 << (bit % 64);
                    self.stats.faults_injected += 1;
                }
            }
        }

        let Some(slot) = self.find(hash, entry_pc, live_in) else {
            return RegionProbe::Miss;
        };

        // A value strike flips 1–2 bits of one payload word.
        if let Some(mask) = self.injector.value_strike() {
            let e = self.slots[slot].as_mut().expect("found slot is occupied");
            if !e.live_out.is_empty() {
                let w = self.word_rng.next_below(e.live_out.len() as u64) as usize;
                e.live_out[w] ^= mask;
                self.stats.faults_injected += 1;
            }
        }

        if let Protection::VerifyOnHit { .. } = self.protection {
            let e = self.slots[slot].as_ref().expect("found slot is occupied");
            return RegionProbe::VerifyHit(e.live_out.to_vec());
        }

        // Semantic parity/ECC: compare the served payload to its
        // reference copy word-by-word; the Hamming distance of each word
        // decides what the code word's check bits would have seen.
        let mut detected = false;
        let mut silent = false;
        let mut corrected = 0u64;
        {
            let e = self.slots[slot].as_mut().expect("found slot is occupied");
            for w in 0..e.live_out.len() {
                let distance = (e.live_out[w] ^ e.reference[w]).count_ones();
                if distance == 0 {
                    continue;
                }
                match self.protection {
                    Protection::None => silent = true,
                    Protection::ParityDetect => {
                        if distance % 2 == 1 {
                            detected = true;
                        } else {
                            silent = true;
                        }
                    }
                    Protection::EccSecDed => {
                        if distance == 1 {
                            e.live_out[w] = e.reference[w];
                            corrected += 1;
                        } else {
                            detected = true;
                        }
                    }
                    Protection::VerifyOnHit { .. } => unreachable!("handled above"),
                }
            }
        }
        self.stats.faults_corrected += corrected;
        if detected {
            // Detected corruption invalidates the entry and falls back to
            // execution — a miss, never a wrong payload.
            self.stats.faults_detected += 1;
            self.slots[slot] = None;
            return RegionProbe::Miss;
        }
        if silent {
            self.stats.faults_silent += 1;
        }
        self.stats.table_hits += 1;
        self.tick += 1;
        let e = self.slots[slot].as_mut().expect("found slot is occupied");
        e.stamp = self.tick;
        RegionProbe::Hit(e.live_out.to_vec())
    }

    /// Report the verify-on-hit outcome for the entry a
    /// [`RegionProbe::VerifyHit`] came from: `matched` means the
    /// re-executed live-outs equalled the payload. A mismatch is a
    /// detected fault — the entry is invalidated and the executed results
    /// stand.
    pub fn confirm(&mut self, entry_pc: usize, live_in: &[u64], matched: bool) {
        let hash = key_hash(entry_pc, live_in);
        let Some(slot) = self.find(hash, entry_pc, live_in) else {
            return;
        };
        if matched {
            self.stats.table_hits += 1;
            self.tick += 1;
            let e = self.slots[slot].as_mut().expect("found slot is occupied");
            e.stamp = self.tick;
        } else {
            self.stats.faults_detected += 1;
            self.slots[slot] = None;
        }
    }

    /// Remember `live_out` for `(entry_pc, live_in)` after a miss
    /// executed the body. LRU replacement within the set.
    pub fn insert(&mut self, entry_pc: usize, live_in: &[u64], live_out: &[u64]) {
        let hash = key_hash(entry_pc, live_in);
        let range = self.set_range(hash);
        let victim = range
            .clone()
            .find(|&i| self.slots[i].is_none())
            .unwrap_or_else(|| {
                range
                    .min_by_key(|&i| self.slots[i].as_ref().map_or(0, |e| e.stamp))
                    .expect("sets are never empty")
            });
        if self.slots[victim].is_some() {
            self.stats.evictions += 1;
        }
        self.stats.insertions += 1;
        self.tick += 1;
        self.slots[victim] = Some(Entry {
            hash,
            entry_pc,
            live_in: live_in.into(),
            live_out: live_out.into(),
            reference: live_out.into(),
            stamp: self.tick,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: usize, assoc: Assoc) -> RegionTable {
        RegionTable::new(RegionConfig::new(entries).assoc(assoc)).unwrap()
    }

    #[test]
    fn geometry_is_validated() {
        assert!(matches!(
            RegionTable::new(RegionConfig::new(0)),
            Err(RegionConfigError::Entries(0))
        ));
        assert!(matches!(
            RegionTable::new(RegionConfig::new(48)),
            Err(RegionConfigError::Entries(48))
        ));
        assert!(matches!(
            RegionTable::new(RegionConfig::new(16).assoc(Assoc::Ways(3))),
            Err(RegionConfigError::Ways { entries: 16, ways: 3 })
        ));
        for assoc in [Assoc::DirectMapped, Assoc::Ways(2), Assoc::Ways(4), Assoc::Full] {
            assert!(RegionTable::new(RegionConfig::new(16).assoc(assoc)).is_ok());
        }
    }

    #[test]
    fn miss_insert_hit_roundtrip() {
        let mut t = table(16, Assoc::Ways(4));
        let live_in = [1u64, 2, 3];
        let live_out = [10u64, 20];
        assert_eq!(t.probe(7, &live_in), RegionProbe::Miss);
        t.insert(7, &live_in, &live_out);
        assert_eq!(t.probe(7, &live_in), RegionProbe::Hit(live_out.to_vec()));
        // Same pc, different live-ins: distinct key.
        assert_eq!(t.probe(7, &[9, 9, 9]), RegionProbe::Miss);
        // Same live-ins, different pc: distinct key.
        assert_eq!(t.probe(8, &live_in), RegionProbe::Miss);
        assert_eq!(t.stats().table_lookups, 4);
        assert_eq!(t.stats().table_hits, 1);
        assert_eq!(t.stats().insertions, 1);
    }

    #[test]
    fn lru_evicts_the_coldest_way() {
        // Full associativity, 2 entries: one set, LRU across it.
        let mut t = table(2, Assoc::Full);
        t.insert(1, &[1], &[1]);
        t.insert(2, &[2], &[2]);
        assert!(matches!(t.probe(1, &[1]), RegionProbe::Hit(_))); // touch 1
        t.insert(3, &[3], &[3]); // evicts key 2
        assert!(matches!(t.probe(1, &[1]), RegionProbe::Hit(_)));
        assert!(matches!(t.probe(3, &[3]), RegionProbe::Hit(_)));
        assert_eq!(t.probe(2, &[2]), RegionProbe::Miss);
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn parity_detects_and_falls_back_ecc_corrects() {
        // Strike every probe (rate 1.0): parity must detect the odd-bit
        // flip, invalidate, and miss — never serve the corrupt payload.
        let faults = FaultConfig::single_bit(11, 1.0);
        let mut t = RegionTable::new(
            RegionConfig::new(8).protection(Protection::ParityDetect).faults(faults),
        )
        .unwrap();
        t.insert(4, &[5], &[42]);
        assert_eq!(t.probe(4, &[5]), RegionProbe::Miss);
        assert_eq!(t.stats().faults_injected, 1);
        assert_eq!(t.stats().faults_detected, 1);
        assert_eq!(t.stats().faults_silent, 0);

        let mut t = RegionTable::new(
            RegionConfig::new(8).protection(Protection::EccSecDed).faults(faults),
        )
        .unwrap();
        t.insert(4, &[5], &[42]);
        // Single-bit strikes are corrected back to the reference.
        assert_eq!(t.probe(4, &[5]), RegionProbe::Hit(vec![42]));
        assert_eq!(t.stats().faults_corrected, 1);

        let mut t =
            RegionTable::new(RegionConfig::new(8).faults(faults)).unwrap();
        t.insert(4, &[5], &[42]);
        // Unprotected: the corrupt payload is served silently.
        match t.probe(4, &[5]) {
            RegionProbe::Hit(v) => assert_ne!(v, vec![42]),
            other => panic!("expected a (corrupt) hit, got {other:?}"),
        }
        assert_eq!(t.stats().faults_silent, 1);
    }

    #[test]
    fn verify_on_hit_defers_to_confirm() {
        let mut t = RegionTable::new(
            RegionConfig::new(8).protection(Protection::VerifyOnHit { verify_cycles: 4 }),
        )
        .unwrap();
        t.insert(2, &[7], &[70]);
        assert_eq!(t.probe(2, &[7]), RegionProbe::VerifyHit(vec![70]));
        // Not a hit until confirmed.
        assert_eq!(t.stats().table_hits, 0);
        t.confirm(2, &[7], true);
        assert_eq!(t.stats().table_hits, 1);
        // A mismatch invalidates.
        assert_eq!(t.probe(2, &[7]), RegionProbe::VerifyHit(vec![70]));
        t.confirm(2, &[7], false);
        assert_eq!(t.stats().faults_detected, 1);
        assert_eq!(t.probe(2, &[7]), RegionProbe::Miss);
    }
}

//! The region-aware executor: plain interpretation interleaved with
//! region-table probes, bypassing whole pure blocks on a hit.

use memo_isa::{Cpu, ExitReason, IsaError, Program, Step};
use memo_sim::{CpuModel, EventSink};

use crate::detect::{detect, Region};
use crate::table::{RegionProbe, RegionTable};

/// Detected regions of one program, indexed by entry pc for O(1) lookup
/// in the execution loop.
pub struct RegionIndex {
    regions: Vec<Region>,
    at: Vec<Option<u32>>,
}

impl RegionIndex {
    /// Detect regions of `program` (bodies capped at `max_len`) and build
    /// the pc-indexed lookup.
    #[must_use]
    pub fn new(program: &Program, max_len: usize) -> Self {
        let regions = detect(program, max_len);
        let mut at = vec![None; program.len()];
        for (i, r) in regions.iter().enumerate() {
            at[r.entry_pc()] = Some(u32::try_from(i).expect("programs are far below 2^32 regions"));
        }
        RegionIndex { regions, at }
    }

    /// All detected regions, in program order.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Static instruction count covered by regions.
    #[must_use]
    pub fn covered_instructions(&self) -> usize {
        self.regions.iter().map(Region::len).sum()
    }

    fn lookup(&self, pc: usize) -> Option<&Region> {
        let idx = (*self.at.get(pc)?)?;
        Some(&self.regions[idx as usize])
    }
}

/// Dynamic counters from one region-aware run, in the units the
/// cycle-accounting model needs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionRunStats {
    /// Region entries (every one costs a table probe).
    pub entries: u64,
    /// Entries served from the table (payload applied, body skipped or —
    /// under verify-on-hit — recomputed concurrently).
    pub hits: u64,
    /// Instructions whose execution the table bypassed outright.
    pub bypassed: u64,
    /// Dynamic instructions inside entered regions (hit or miss).
    pub covered: u64,
    /// Cycles the memoized machine pays for probes and hit penalties.
    pub charged_cycles: u64,
    /// Baseline body cycles that hits made unnecessary.
    pub credited_cycles: u64,
}

impl RegionRunStats {
    /// Hits over entries (`None` when no region was ever entered).
    #[must_use]
    pub fn hit_ratio(&self) -> Option<f64> {
        (self.entries > 0).then(|| self.hits as f64 / self.entries as f64)
    }

    /// The memoized machine's total given the baseline machine's
    /// `baseline` cycles for the same instruction stream: bypassed bodies
    /// are credited back, probes and penalties are charged.
    #[must_use]
    pub fn memoized_total(&self, baseline: u64) -> u64 {
        baseline.saturating_sub(self.credited_cycles) + self.charged_cycles
    }

    /// Speedup of the region-memoized machine over the baseline.
    #[must_use]
    pub fn speedup(&self, baseline: u64) -> f64 {
        baseline as f64 / self.memoized_total(baseline) as f64
    }
}

/// Marshalling order for live register values: integer registers
/// ascending, then fp registers ascending. Integers as two's-complement
/// bits, doubles as IEEE bits — comparisons are bit-exact (NaN-safe).
fn gather(cpu: &Cpu, int_mask: u32, fp_mask: u32, out: &mut Vec<u64>) {
    out.clear();
    for r in 1..32u8 {
        if int_mask & (1 << r) != 0 {
            out.push(cpu.reg(r) as u64);
        }
    }
    for f in 0..32u8 {
        if fp_mask & (1 << f) != 0 {
            out.push(cpu.freg(f).to_bits());
        }
    }
}

fn apply(cpu: &mut Cpu, region: &Region, words: &[u64]) {
    let mut next = words.iter();
    for r in 1..32u8 {
        if region.live_out_int() & (1 << r) != 0 {
            cpu.set_reg(r, *next.next().expect("payload width matches live-out set") as i64);
        }
    }
    for f in 0..32u8 {
        if region.live_out_fp() & (1 << f) != 0 {
            cpu.set_freg(f, f64::from_bits(*next.next().expect("payload width matches live-out set")));
        }
    }
}

/// Execute the region body by plain single-stepping, streaming events
/// into `sink`. Returns the pc after the region.
fn execute_body<S: EventSink + ?Sized>(
    cpu: &mut Cpu,
    program: &Program,
    region: &Region,
    sink: &mut S,
) -> Result<usize, IsaError> {
    let mut pc = region.entry_pc();
    for _ in 0..region.len() {
        match cpu.step(program, pc, sink)? {
            Step::Next(next) => pc = next,
            Step::Halted => unreachable!("regions never contain halt"),
        }
    }
    debug_assert_eq!(pc, region.next_pc(), "regions are straight-line");
    Ok(pc)
}

/// Run `program` on `cpu` with region memoization: at every region entry
/// pc the table is probed; a hit writes the remembered live-outs and
/// jumps past the body, a miss executes the body and inserts what it
/// produced. Architectural state (registers, memory, retired count, exit
/// reason, fuel semantics) is bit-identical to [`Cpu::run`]; only the
/// event stream differs, since bypassed bodies emit no events.
///
/// `model` prices the credit side of the cycle ledger: a hit credits the
/// body's baseline cycles and charges `1 + protection penalty`; every
/// entry (hit or miss) charges 1 probe cycle.
///
/// # Errors
///
/// Exactly the [`Cpu::run`] errors: [`IsaError::OutOfFuel`],
/// [`IsaError::MemoryFault`], [`IsaError::DivideByZero`],
/// [`IsaError::RanOffEnd`].
pub fn run_with_regions<S: EventSink + ?Sized>(
    cpu: &mut Cpu,
    program: &Program,
    index: &RegionIndex,
    table: &mut RegionTable,
    model: &CpuModel,
    sink: &mut S,
    fuel: u64,
) -> Result<(ExitReason, RegionRunStats), IsaError> {
    let mut stats = RegionRunStats::default();
    let penalty = u64::from(table.protection().hit_penalty());
    let mut live_in = Vec::with_capacity(8);
    let mut live_out = Vec::with_capacity(8);
    let mut pc = 0usize;
    let mut remaining = fuel;
    while remaining > 0 {
        // Enter a region only when its whole body fits in the remaining
        // fuel; otherwise fall through to single-stepping so an
        // out-of-fuel run stops at exactly the same retired count as
        // plain execution.
        if let Some(region) = index.lookup(pc) {
            if (region.len() as u64) <= remaining {
                let len = region.len() as u64;
                stats.entries += 1;
                stats.covered += len;
                stats.charged_cycles += 1; // the probe
                gather(cpu, region.live_in_int(), region.live_in_fp(), &mut live_in);
                match table.probe(pc, &live_in) {
                    RegionProbe::Hit(payload) => {
                        apply(cpu, region, &payload);
                        cpu.retire(len);
                        remaining -= len;
                        stats.hits += 1;
                        stats.bypassed += len;
                        stats.charged_cycles += penalty;
                        stats.credited_cycles += region.cost().cycles(model);
                        pc = region.next_pc();
                    }
                    RegionProbe::VerifyHit(payload) => {
                        // The verify unit recomputes the body while the
                        // payload is speculatively forwarded; events
                        // stream as on a miss.
                        pc = execute_body(cpu, program, region, sink)?;
                        remaining -= len;
                        gather(cpu, region.live_out_int(), region.live_out_fp(), &mut live_out);
                        let matched = live_out == payload;
                        table.confirm(region.entry_pc(), &live_in, matched);
                        if matched {
                            stats.hits += 1;
                            stats.charged_cycles += penalty;
                            stats.credited_cycles += region.cost().cycles(model);
                        }
                        // On a mismatch the executed results stand and
                        // full latency was paid: nothing credited.
                    }
                    RegionProbe::Miss => {
                        pc = execute_body(cpu, program, region, sink)?;
                        remaining -= len;
                        gather(cpu, region.live_out_int(), region.live_out_fp(), &mut live_out);
                        table.insert(region.entry_pc(), &live_in, &live_out);
                    }
                }
                continue;
            }
        }
        match cpu.step(program, pc, sink)? {
            Step::Next(next) => pc = next,
            Step::Halted => return Ok((ExitReason::Halted, stats)),
        }
        remaining -= 1;
    }
    Err(IsaError::OutOfFuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RegionConfig;
    use memo_isa::assemble;
    use memo_sim::NullSink;
    use memo_table::rng::SplitMix64;
    use memo_table::{Assoc, FaultConfig, Protection};

    const FUEL: u64 = 1_000_000;

    fn model() -> CpuModel {
        CpuModel::paper_slow()
    }

    fn assert_same_state(plain: &Cpu, memoized: &Cpu, context: &str) {
        for r in 0..32 {
            assert_eq!(plain.reg(r), memoized.reg(r), "{context}: r{r}");
            assert_eq!(
                plain.freg(r).to_bits(),
                memoized.freg(r).to_bits(),
                "{context}: f{r}"
            );
        }
        assert_eq!(plain.memory(), memoized.memory(), "{context}: memory");
        assert_eq!(plain.retired(), memoized.retired(), "{context}: retired");
    }

    /// A loop whose body region sees only a handful of distinct live-in
    /// values: the second iteration onward hits.
    #[test]
    fn hits_bypass_and_state_stays_identical() {
        let src = "li r1, 0\n li r2, 100\n li r3, 0\n lif f1, 3.0\n lif f2, 0.5\n \
                   loop: fmul f3, f1, f2\n fadd f4, f3, f1\n fsub f5, f4, f2\n \
                   stf f5, r3, 0\n addi r1, r1, 1\n blt r1, r2, loop\n halt";
        let program = assemble(src).unwrap();
        let mut plain = Cpu::new(64);
        plain.run(&program, &mut NullSink, FUEL).unwrap();

        let index = RegionIndex::new(&program, 16);
        let mut table = RegionTable::new(RegionConfig::new(64)).unwrap();
        let mut memoized = Cpu::new(64);
        let (exit, stats) =
            run_with_regions(&mut memoized, &program, &index, &mut table, &model(), &mut NullSink, FUEL)
                .unwrap();
        assert_eq!(exit, ExitReason::Halted);
        assert_same_state(&plain, &memoized, "constant loop");
        // The stf splits the arithmetic from the induction update, so the
        // arithmetic region's live-ins (f1, f2) never change: 99 of 100
        // iterations hit and bypass all three fp operations.
        assert!(stats.hits >= 99, "expected ≥99 hits, got {}", stats.hits);
        assert!(stats.bypassed >= 99 * 3);
        assert!(stats.credited_cycles > stats.charged_cycles);
        assert!(stats.speedup(10_000_000) > 1.0);
        assert_eq!(table.stats().table_hits, stats.hits);
    }

    #[test]
    fn out_of_fuel_matches_plain_execution_exactly() {
        let src = "li r1, 0\n loop: addi r2, r1, 1\n addi r1, r2, 0\n jmp loop";
        let program = assemble(src).unwrap();
        for fuel in 1..40 {
            let mut plain = Cpu::new(64);
            let plain_err = plain.run(&program, &mut NullSink, fuel).unwrap_err();
            assert_eq!(plain_err, IsaError::OutOfFuel);

            let index = RegionIndex::new(&program, 16);
            let mut table = RegionTable::new(RegionConfig::new(16)).unwrap();
            let mut memoized = Cpu::new(64);
            let err = run_with_regions(
                &mut memoized, &program, &index, &mut table, &model(), &mut NullSink, fuel,
            )
            .unwrap_err();
            assert_eq!(err, IsaError::OutOfFuel);
            assert_same_state(&plain, &memoized, &format!("fuel {fuel}"));
        }
    }

    /// Satellite property test: random straight-line pure programs end in
    /// a register file bit-identical to plain `Cpu::run`, across
    /// associativities and protection policies — including verify-on-hit
    /// and parity under injected faults, where a detected fault must fall
    /// back to execution and never corrupt state.
    #[test]
    fn random_pure_programs_are_transparent_across_policies() {
        for seed in 0..24 {
            let mut rng = SplitMix64::new(seed).split("region-property");
            let src = random_pure_program(&mut rng);
            let program = assemble(&src).unwrap();
            let mut plain = Cpu::new(64);
            plain.run(&program, &mut NullSink, FUEL).unwrap();

            let protections = [
                (Protection::None, FaultConfig::disabled()),
                (Protection::ParityDetect, FaultConfig::disabled()),
                (Protection::EccSecDed, FaultConfig::disabled()),
                (Protection::VerifyOnHit { verify_cycles: 4 }, FaultConfig::disabled()),
                // Under injected faults only detecting policies keep the
                // transparency guarantee.
                (Protection::ParityDetect, FaultConfig::single_bit(seed ^ 0xab, 0.5)),
                (Protection::EccSecDed, FaultConfig::single_bit(seed ^ 0xcd, 0.5)),
                (Protection::VerifyOnHit { verify_cycles: 4 }, FaultConfig::single_bit(seed ^ 0xef, 0.5)),
            ];
            for assoc in [Assoc::DirectMapped, Assoc::Ways(2), Assoc::Full] {
                for (protection, faults) in protections {
                    let mut table = RegionTable::new(
                        RegionConfig::new(16).assoc(assoc).protection(protection).faults(faults),
                    )
                    .unwrap();
                    let context = format!("seed {seed} assoc {assoc:?} {protection}");
                    // Two passes through the same table: the first fills
                    // it, the second exercises the hit/bypass path.
                    for pass in 0..2 {
                        let index = RegionIndex::new(&program, 8);
                        let mut memoized = Cpu::new(64);
                        let (exit, _) = run_with_regions(
                            &mut memoized, &program, &index, &mut table, &model(),
                            &mut NullSink, FUEL,
                        )
                        .unwrap();
                        assert_eq!(exit, ExitReason::Halted);
                        assert_same_state(&plain, &memoized, &format!("{context} pass {pass}"));
                    }
                }
            }
        }
    }

    fn random_pure_program(rng: &mut SplitMix64) -> String {
        let mut src = String::new();
        // Seed a few registers so the chains have varied inputs.
        for r in 1..6 {
            src.push_str(&format!("li r{r}, {}\n", rng.next_below(2000) as i64 - 1000));
        }
        for f in 1..6 {
            src.push_str(&format!("lif f{f}, {:?}\n", rng.next_f64() * 8.0 - 4.0));
        }
        let len = 8 + rng.next_below(32);
        for _ in 0..len {
            let d = 1 + rng.next_below(7);
            let a = 1 + rng.next_below(7);
            let b = 1 + rng.next_below(7);
            let line = match rng.next_below(10) {
                0 => format!("add r{d}, r{a}, r{b}"),
                1 => format!("sub r{d}, r{a}, r{b}"),
                2 => format!("mul r{d}, r{a}, r{b}"),
                3 => format!("xor r{d}, r{a}, r{b}"),
                4 => format!("fadd f{d}, f{a}, f{b}"),
                5 => format!("fsub f{d}, f{a}, f{b}"),
                6 => format!("fmul f{d}, f{a}, f{b}"),
                7 => format!("fdiv f{d}, f{a}, f{b}"),
                8 => format!("fsqrt f{d}, f{a}"),
                _ => format!("itof f{d}, r{a}"),
            };
            src.push_str(&line);
            src.push('\n');
        }
        src.push_str("halt");
        src
    }
}

//! Static region detection: find pure, short, single-entry/single-exit
//! instruction sequences and compute their exact live-in/live-out sets.

use memo_isa::{Inst, Program};
use memo_sim::CpuModel;
use memo_table::OpKind;

/// Shortest sequence worth a table probe. A one-instruction region is
/// never profitable: the probe itself costs a cycle, and the per-unit
/// memo tables already cover single operations.
pub const MIN_REGION_LEN: usize = 2;

/// Which latency bucket a pure instruction charges.
#[derive(Clone, Copy)]
enum Unit {
    IntAlu,
    IntMul,
    FpAdd,
    FpMul,
    FpDiv,
    FpSqrt,
}

/// Register effect of one pure instruction: which registers it reads and
/// writes (as 32-bit masks over the int and fp files) and what it costs.
struct Effect {
    reads_int: u32,
    reads_fp: u32,
    writes_int: u32,
    writes_fp: u32,
    unit: Unit,
}

fn imask(r: u8) -> u32 {
    // r0 is hardwired zero: reading it is a constant, writing it a no-op,
    // so it never appears in a live set.
    if r == 0 {
        0
    } else {
        1 << r
    }
}

fn fmask(f: u8) -> u32 {
    1 << f
}

/// Classify `inst` if it is pure — computes only on registers, cannot
/// fault, touches no memory, and transfers control to the next pc.
/// Excluded on purpose: `div` (divide-by-zero faults mid-region), all
/// loads/stores (memory is not in the key), branches/`jmp`/`halt`
/// (regions are single-exit fall-through), and `nop` (bypassing it would
/// change the annulled-event stream for no payoff).
fn effect(inst: Inst) -> Option<Effect> {
    use Unit::{FpAdd, FpDiv, FpMul, FpSqrt, IntAlu, IntMul};
    let e = |ri, rf, wi, wf, unit| Effect {
        reads_int: ri,
        reads_fp: rf,
        writes_int: wi,
        writes_fp: wf,
        unit,
    };
    Some(match inst {
        Inst::Add(d, a, b)
        | Inst::Sub(d, a, b)
        | Inst::And(d, a, b)
        | Inst::Or(d, a, b)
        | Inst::Xor(d, a, b)
        | Inst::Sll(d, a, b)
        | Inst::Srl(d, a, b) => e(imask(a) | imask(b), 0, imask(d), 0, IntAlu),
        Inst::Addi(d, a, _) | Inst::Subi(d, a, _) => e(imask(a), 0, imask(d), 0, IntAlu),
        Inst::Li(d, _) => e(0, 0, imask(d), 0, IntAlu),
        Inst::Mul(d, a, b) => e(imask(a) | imask(b), 0, imask(d), 0, IntMul),
        Inst::Lif(d, _) => e(0, 0, 0, fmask(d), IntAlu),
        Inst::Fadd(d, a, b) | Inst::Fsub(d, a, b) => {
            e(0, fmask(a) | fmask(b), 0, fmask(d), FpAdd)
        }
        Inst::Fmul(d, a, b) => e(0, fmask(a) | fmask(b), 0, fmask(d), FpMul),
        Inst::Fdiv(d, a, b) => e(0, fmask(a) | fmask(b), 0, fmask(d), FpDiv),
        Inst::Fsqrt(d, a) => e(0, fmask(a), 0, fmask(d), FpSqrt),
        Inst::Fmov(d, a) => e(0, fmask(a), 0, fmask(d), IntAlu),
        Inst::Itof(d, a) => e(imask(a), 0, 0, fmask(d), IntAlu),
        Inst::Ftoi(d, a) => e(0, fmask(a), imask(d), 0, IntAlu),
        _ => return None,
    })
}

fn branch_target(inst: Inst) -> Option<usize> {
    match inst {
        Inst::Beq(_, _, t)
        | Inst::Bne(_, _, t)
        | Inst::Blt(_, _, t)
        | Inst::Bgt(_, _, t)
        | Inst::Fblt(_, _, t)
        | Inst::Jmp(t) => Some(t),
        _ => None,
    }
}

/// How many cycles a region's body costs, per latency bucket, on the
/// baseline (non-memoized) machine. This is what a table hit credits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionCost {
    /// Single-cycle-class integer/move/convert operations.
    pub int_alu: u32,
    /// Integer multiplies.
    pub int_mul: u32,
    /// FP adds and subtracts.
    pub fp_add: u32,
    /// FP multiplies.
    pub fp_mul: u32,
    /// FP divides.
    pub fp_div: u32,
    /// FP square roots.
    pub fp_sqrt: u32,
}

impl RegionCost {
    /// Total baseline cycles under `cpu`'s latencies.
    #[must_use]
    pub fn cycles(&self, cpu: &CpuModel) -> u64 {
        u64::from(self.int_alu) * u64::from(cpu.int_alu)
            + u64::from(self.int_mul) * u64::from(cpu.latency(OpKind::IntMul))
            + u64::from(self.fp_add) * u64::from(cpu.fp_add)
            + u64::from(self.fp_mul) * u64::from(cpu.latency(OpKind::FpMul))
            + u64::from(self.fp_div) * u64::from(cpu.latency(OpKind::FpDiv))
            + u64::from(self.fp_sqrt) * u64::from(cpu.latency(OpKind::FpSqrt))
    }
}

/// A detected pure region: `len` instructions starting at `entry_pc`,
/// with exact live-in/live-out register sets (bit `r` of a mask is
/// register `r`; `r0` never appears).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    entry_pc: usize,
    len: usize,
    live_in_int: u32,
    live_in_fp: u32,
    live_out_int: u32,
    live_out_fp: u32,
    cost: RegionCost,
}

impl Region {
    /// First instruction index of the region.
    #[must_use]
    pub fn entry_pc(&self) -> usize {
        self.entry_pc
    }

    /// Number of instructions in the region body.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Regions are never empty ([`MIN_REGION_LEN`] ≥ 2).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Where control resumes after the region (single exit: fall-through).
    #[must_use]
    pub fn next_pc(&self) -> usize {
        self.entry_pc + self.len
    }

    /// Integer registers read before being written inside the region.
    #[must_use]
    pub fn live_in_int(&self) -> u32 {
        self.live_in_int
    }

    /// FP registers read before being written inside the region.
    #[must_use]
    pub fn live_in_fp(&self) -> u32 {
        self.live_in_fp
    }

    /// Integer registers the region writes.
    #[must_use]
    pub fn live_out_int(&self) -> u32 {
        self.live_out_int
    }

    /// FP registers the region writes.
    #[must_use]
    pub fn live_out_fp(&self) -> u32 {
        self.live_out_fp
    }

    /// Number of live-in values (the table key width).
    #[must_use]
    pub fn live_in_len(&self) -> usize {
        (self.live_in_int.count_ones() + self.live_in_fp.count_ones()) as usize
    }

    /// Number of live-out values (the table payload width).
    #[must_use]
    pub fn live_out_len(&self) -> usize {
        (self.live_out_int.count_ones() + self.live_out_fp.count_ones()) as usize
    }

    /// Baseline cost of the body (what a hit credits).
    #[must_use]
    pub fn cost(&self) -> RegionCost {
        self.cost
    }
}

fn build(insts: &[Inst], start: usize, end: usize) -> Region {
    let mut r = Region {
        entry_pc: start,
        len: end - start,
        live_in_int: 0,
        live_in_fp: 0,
        live_out_int: 0,
        live_out_fp: 0,
        cost: RegionCost::default(),
    };
    for &inst in &insts[start..end] {
        let e = effect(inst).expect("region bodies are pure by construction");
        // Live-in: read before (re)defined within the region.
        r.live_in_int |= e.reads_int & !r.live_out_int;
        r.live_in_fp |= e.reads_fp & !r.live_out_fp;
        r.live_out_int |= e.writes_int;
        r.live_out_fp |= e.writes_fp;
        match e.unit {
            Unit::IntAlu => r.cost.int_alu += 1,
            Unit::IntMul => r.cost.int_mul += 1,
            Unit::FpAdd => r.cost.fp_add += 1,
            Unit::FpMul => r.cost.fp_mul += 1,
            Unit::FpDiv => r.cost.fp_div += 1,
            Unit::FpSqrt => r.cost.fp_sqrt += 1,
        }
    }
    r
}

/// Find all memoizable regions of `program`: maximal runs of pure
/// instructions, split wherever a branch lands (so no region has a side
/// entrance past its first instruction) and chunked at `max_len`
/// (clamped up to [`MIN_REGION_LEN`]). Runs shorter than
/// [`MIN_REGION_LEN`] are discarded — the per-unit tables already cover
/// single operations.
#[must_use]
pub fn detect(program: &Program, max_len: usize) -> Vec<Region> {
    let insts = program.instructions();
    let max_len = max_len.max(MIN_REGION_LEN);
    let mut is_target = vec![false; insts.len() + 1];
    for &inst in insts {
        if let Some(t) = branch_target(inst) {
            if t < is_target.len() {
                is_target[t] = true;
            }
        }
    }
    let mut regions = Vec::new();
    let mut pc = 0;
    while pc < insts.len() {
        if effect(insts[pc]).is_none() {
            pc += 1;
            continue;
        }
        let mut end = pc + 1;
        while end < insts.len()
            && end - pc < max_len
            && !is_target[end]
            && effect(insts[end]).is_some()
        {
            end += 1;
        }
        if end - pc >= MIN_REGION_LEN {
            regions.push(build(insts, pc, end));
        }
        pc = end;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use memo_isa::assemble;
    use memo_sim::CpuModel;

    #[test]
    fn straight_line_program_is_one_region_with_exact_live_sets() {
        // f3 = (f1 + f2) * f1; r2 = r1 + 5.
        let p = assemble(
            "fadd f3, f1, f2\n fmul f3, f3, f1\n addi r2, r1, 5\n halt",
        )
        .unwrap();
        let regions = detect(&p, 16);
        assert_eq!(regions.len(), 1);
        let r = regions[0];
        assert_eq!((r.entry_pc(), r.len(), r.next_pc()), (0, 3, 3));
        assert_eq!(r.live_in_fp(), (1 << 1) | (1 << 2));
        assert_eq!(r.live_out_fp(), 1 << 3);
        assert_eq!(r.live_in_int(), 1 << 1);
        assert_eq!(r.live_out_int(), 1 << 2);
        assert_eq!((r.live_in_len(), r.live_out_len()), (3, 2));
        assert_eq!(r.cost(), RegionCost { int_alu: 1, fp_add: 1, fp_mul: 1, ..RegionCost::default() });
        let m = CpuModel::paper_slow();
        assert_eq!(
            r.cost().cycles(&m),
            u64::from(m.int_alu) + u64::from(m.fp_add) + u64::from(m.fp_mul)
        );
    }

    #[test]
    fn impure_instructions_and_branch_targets_split_regions() {
        // The loop body is split by the ldf/stf; the branch target starts
        // a fresh region rather than extending one across the label.
        let p = assemble(
            "li r1, 0\n li r2, 8\n lif f8, 2.0\n \
             loop: ldf f1, r1, 0\n fmul f2, f1, f8\n fadd f2, f2, f8\n stf f2, r1, 0\n \
             addi r1, r1, 8\n subi r3, r2, 1\n blt r1, r2, loop\n halt",
        )
        .unwrap();
        let regions = detect(&p, 16);
        let spans: Vec<(usize, usize)> = regions.iter().map(|r| (r.entry_pc(), r.len())).collect();
        // Preamble [0,3), arithmetic [4,6), induction updates [7,9).
        assert_eq!(spans, vec![(0, 3), (4, 2), (7, 2)]);
        // No region contains a branch-target past its entry.
        for r in &regions {
            assert!(r.entry_pc() == 3 || (r.entry_pc()..r.next_pc()).all(|pc| pc == r.entry_pc() || pc != 3));
        }
    }

    #[test]
    fn max_len_chunks_long_runs_and_min_len_drops_singletons() {
        let long: String =
            (0..10).map(|i| format!("addi r{}, r1, {i}\n", 2 + (i % 4))).collect::<String>() + "halt";
        let p = assemble(&long).unwrap();
        let regions = detect(&p, 4);
        let lens: Vec<usize> = regions.iter().map(Region::len).collect();
        assert_eq!(lens, vec![4, 4, 2]);

        // A lone pure instruction between impure ones is not a region.
        let p = assemble("ldf f1, r1, 0\n fsqrt f2, f1\n stf f2, r1, 0\n halt").unwrap();
        assert!(detect(&p, 16).is_empty());
    }

    #[test]
    fn r0_and_div_never_enter_regions() {
        // div can fault; r0 reads are constants, writes are no-ops.
        let p = assemble("add r0, r1, r0\n addi r2, r0, 7\n div r3, r2, r1\n halt").unwrap();
        let regions = detect(&p, 16);
        assert_eq!(regions.len(), 1);
        let r = regions[0];
        assert_eq!((r.entry_pc(), r.len()), (0, 2));
        assert_eq!(r.live_in_int(), 1 << 1);
        assert_eq!(r.live_out_int(), 1 << 2);
    }
}

//! The paper's Figure 2 on your own terms: sweep image entropy with the
//! synthetic generators, run one application, and fit the hit-ratio/
//! entropy line with the Levenberg–Marquardt solver.
//!
//! ```sh
//! cargo run --release --example entropy_study
//! ```

use memo_repro::fit::fit_line;
use memo_repro::imaging::rng::SplitMix64;
use memo_repro::imaging::{entropy, synth};
use memo_repro::table::OpKind;
use memo_repro::workloads::mm;
use memo_repro::workloads::suite::{measure_mm_app, SweepSpec};

fn main() {
    let app = mm::find("vspatial").expect("registered application");
    let mut rng = SplitMix64::new(42);

    println!("vspatial fdiv hit ratio vs image entropy (64x64 synthetic inputs):\n");
    println!("{:>10} {:>12} {:>10}", "levels", "entropy", "fdiv hit");

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for levels in [2u64, 4, 8, 16, 32, 64, 128, 256] {
        let image = synth::quantize(&synth::plasma(64, 64, 0.85, &mut rng), levels);
        let e = entropy::windowed_entropy(&image, 8).expect("byte image");
        let hits = measure_mm_app(&app, &[&image], SweepSpec::paper_default());
        let hit = hits.get(OpKind::FpDiv).expect("vspatial divides");
        println!("{levels:>10} {e:>12.3} {hit:>10.3}");
        xs.push(e);
        ys.push(hit);
    }

    let line = fit_line(&xs, &ys).expect("enough points");
    println!(
        "\nMarquardt-Levenberg fit: hit ≈ {:.3} {} {:.4}·entropy",
        line.intercept,
        if line.slope < 0.0 { "−" } else { "+" },
        line.slope.abs()
    );
    println!(
        "≈ {:.1}% hit-ratio change per entropy bit (the paper reports about −5%)",
        100.0 * line.slope
    );
}

//! A multi-stage image-processing pipeline under memoization: smooth →
//! edge-detect → contrast-stretch, measured end-to-end on two processor
//! profiles, with the intermediate images written out as PGM files.
//!
//! ```sh
//! cargo run --release --example image_pipeline [output-dir]
//! ```

use std::path::PathBuf;

use memo_repro::imaging::{io, synth};
use memo_repro::sim::{CpuModel, CycleAccountant, MemoBank, MemoryHierarchy};
use memo_repro::workloads::mm;

fn main() {
    let out_dir: PathBuf =
        std::env::args().nth(1).map_or_else(std::env::temp_dir, PathBuf::from);

    let corpus = synth::corpus(4);
    let input = corpus.iter().find(|c| c.name == "airport1").expect("corpus image");
    println!(
        "pipeline input: {} ({}x{})",
        input.name,
        input.image.width(),
        input.image.height()
    );

    let stages = ["vgauss", "vgef", "venhpatch"];
    for cpu in [CpuModel::paper_fast(), CpuModel::paper_slow()] {
        let mut accountant = CycleAccountant::new(
            cpu,
            MemoryHierarchy::typical_1997(),
            MemoBank::paper_default(),
        );

        let mut image = input.image.clone();
        for stage in stages {
            let app = mm::find(stage).expect("registered application");
            image = app.run(&mut accountant, &image).normalized_to_byte();
            let path = out_dir.join(format!("{stage}.pgm"));
            match io::save_pnm(&image, &path) {
                Ok(()) => println!("  {} -> {}", stage, path.display()),
                Err(e) => println!("  {stage} (image not saved: {e})"),
            }
        }

        let report = accountant.report();
        println!(
            "{}: {} -> {} cycles, speedup {:.3}x (L1 hit {:.1}%)\n",
            cpu,
            report.baseline().total(),
            report.memoized().total(),
            report.speedup_measured(),
            100.0 * report.l1_stats().hit_ratio(),
        );
    }
}

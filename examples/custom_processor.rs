//! Run an assembly program on the miniature ISA under every Table 1
//! processor model, with and without MEMO-TABLEs — the paper's
//! measurement loop on a program you can read in ten lines.
//!
//! ```sh
//! cargo run --release --example custom_processor
//! ```

use memo_repro::isa::{assemble, programs, Cpu};
use memo_repro::sim::{CpuModel, CycleAccountant, MemoBank, MemoryHierarchy};

fn main() {
    // Newton square roots over a vector of byte-valued pixels: division
    // heavy and highly repetitive — ideal memo-table food.
    let n = 512;
    let program = assemble(&programs::newton_sqrt(n)).expect("program assembles");

    println!("newton_sqrt over {n} byte-valued doubles, per Table 1 processor:\n");
    println!(
        "{:<14} {:>14} {:>14} {:>9} {:>9}",
        "processor", "baseline cyc", "memoized cyc", "speedup", "fdiv hit"
    );

    for cpu in CpuModel::table1_models() {
        let mut machine = Cpu::new(64 * 1024);
        for i in 0..n {
            // A low-entropy scanline (6 grey levels, like a flat image
            // region): only 6 distinct Newton chains — they all fit.
            machine.write_f64((i * 8) as u64, f64::from((i % 6) as u32 * 40 + 8)).unwrap();
        }
        let mut accountant = CycleAccountant::new(
            cpu,
            MemoryHierarchy::typical_1997(),
            MemoBank::paper_default(),
        );
        machine.run(&program, &mut accountant, 10_000_000).expect("program halts");

        let report = accountant.report();
        println!(
            "{:<14} {:>14} {:>14} {:>8.3}x {:>9.2}",
            report.cpu().name,
            report.baseline().total(),
            report.memoized().total(),
            report.speedup_measured(),
            report.hit_ratio(memo_repro::table::OpKind::FpDiv),
        );
    }

    println!("\n(the slower the divider, the more a MEMO-TABLE helps — Table 11's point)");
}

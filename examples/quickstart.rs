//! Quickstart: attach MEMO-TABLEs to the multipliers and divider, run a
//! real image-processing workload, and see how many multi-cycle
//! operations a 32-entry table eliminates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use memo_repro::imaging::synth;
use memo_repro::sim::{CpuModel, CycleAccountant, MemoBank, MemoryHierarchy};
use memo_repro::table::OpKind;
use memo_repro::workloads::mm;

fn main() {
    // 1. A test image: the "mandrill" stand-in at quarter scale.
    let corpus = synth::corpus(4);
    let image = &corpus[0].image;
    println!("input: {} ({}x{})", corpus[0].name, image.width(), image.height());

    // 2. A late-90s processor (Table 1 profile) with the paper's default
    //    32-entry, 4-way MEMO-TABLEs next to imul, fmul and fdiv.
    let mut accountant = CycleAccountant::new(
        CpuModel::paper_slow(),
        MemoryHierarchy::typical_1997(),
        MemoBank::paper_default(),
    );

    // 3. Run vgauss — Gaussian-distribution rendering — through it.
    let app = mm::find("vgauss").expect("registered application");
    let _output = app.run(&mut accountant, image);

    // 4. Results.
    let report = accountant.report();
    println!("\nper-unit hit ratios (32-entry, 4-way):");
    for kind in [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv] {
        let ops = report.mix().total();
        let _ = ops;
        println!(
            "  {:5}  hit ratio {:.2}   fraction of baseline cycles {:.3}",
            kind.label(),
            report.hit_ratio(kind),
            report.fraction_enhanced(kind),
        );
    }
    println!("\nbaseline cycles : {:>12}", report.baseline().total());
    println!("memoized cycles : {:>12}", report.memoized().total());
    println!("speedup         : {:>12.3}x", report.speedup_measured());
}

//! # memo-repro
//!
//! A complete reproduction of *"Accelerating Multi-Media Processing by
//! Implementing Memoing in Multiplication and Division Units"* (Citron,
//! Feitelson, Rudolph — ASPLOS 1998) as a Rust workspace.
//!
//! This facade crate re-exports the workspace members:
//!
//! | crate | contents |
//! |---|---|
//! | [`table`] (memo-table) | the MEMO-TABLE itself: finite/infinite/shared tables, policies, memoized units |
//! | [`sim`] (memo-sim) | CPU latency models, two-level caches, event streams, cycle accounting, Amdahl math |
//! | [`isa`] (memo-isa) | SPARC-flavoured mini ISA + assembler + tracing interpreter (the Shade substitute) |
//! | [`imaging`] (memo-imaging) | images, entropy analysis, synthetic corpus, PNM IO |
//! | [`workloads`] (memo-workloads) | 18 multi-media + 19 scientific instrumented kernels |
//! | [`fit`] (memo-fit) | Levenberg–Marquardt least squares (Figure 2's best-fit line) |
//! | [`experiments`] (memo-experiments) | regenerates every table and figure of the paper |
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ```
//! use memo_repro::table::{MemoConfig, MemoTable, Memoizer, Op, Outcome};
//!
//! let mut fdiv_table = MemoTable::new(MemoConfig::paper_default());
//! assert_eq!(fdiv_table.execute(Op::FpDiv(1.0, 3.0)).outcome, Outcome::Miss);
//! assert_eq!(fdiv_table.execute(Op::FpDiv(1.0, 3.0)).outcome, Outcome::Hit);
//! ```

#![warn(missing_docs)]

pub use memo_experiments as experiments;
pub use memo_fit as fit;
pub use memo_imaging as imaging;
pub use memo_isa as isa;
pub use memo_serve as serve;
pub use memo_sim as sim;
pub use memo_table as table;
pub use memo_workloads as workloads;

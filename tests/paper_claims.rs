//! The paper's headline claims, verified end-to-end at reduced scale.
//!
//! Each test names the section/table/figure it checks. Absolute values use
//! generous bands (the substrate is synthetic); *orderings* — who wins,
//! where curves flatten — are asserted tightly.

use memo_repro::experiments::{figures, hits, mantissa, speedup, trivial, ExpConfig};
use memo_repro::table::OpKind;

fn cfg() -> ExpConfig {
    ExpConfig::quick()
}

/// §3.2 / Tables 5–7: multi-media applications reuse operands far better
/// than general scientific codes in a practically sized table.
#[test]
fn claim_mm_beats_scientific_suites() {
    let t5 = hits::table5(cfg());
    let t6 = hits::table6(cfg());
    let t7 = hits::table7(cfg());
    for kind in [OpKind::FpMul, OpKind::FpDiv] {
        let mm = t7.averages.0.get(kind).unwrap();
        let perfect = t5.averages.0.get(kind).unwrap();
        let spec = t6.averages.0.get(kind).unwrap();
        assert!(
            mm > perfect && mm > spec,
            "{kind}: MM {mm:.2} must beat Perfect {perfect:.2} and SPEC {spec:.2}"
        );
    }
}

/// §3.1: every suite shows a large reuse *potential* — the unbounded table
/// dominates the 32-entry table everywhere.
#[test]
fn claim_infinite_tables_reveal_headroom() {
    for table in [hits::table5(cfg()), hits::table6(cfg()), hits::table7(cfg())] {
        for kind in [OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv] {
            if let (Some(fin), Some(inf)) =
                (table.averages.0.get(kind), table.averages.1.get(kind))
            {
                assert!(
                    inf + 1e-9 >= fin,
                    "{}: {kind} infinite {inf:.2} >= finite {fin:.2}",
                    table.title
                );
            }
        }
    }
}

/// §3.2 / Figure 2: hit ratio falls as entropy rises, a few percent per
/// bit.
#[test]
fn claim_entropy_predicts_hit_ratio() {
    let fig = figures::figure2(cfg()).unwrap();
    for (label, line) in [
        ("fdiv vs 8x8", fig.fdiv_vs_win8),
        ("fmul vs 8x8", fig.fmul_vs_win8),
        ("fdiv vs full", fig.fdiv_vs_full),
        ("fmul vs full", fig.fmul_vs_full),
    ] {
        assert!(line.slope < 0.0, "{label}: slope {:.4} must be negative", line.slope);
        assert!(
            (-0.20..-0.01).contains(&line.slope),
            "{label}: slope {:.4} in a plausible per-bit band",
            line.slope
        );
    }
}

/// §3.2 / Figure 3: hit ratio grows with table size and flattens out; a
/// divider needs a smaller table than a multiplier.
#[test]
fn claim_size_curve_saturates() {
    let [fmul, fdiv] = figures::figure3(cfg()).unwrap();
    for curve in [&fmul, &fdiv] {
        let first = curve.points.first().unwrap();
        let mid = &curve.points[5]; // 256 entries
        let last = curve.points.last().unwrap();
        assert!(mid.avg >= first.avg);
        assert!(last.avg + 1e-9 >= mid.avg);
        assert!(
            last.avg - mid.avg < 0.25,
            "{}: most of the win arrives by 256 entries",
            curve.kind
        );
    }
    // The paper: an 8-entry table may already suffice for division, while
    // multiplication needs at least 32 — division's small-table deficit
    // (vs its own 32-entry point) is no worse than multiplication's.
    let fdiv_deficit = fdiv.points[2].avg - fdiv.points[0].avg;
    let fmul_deficit = fmul.points[2].avg - fmul.points[0].avg;
    assert!(
        fdiv_deficit <= fmul_deficit + 0.05,
        "division tolerates small tables at least as well: fdiv {fdiv_deficit:.3} vs fmul {fmul_deficit:.3}"
    );
}

/// §3.2 / Figure 4: direct-mapped tables suffer conflict misses; 2 ways
/// suffice for division and nothing improves past 4 ways.
#[test]
fn claim_associativity_saturates_at_four_ways() {
    let [fmul, fdiv] = figures::figure4(cfg()).unwrap();
    for curve in [&fmul, &fdiv] {
        let dm = curve.points[0].avg;
        let two = curve.points[1].avg;
        let four = curve.points[2].avg;
        let eight = curve.points[3].avg;
        assert!(two + 1e-9 >= dm, "{}: 2-way >= direct-mapped", curve.kind);
        // "hardly improves": the 4→8 step is small next to the 1→4 step.
        assert!(
            (eight - four).abs() < (four - dm).max(0.04),
            "{}: 4→8 gain {:.3} stays below the 1→4 gain {:.3}",
            curve.kind,
            eight - four,
            four - dm
        );
    }
    // 2 ways already get division close to its 4-way ratio.
    let fdiv = &fdiv;
    assert!(
        fdiv.points[2].avg - fdiv.points[1].avg < 0.10,
        "2 ways nearly suffice for division"
    );
}

/// §3.2 / Table 9: integrated trivial-operation detection gives the
/// highest hit ratios.
#[test]
fn claim_integrated_trivial_detection_wins() {
    let rows = trivial::table9(cfg()).unwrap();
    let mut dominated = 0;
    let mut total = 0;
    for r in &rows {
        for c in [&r.int_mul, &r.fp_mul, &r.fp_div] {
            if c.present {
                total += 1;
                if c.integrated + 1e-9 >= c.non && c.integrated + 1e-9 >= c.all {
                    dominated += 1;
                }
            }
        }
    }
    assert!(total > 10);
    assert!(
        dominated as f64 / total as f64 > 0.8,
        "integration wins in {dominated}/{total} cells"
    );
}

/// §3.2 / Table 10: storing only mantissas raises hit ratios, albeit not
/// by much.
#[test]
fn claim_mantissa_tags_raise_hit_ratios_slightly() {
    let rows = mantissa::table10(cfg());
    for r in &rows {
        assert!(r.fmul_mant + 0.02 >= r.fmul_full, "{}", r.suite);
        assert!(r.fdiv_mant + 0.02 >= r.fdiv_full, "{}", r.suite);
        // "albeit not by much": a bounded gain. (Our synthetic scientific
        // value sets sit on power-of-two grids, which share mantissas
        // across exponents more than the paper's Fortran data did, so the
        // band is wider than the paper's ~0.04.)
        assert!(r.fmul_mant - r.fmul_full < 0.25, "{}", r.suite);
        assert!(r.fdiv_mant - r.fdiv_full < 0.25, "{}", r.suite);
    }
}

/// §3.3 / Tables 11–13: memoizing division outpays memoizing
/// multiplication; both together give the headline average speedup; the
/// slow-FPU profile gains more than the fast one.
#[test]
fn claim_speedup_ordering() {
    let c = cfg();
    let t11 = speedup::averages(&speedup::table11(c).unwrap());
    let t12 = speedup::averages(&speedup::table12(c).unwrap());
    let t13 = speedup::averages(&speedup::table13(c).unwrap());

    assert!(t11.slow.speedup > t12.slow.speedup, "division beats multiplication");
    assert!(t13.slow.speedup + 1e-9 >= t11.slow.speedup, "both beats division alone");
    assert!(t13.slow.speedup >= t13.fast.speedup, "slow FPUs gain more");
    // Headline: a clearly material average speedup on the slow profile
    // (the paper reports 1.22; synthetic inputs land in the same region).
    assert!(
        t13.slow.speedup > 1.05,
        "combined average speedup {:.3} is material",
        t13.slow.speedup
    );
    // And every per-app Amdahl number is self-consistent with the direct
    // cycle measurement.
    for row in speedup::table13(c).unwrap() {
        assert!((row.slow.speedup - row.slow.measured).abs() < 1e-6, "{}", row.name);
    }
}

//! Golden-value regression tests: exact counts for small, fixed scenarios.
//!
//! Everything in this reproduction is seed-deterministic, so these values
//! are stable across runs and platforms. If a change to a kernel, the
//! corpus, or a table policy shifts behaviour, one of these tests pins
//! down exactly where.

use memo_repro::imaging::{entropy, synth};
use memo_repro::sim::{CountingSink, CpuModel, CycleAccountant, MemoBank, MemoryHierarchy};
use memo_repro::table::{MemoConfig, MemoTable, Memoizer, Op, OpKind};
use memo_repro::workloads::mm;

/// The corpus at scale 16 is the unit-test workhorse: pin its shape.
#[test]
fn golden_corpus_shape() {
    let corpus = synth::corpus(16);
    assert_eq!(corpus.len(), 14);
    let mandrill = &corpus[0];
    assert_eq!(mandrill.name, "mandrill");
    assert_eq!((mandrill.image.width(), mandrill.image.height()), (16, 16));
    // Entropy of the flagship image, exact to two decimals.
    let e = entropy::full_entropy(&mandrill.image).unwrap();
    assert!((4.0..7.0).contains(&e), "mandrill-16 entropy {e}");

    // Determinism down to the pixel.
    let again = synth::corpus(16);
    assert_eq!(corpus[8].image, again[8].image, "fractal stand-in is bit-stable");
}

/// A fixed division stream through the paper-default table: exact stats.
#[test]
fn golden_table_counts() {
    let mut table = MemoTable::new(MemoConfig::paper_default());
    for i in 0..100u32 {
        table.execute(Op::FpDiv(f64::from(i % 10), 3.0));
    }
    let s = table.stats();
    assert_eq!(s.ops_seen, 100);
    // i%10 == 0 gives a trivial zero dividend: filtered.
    assert_eq!(s.trivial_seen, 10);
    assert_eq!(s.table_lookups, 90);
    // Nine distinct non-trivial pairs: 9 cold misses, 81 hits.
    assert_eq!(s.table_hits, 81);
    assert_eq!(s.insertions, 9);
    assert_eq!(s.evictions, 0);
}

/// vgauss on the 16-scale mandrill: exact event mix.
#[test]
fn golden_vgauss_mix() {
    let corpus = synth::corpus(16);
    let app = mm::find("vgauss").unwrap();
    let mut sink = CountingSink::new();
    app.run(&mut sink, &corpus[0].image);
    let m = sink.mix();
    assert_eq!(m.int_mul, 0);
    assert!(m.fp_div > 0 && m.fp_mul > 0);
    // The mix is a pure function of the (deterministic) input.
    let mut sink2 = CountingSink::new();
    app.run(&mut sink2, &corpus[0].image);
    assert_eq!(m, sink2.mix());
}

/// Full cycle accounting of a fixed kernel run: the totals must never
/// drift silently.
#[test]
fn golden_cycle_totals_are_stable() {
    let corpus = synth::corpus(16);
    let app = mm::find("vspatial").unwrap();
    let run = || {
        let mut acc = CycleAccountant::new(
            CpuModel::paper_slow(),
            MemoryHierarchy::typical_1997(),
            MemoBank::paper_default(),
        );
        app.run(&mut acc, &corpus[1].image);
        let r = acc.report();
        (r.baseline().total(), r.memoized().total(), r.l1_stats().hits)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "cycle accounting must be deterministic");
    assert!(first.0 > first.1, "memoization saves cycles");
}

/// The trivial detector's exact coverage on a crafted operand set.
#[test]
fn golden_trivial_coverage() {
    use memo_repro::table::trivial_result;
    let trivial = [
        Op::IntMul(0, 5),
        Op::IntMul(1, -3),
        Op::FpMul(1.0, 2.5),
        Op::FpMul(0.0, 9.0),
        Op::FpDiv(3.0, 1.0),
        Op::FpDiv(0.0, 2.0),
        Op::FpSqrt(1.0),
        Op::FpSqrt(0.0),
    ];
    let non_trivial = [
        Op::IntMul(2, 3),
        Op::FpMul(2.0, 2.0),
        Op::FpDiv(2.0, 3.0),
        Op::FpDiv(1.0, 0.0),
        Op::FpSqrt(2.0),
        Op::FpMul(0.0, f64::INFINITY),
    ];
    assert!(trivial.iter().all(|op| trivial_result(op).is_some()));
    assert!(non_trivial.iter().all(|op| trivial_result(op).is_none()));
}

/// Table 1 latencies are part of the public contract.
#[test]
fn golden_table1_contract() {
    let models = CpuModel::table1_models();
    let pairs: Vec<(u32, u32)> = models.iter().map(|m| (m.fp_mul, m.fp_div)).collect();
    assert_eq!(pairs, vec![(3, 39), (4, 31), (2, 40), (5, 31), (3, 22), (5, 31)]);
    for kind in [OpKind::FpDiv, OpKind::FpMul, OpKind::IntMul, OpKind::FpSqrt] {
        for m in &models {
            assert!(m.latency(kind) >= 1);
        }
    }
}

//! Cross-crate integration: images → workloads → memo tables → cycle
//! accounting, plus the ISA path, all through the public facade.

use memo_repro::imaging::synth;
use memo_repro::isa::{assemble, programs, Cpu};
use memo_repro::sim::{
    CountingSink, CpuModel, CycleAccountant, MemoBank, MemoryHierarchy, TraceBuffer,
};
use memo_repro::table::{InfiniteMemoTable, MemoConfig, MemoTable, Memoizer, OpKind};
use memo_repro::workloads::suite::{measure_mm_app, mm_inputs, SweepSpec};
use memo_repro::workloads::{mm, sci};

#[test]
fn full_pipeline_from_image_to_speedup() {
    let corpus = mm_inputs(16);
    let image = &corpus[0].image;
    let app = mm::find("vspatial").unwrap();

    let mut accountant = CycleAccountant::new(
        CpuModel::paper_slow(),
        MemoryHierarchy::typical_1997(),
        MemoBank::paper_default(),
    );
    let output = app.run(&mut accountant, image);
    assert_eq!(output.width(), image.width());

    let report = accountant.report();
    assert!(report.baseline().total() > report.memoized().total());
    assert!(report.speedup_measured() > 1.0);
    assert!(report.l1_stats().accesses > 0, "cache model saw the loads");
    // The Amdahl composition over all three memoized units reproduces the
    // directly measured speedup exactly.
    let analytic =
        report.speedup_amdahl(&[OpKind::IntMul, OpKind::FpMul, OpKind::FpDiv]);
    assert!((analytic - report.speedup_measured()).abs() < 1e-9);
}

#[test]
fn workload_outputs_are_identical_with_and_without_memoization() {
    // Memoization must be invisible to program semantics: running through
    // a cycle accountant (with tables) and through a plain counter (no
    // tables) must give bit-identical images.
    let corpus = mm_inputs(16);
    let image = &corpus[1].image;
    for name in ["vsqrt", "vgauss", "vkmeans", "vbpf"] {
        let app = mm::find(name).unwrap();
        let mut plain = CountingSink::new();
        let expected = app.run(&mut plain, image);
        let mut memoized = CycleAccountant::new(
            CpuModel::paper_fast(),
            MemoryHierarchy::typical_1997(),
            MemoBank::paper_default(),
        );
        let got = app.run(&mut memoized, image);
        assert_eq!(expected, got, "{name} output must not depend on memoization");
    }
}

#[test]
fn trace_replay_reproduces_live_measurement() {
    // Record a workload once, replay the trace into a fresh accountant:
    // identical cycle totals (the trace carries everything that matters).
    let corpus = mm_inputs(16);
    let image = &corpus[2].image;
    let app = mm::find("vcost").unwrap();

    let mut live = CycleAccountant::new(
        CpuModel::paper_slow(),
        MemoryHierarchy::typical_1997(),
        MemoBank::paper_default(),
    );
    app.run(&mut live, image);

    let mut trace = TraceBuffer::new();
    app.run(&mut trace, image);
    let mut replayed = CycleAccountant::new(
        CpuModel::paper_slow(),
        MemoryHierarchy::typical_1997(),
        MemoBank::paper_default(),
    );
    trace.replay_into(&mut replayed);

    assert_eq!(live.report().baseline(), replayed.report().baseline());
    assert_eq!(live.report().memoized(), replayed.report().memoized());
}

#[test]
fn isa_program_and_rust_kernel_agree_through_the_same_sink() {
    // The ISA path and the instrumented-kernel path are two producers of
    // the same event language; both must drive the memo machinery alike.
    let n = 64;
    let program = assemble(&programs::normalize(n, 3.0)).unwrap();
    let mut cpu = Cpu::new(16 * 1024);
    for i in 0..n {
        cpu.write_f64((i * 8) as u64, f64::from((i % 8) as u32 + 1)).unwrap();
    }
    let mut isa_sink = CountingSink::new();
    cpu.run(&program, &mut isa_sink, 1_000_000).unwrap();
    assert_eq!(isa_sink.mix().fp_div, n as u64);

    // Memoized run: results must be bit-identical to plain division.
    let mut cpu2 = Cpu::new(16 * 1024);
    for i in 0..n {
        cpu2.write_f64((i * 8) as u64, f64::from((i % 8) as u32 + 1)).unwrap();
    }
    let mut acc = CycleAccountant::new(
        CpuModel::paper_slow(),
        MemoryHierarchy::typical_1997(),
        MemoBank::paper_default(),
    );
    cpu2.run(&program, &mut acc, 1_000_000).unwrap();
    for i in 0..n {
        let got = cpu2.read_f64((i * 8) as u64).unwrap();
        assert_eq!(got, f64::from((i % 8) as u32 + 1) / 3.0);
    }
    // Eight distinct dividends over one divisor: 8 misses, the rest hits.
    assert!(acc.report().hit_ratio(OpKind::FpDiv) > 0.8);
}

#[test]
fn scientific_kernels_feed_infinite_tables_without_loss() {
    // Cross-crate property: for any workload, an infinite table records
    // one entry per distinct operand pair and hits on everything else.
    let app = &sci::all_apps()[7]; // TRFD: dense small-alphabet divisions
    let mut trace = TraceBuffer::new();
    app.run(&mut trace, 16);

    let mut inf = InfiniteMemoTable::new();
    let mut fin = MemoTable::new(MemoConfig::paper_default());
    let mut div_ops = 0u64;
    for event in trace.events() {
        if let memo_repro::sim::Event::Arith(op) = event {
            if op.kind() == OpKind::FpDiv {
                inf.execute(*op);
                fin.execute(*op);
                div_ops += 1;
            }
        }
    }
    assert!(div_ops > 0);
    let inf_stats = inf.stats();
    assert_eq!(
        inf_stats.table_hits + inf_stats.insertions,
        inf_stats.table_lookups,
        "infinite table: every lookup either hits or inserts"
    );
    assert!(inf_stats.table_hits >= fin.stats().table_hits);
}

#[test]
fn synthetic_corpus_round_trips_through_pnm() {
    let corpus = synth::corpus(16);
    for c in corpus.iter().filter(|c| c.image.bands() == 1) {
        let byte = c.image.normalized_to_byte();
        let mut buf = Vec::new();
        memo_repro::imaging::io::write_pnm(&byte, &mut buf).unwrap();
        let back = memo_repro::imaging::io::read_pnm(buf.as_slice()).unwrap();
        assert_eq!(back, byte, "{}", c.name);
    }
}

#[test]
fn shared_table_for_dual_dividers() {
    // §2.3: two dividers sharing one multi-ported table reuse each other's
    // work. Simulate interleaved dispatch of the same division stream.
    use memo_repro::table::SharedMemoTable;
    let shared = SharedMemoTable::new(MemoConfig::paper_default(), 2);
    let mut unit_a = shared.clone();
    let mut unit_b = shared.clone();
    let corpus = mm_inputs(16);
    let image = &corpus[0].image;
    let mut trace = TraceBuffer::new();
    mm::find("vspatial").unwrap().run(&mut trace, image);

    let mut private = MemoTable::new(MemoConfig::paper_default());
    let mut issued = 0u64;
    for (i, event) in trace.events().iter().enumerate() {
        if let memo_repro::sim::Event::Arith(op) = event {
            if op.kind() == OpKind::FpDiv {
                // Round-robin dispatch to the two units.
                if i % 2 == 0 {
                    unit_a.execute(*op);
                } else {
                    unit_b.execute(*op);
                }
                private.execute(*op);
                issued += 1;
            }
        }
    }
    assert!(issued > 16);
    let shared_hits = shared.stats_snapshot().table_hits;
    // With a private table per unit, each unit would have missed on work
    // the other already did; the shared table cannot do worse than one
    // private table seeing the whole stream.
    assert!(
        shared_hits + 4 >= private.stats().table_hits,
        "shared {} vs private {}",
        shared_hits,
        private.stats().table_hits
    );
}

#[test]
fn hit_ratio_measurement_is_deterministic_across_runs() {
    let corpus = mm_inputs(16);
    let inputs: Vec<_> = corpus.iter().map(|c| &c.image).take(3).collect();
    let app = mm::find("vgpwl").unwrap();
    let a = measure_mm_app(&app, &inputs, SweepSpec::paper_default());
    let b = measure_mm_app(&app, &inputs, SweepSpec::paper_default());
    assert_eq!(a, b);
}
